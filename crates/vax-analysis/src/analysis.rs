//! Core histogram digestion.

use upc_monitor::Histogram;
use vax_arch::{BranchClass, Opcode, OpcodeGroup, SpecModeClass};
use vax_mem::HwCounters;
use vax_ucode::{ControlStore, EventTag, MemOp, Row, SpecPosition};

/// The six columns of Table 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Column {
    /// Autonomous EBOX operation.
    Compute,
    /// D-stream read microinstructions.
    Read,
    /// Read-stall cycles.
    RStall,
    /// D-stream write microinstructions.
    Write,
    /// Write-stall cycles.
    WStall,
    /// IB-stall cycles.
    IbStall,
}

impl Column {
    /// All columns, Table 8 order.
    pub const ALL: [Column; 6] = [
        Column::Compute,
        Column::Read,
        Column::RStall,
        Column::Write,
        Column::WStall,
        Column::IbStall,
    ];

    /// Column header as printed.
    pub const fn name(self) -> &'static str {
        match self {
            Column::Compute => "Compute",
            Column::Read => "Read",
            Column::RStall => "R-Stall",
            Column::Write => "Write",
            Column::WStall => "W-Stall",
            Column::IbStall => "IB-Stall",
        }
    }

    /// Stable index 0–5.
    pub const fn index(self) -> usize {
        match self {
            Column::Compute => 0,
            Column::Read => 1,
            Column::RStall => 2,
            Column::Write => 3,
            Column::WStall => 4,
            Column::IbStall => 5,
        }
    }
}

/// Everything derived from (histogram, listing, hardware counters).
///
/// All `per_instruction` quantities divide by the instruction count, which
/// is the sum of execute-routine entry counts — one per instruction, the
/// way the paper counts through the microcode.
#[derive(Debug, Clone)]
pub struct Analysis {
    instructions: u64,
    /// Raw cycles per (row, column).
    row_col: [[u64; 6]; Row::COUNT],
    /// Execute-entry counts per opcode byte.
    opcode_counts: [u64; 256],
    /// Per Table 1 group.
    group_counts: [u64; 7],
    /// Taken-branch redirect counts per Table 2 class.
    branch_taken: [u64; 9],
    /// Specifier-entry counts per (position, mode class).
    spec_counts: [[u64; 10]; 2],
    /// Index-prefix counts per position.
    spec_index: [u64; 2],
    /// Branch-displacement processing count.
    bdisp_count: u64,
    /// TB-miss routine entries.
    tb_miss_entries: u64,
    /// Total cycles in the TB-miss routine (issue + stall).
    tb_miss_cycles: u64,
    /// Read-stall cycles within the TB-miss routine.
    tb_miss_read_stall: u64,
    /// Interrupt service entries.
    interrupt_entries: u64,
    /// Exception service entries.
    exception_entries: u64,
    /// Software-interrupt request events.
    soft_int_requests: u64,
    /// Machine-check (injected fault) entries.
    machine_check_entries: u64,
    /// Read/write microinstruction counts per Table 8 row.
    reads_by_row: [u64; Row::COUNT],
    writes_by_row: [u64; Row::COUNT],
    /// The hardware counters (second instrument).
    counters: HwCounters,
    total_cycles: u64,
}

impl Analysis {
    /// Digest a measurement.
    pub fn new(hist: &Histogram, cs: &ControlStore, counters: &HwCounters) -> Analysis {
        let mut a = Analysis {
            instructions: 0,
            row_col: [[0; 6]; Row::COUNT],
            opcode_counts: [0; 256],
            group_counts: [0; 7],
            branch_taken: [0; 9],
            spec_counts: [[0; 10]; 2],
            spec_index: [0; 2],
            bdisp_count: 0,
            tb_miss_entries: 0,
            tb_miss_cycles: 0,
            tb_miss_read_stall: 0,
            interrupt_entries: 0,
            exception_entries: 0,
            soft_int_requests: 0,
            machine_check_entries: 0,
            reads_by_row: [0; Row::COUNT],
            writes_by_row: [0; Row::COUNT],
            counters: *counters,
            total_cycles: hist.total_cycles(),
        };
        let tb_addrs = [
            cs.tb_miss_entry(),
            cs.tb_miss_body(),
            cs.tb_miss_pte_read(),
            cs.tb_miss_sys_read(),
            cs.tb_miss_insert(),
        ];
        for (addr, class) in cs.iter() {
            let issues = hist.issue(addr);
            let stalls = hist.stall(addr);
            if issues == 0 && stalls == 0 {
                continue;
            }
            let row = class.row.index();
            // Column classification: exactly the paper's rules (§4.3).
            match class.op {
                MemOp::Compute => {
                    if matches!(class.tag, EventTag::IbStall(_)) {
                        a.row_col[row][Column::IbStall.index()] += issues;
                    } else {
                        a.row_col[row][Column::Compute.index()] += issues;
                    }
                }
                MemOp::Read => {
                    a.row_col[row][Column::Read.index()] += issues;
                    a.row_col[row][Column::RStall.index()] += stalls;
                    a.reads_by_row[row] += issues;
                }
                MemOp::Write => {
                    a.row_col[row][Column::Write.index()] += issues;
                    a.row_col[row][Column::WStall.index()] += stalls;
                    a.writes_by_row[row] += issues;
                }
            }
            // Event tags.
            match class.tag {
                EventTag::ExecEntry(op) => {
                    a.opcode_counts[op.to_byte() as usize] += issues;
                    a.group_counts[op.group().index()] += issues;
                    a.instructions += issues;
                }
                EventTag::BranchTaken(class) => a.branch_taken[class.index()] += issues,
                EventTag::SpecEntry(pos, mode) => {
                    a.spec_counts[pos.index()][mode.index()] += issues;
                }
                EventTag::SpecIndex(pos) => a.spec_index[pos.index()] += issues,
                EventTag::BranchDispatch => a.bdisp_count += issues,
                EventTag::TbMissEntry => a.tb_miss_entries += issues,
                EventTag::InterruptEntry => a.interrupt_entries += issues,
                EventTag::ExceptionEntry => a.exception_entries += issues,
                EventTag::SoftIntRequest => a.soft_int_requests += issues,
                EventTag::MachineCheckEntry => a.machine_check_entries += issues,
                _ => {}
            }
            if tb_addrs.contains(&addr) {
                a.tb_miss_cycles += issues + stalls;
                if class.op == MemOp::Read {
                    a.tb_miss_read_stall += stalls;
                }
            }
        }
        a
    }

    /// Instructions executed while measuring (execute-entry sum).
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Replace the instruction count used for per-instruction
    /// normalization (CPI, frequencies). The histogram-derived count is
    /// the paper's definition; this override exists for re-analyses of
    /// saved histograms where the caller knows the true retired count
    /// (`vax780 report --instructions-hint`).
    pub fn with_instructions(mut self, n: u64) -> Analysis {
        self.instructions = n;
        self
    }

    /// Total classified cycles.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Cycles per average instruction — the headline number.
    pub fn cpi(&self) -> f64 {
        self.per_instr(self.total_cycles)
    }

    /// Cycles/instruction in one Table 8 cell.
    pub fn cell(&self, row: Row, col: Column) -> f64 {
        self.per_instr(self.row_col[row.index()][col.index()])
    }

    /// Row total, cycles/instruction.
    pub fn row_total(&self, row: Row) -> f64 {
        self.per_instr(self.row_col[row.index()].iter().sum())
    }

    /// Column total, cycles/instruction.
    pub fn col_total(&self, col: Column) -> f64 {
        let sum: u64 = self.row_col.iter().map(|r| r[col.index()]).sum();
        self.per_instr(sum)
    }

    /// Dynamic count of one opcode.
    pub fn opcode_count(&self, op: Opcode) -> u64 {
        self.opcode_counts[op.to_byte() as usize]
    }

    /// Dynamic count of a Table 1 group.
    pub fn group_count(&self, group: OpcodeGroup) -> u64 {
        self.group_counts[group.index()]
    }

    /// Dynamic frequency (fraction) of a Table 1 group.
    pub fn group_frequency(&self, group: OpcodeGroup) -> f64 {
        self.per_instr(self.group_counts[group.index()])
    }

    /// Dynamic count of a Table 2 class (sum of its opcodes).
    pub fn branch_class_count(&self, class: BranchClass) -> u64 {
        Opcode::ALL
            .iter()
            .filter(|o| o.branch_class() == Some(class))
            .map(|&o| self.opcode_count(o))
            .sum()
    }

    /// Taken count of a Table 2 class.
    pub fn branch_taken_count(&self, class: BranchClass) -> u64 {
        self.branch_taken[class.index()]
    }

    /// Specifier count per (position, mode class).
    pub fn spec_count(&self, pos: SpecPosition, class: SpecModeClass) -> u64 {
        self.spec_counts[pos.index()][class.index()]
    }

    /// All specifiers at a position.
    pub fn spec_total(&self, pos: SpecPosition) -> u64 {
        self.spec_counts[pos.index()].iter().sum()
    }

    /// Indexed-specifier count at a position.
    pub fn spec_indexed(&self, pos: SpecPosition) -> u64 {
        self.spec_index[pos.index()]
    }

    /// Branch displacements per instruction stream: every executed
    /// instance of a displacement-branch opcode carries one (the B-Disp
    /// *cycle* is spent only when taken, §5, so this is derived from
    /// opcode frequencies, not from the B-Disp routine count).
    pub fn bdisp_count(&self) -> u64 {
        Opcode::ALL
            .iter()
            .filter(|o| o.branch_displacement().is_some())
            .map(|&o| self.opcode_count(o))
            .sum()
    }

    /// Executions of the branch-displacement target-calculation cycle
    /// (taken displacement branches).
    pub fn bdisp_computed(&self) -> u64 {
        self.bdisp_count
    }

    /// TB-miss service entries.
    pub fn tb_miss_entries(&self) -> u64 {
        self.tb_miss_entries
    }

    /// Average cycles per TB-miss service (paper: 21.6).
    pub fn tb_miss_service_cycles(&self) -> f64 {
        if self.tb_miss_entries == 0 {
            0.0
        } else {
            self.tb_miss_cycles as f64 / self.tb_miss_entries as f64
        }
    }

    /// Average read-stall cycles per TB miss (paper: 3.5).
    pub fn tb_miss_read_stall_cycles(&self) -> f64 {
        if self.tb_miss_entries == 0 {
            0.0
        } else {
            self.tb_miss_read_stall as f64 / self.tb_miss_entries as f64
        }
    }

    /// Interrupt service entries.
    pub fn interrupt_entries(&self) -> u64 {
        self.interrupt_entries
    }

    /// Exception service entries.
    pub fn exception_entries(&self) -> u64 {
        self.exception_entries
    }

    /// Software-interrupt requests posted.
    pub fn soft_int_requests(&self) -> u64 {
        self.soft_int_requests
    }

    /// Machine-check entries (injected faults taken).
    pub fn machine_check_entries(&self) -> u64 {
        self.machine_check_entries
    }

    /// Total cycles attributed to the fault-handling control-store
    /// region (recovery microcode), all columns.
    pub fn fault_handling_cycles(&self) -> u64 {
        self.row_col[Row::FaultHandling.index()].iter().sum()
    }

    /// D-stream read microinstructions in a row, per instruction.
    pub fn reads_per_instr(&self, row: Row) -> f64 {
        self.per_instr(self.reads_by_row[row.index()])
    }

    /// D-stream write microinstructions in a row, per instruction.
    pub fn writes_per_instr(&self, row: Row) -> f64 {
        self.per_instr(self.writes_by_row[row.index()])
    }

    /// Total reads per instruction.
    pub fn total_reads_per_instr(&self) -> f64 {
        self.per_instr(self.reads_by_row.iter().sum())
    }

    /// Total writes per instruction.
    pub fn total_writes_per_instr(&self) -> f64 {
        self.per_instr(self.writes_by_row.iter().sum())
    }

    /// The second instrument's counters.
    pub fn counters(&self) -> &HwCounters {
        &self.counters
    }

    /// Normalize a count by instructions.
    pub fn per_instr(&self, count: u64) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            count as f64 / self.instructions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upc_monitor::Histogram;

    fn toy() -> (Histogram, ControlStore, HwCounters) {
        let cs = ControlStore::build();
        let mut h = Histogram::new();
        // Two MOVL instructions: decode, spec (reg + reg), exec.
        for _ in 0..2 {
            h.bump_issue(cs.ird1());
            h.bump_issue(cs.spec_entry(SpecPosition::First, SpecModeClass::Register));
            h.bump_issue(cs.spec_entry(SpecPosition::Rest, SpecModeClass::Register));
            h.bump_issue(cs.exec_entry(Opcode::Movl));
        }
        // One of them had a memory destination with a 3-cycle write stall.
        h.bump_issue(cs.spec_write(SpecPosition::Rest, SpecModeClass::Displacement));
        h.bump_stall(
            cs.spec_write(SpecPosition::Rest, SpecModeClass::Displacement),
            3,
        );
        (h, cs, HwCounters::new())
    }

    #[test]
    fn digests_instruction_and_spec_counts() {
        let (h, cs, c) = toy();
        let a = Analysis::new(&h, &cs, &c);
        assert_eq!(a.instructions(), 2);
        assert_eq!(a.opcode_count(Opcode::Movl), 2);
        assert_eq!(a.group_count(OpcodeGroup::Simple), 2);
        assert_eq!(
            a.spec_count(SpecPosition::First, SpecModeClass::Register),
            2
        );
        assert_eq!(a.spec_total(SpecPosition::Rest), 2);
    }

    #[test]
    fn classifies_write_stall_into_spec_row() {
        let (h, cs, c) = toy();
        let a = Analysis::new(&h, &cs, &c);
        assert_eq!(a.cell(Row::Spec2to6, Column::Write), 0.5);
        assert_eq!(a.cell(Row::Spec2to6, Column::WStall), 1.5);
        assert_eq!(a.writes_per_instr(Row::Spec2to6), 0.5);
    }

    #[test]
    fn cpi_accounts_all_cycles() {
        let (h, cs, c) = toy();
        let a = Analysis::new(&h, &cs, &c);
        // 2 decode + 4 spec entries + 2 exec + 1 write + 3 stall = 12.
        assert_eq!(a.total_cycles(), 12);
        assert_eq!(a.cpi(), 6.0);
        // Row and column totals agree with the grand total.
        let row_sum: f64 = Row::ALL.iter().map(|&r| a.row_total(r)).sum();
        let col_sum: f64 = Column::ALL.iter().map(|&c| a.col_total(c)).sum();
        assert!((row_sum - a.cpi()).abs() < 1e-9);
        assert!((col_sum - a.cpi()).abs() < 1e-9);
    }
}
