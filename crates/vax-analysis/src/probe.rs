//! The probe artifact: measured per-opcode and per-mode issue tables.
//!
//! `vax780 probe` runs one targeted microbenchmark per opcode ×
//! addressing-mode pair and infers, from calibrated histogram deltas,
//! how many control-store issues each pair costs — the measured
//! counterpart of `vax_ucode::model`'s static claims. This module holds
//! the artifact those measurements fold into ([`InferredTables`]) and
//! its versioned text codec (`vax-probe-tables v1`), designed like the
//! `upc-histogram v1` codec: deterministic line order (BTreeMap-sorted
//! sections), whitespace-separated fields, a header and an `end`
//! trailer so truncation is detectable.
//!
//! ```text
//! vax-probe-tables v1
//! meta cpu-model GenuineIntel ...
//! config unroll 8
//! config iters 32
//! op movl entry=1 compute=0 read=0 write=0 taken=0
//! mode displacement read entry=1 index=0 compute=1 read=1 write=0
//! pair movl displacement ok
//! stallrow spec1 144
//! end
//! ```
//!
//! Counts are *per probe instruction execution* for `op` rows and *per
//! specifier evaluation* for `mode` rows — already divided down by the
//! unroll × iteration product, which the prober checks divides exactly.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One measured opcode execute row: issues per execution, by slot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpRow {
    /// Execute-entry issues (the dispatch into the routine).
    pub entry: u64,
    /// Compute-slot issues.
    pub compute: u64,
    /// Read-slot issues.
    pub read: u64,
    /// Write-slot issues.
    pub write: u64,
    /// Branch-taken bucket issues attributed to this opcode.
    pub taken: u64,
}

impl OpRow {
    /// Total issues per execution.
    pub fn total(&self) -> u64 {
        self.entry + self.compute + self.read + self.write + self.taken
    }
}

/// One measured addressing-mode row: issues per specifier evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModeRow {
    /// Specifier-entry issues.
    pub entry: u64,
    /// Index-prefix issues.
    pub index: u64,
    /// Compute-slot issues.
    pub compute: u64,
    /// Read-slot issues.
    pub read: u64,
    /// Write-slot issues.
    pub write: u64,
}

impl ModeRow {
    /// Total issues per evaluation.
    pub fn total(&self) -> u64 {
        self.entry + self.index + self.compute + self.read + self.write
    }
}

/// The probe's inferred latency tables, with provenance.
#[derive(Debug, Clone, Default)]
pub struct InferredTables {
    /// Host/provenance stamp, in insertion order: (key, value).
    pub meta: Vec<(String, String)>,
    /// Probe loop unroll factor (slots per loop body).
    pub unroll: u64,
    /// Loop iterations per measured phase.
    pub iters: u64,
    /// Measured opcode rows, keyed by mnemonic.
    pub ops: BTreeMap<String, OpRow>,
    /// Measured mode rows, keyed by (mode-class key, access key).
    pub modes: BTreeMap<(String, String), ModeRow>,
    /// Every probed (mnemonic, mode-class key) pair, with whether its
    /// three-way instrument reconciliation held.
    pub pairs: BTreeMap<(String, String), bool>,
    /// Observed stall cycles by Table-8 row name, summed over every
    /// measured phase (evidence, not per-execution claims — stalls
    /// depend on alignment and do not divide down).
    pub stall_rows: BTreeMap<String, u64>,
}

impl InferredTables {
    /// An empty artifact with the given probe-loop geometry.
    pub fn new(unroll: u64, iters: u64) -> InferredTables {
        InferredTables {
            unroll,
            iters,
            ..InferredTables::default()
        }
    }

    /// Add one provenance stamp line.
    pub fn stamp(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.meta.push((key.into(), value.into()));
    }

    /// Render as `vax-probe-tables v1` text. Deterministic: map-backed
    /// sections render in key order, meta in insertion order.
    pub fn to_text(&self) -> String {
        let mut out = String::from("vax-probe-tables v1\n");
        for (k, v) in &self.meta {
            let _ = writeln!(out, "meta {k} {v}");
        }
        let _ = writeln!(out, "config unroll {}", self.unroll);
        let _ = writeln!(out, "config iters {}", self.iters);
        for (mn, r) in &self.ops {
            let _ = writeln!(
                out,
                "op {mn} entry={} compute={} read={} write={} taken={}",
                r.entry, r.compute, r.read, r.write, r.taken
            );
        }
        for ((class, access), r) in &self.modes {
            let _ = writeln!(
                out,
                "mode {class} {access} entry={} index={} compute={} read={} write={}",
                r.entry, r.index, r.compute, r.read, r.write
            );
        }
        for ((mn, class), ok) in &self.pairs {
            let _ = writeln!(out, "pair {mn} {class} {}", if *ok { "ok" } else { "FAIL" });
        }
        for (row, cycles) in &self.stall_rows {
            let _ = writeln!(out, "stallrow {row} {cycles}");
        }
        out.push_str("end\n");
        out
    }

    /// Parse `vax-probe-tables v1` text.
    ///
    /// # Errors
    ///
    /// A description of the first malformed line, a bad header, or a
    /// missing `end` trailer.
    pub fn from_text(text: &str) -> Result<InferredTables, String> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, "vax-probe-tables v1")) => {}
            Some((_, other)) => return Err(format!("bad header: `{other}`")),
            None => return Err("empty artifact".to_string()),
        }
        let mut t = InferredTables::default();
        let mut saw_end = false;
        let parse_u64 = |n: usize, what: &str, s: &str| -> Result<u64, String> {
            s.parse::<u64>()
                .map_err(|_| format!("line {}: bad {what} `{s}`", n + 1))
        };
        let parse_slot = |n: usize, field: &str, key: &str| -> Result<u64, String> {
            let (k, v) = field
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `{key}=<n>`, got `{field}`", n + 1))?;
            if k != key {
                return Err(format!("line {}: expected slot `{key}`, got `{k}`", n + 1));
            }
            parse_u64(n, key, v)
        };
        for (n, line) in lines {
            if saw_end {
                return Err(format!("line {}: content after `end`", n + 1));
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            match fields.as_slice() {
                [] => {}
                ["end"] => saw_end = true,
                ["meta", key, rest @ ..] => t.stamp(*key, rest.join(" ")),
                ["config", "unroll", v] => t.unroll = parse_u64(n, "unroll", v)?,
                ["config", "iters", v] => t.iters = parse_u64(n, "iters", v)?,
                ["op", mn, e, c, r, w, tk] => {
                    t.ops.insert(
                        mn.to_string(),
                        OpRow {
                            entry: parse_slot(n, e, "entry")?,
                            compute: parse_slot(n, c, "compute")?,
                            read: parse_slot(n, r, "read")?,
                            write: parse_slot(n, w, "write")?,
                            taken: parse_slot(n, tk, "taken")?,
                        },
                    );
                }
                ["mode", class, access, e, i, c, r, w] => {
                    t.modes.insert(
                        (class.to_string(), access.to_string()),
                        ModeRow {
                            entry: parse_slot(n, e, "entry")?,
                            index: parse_slot(n, i, "index")?,
                            compute: parse_slot(n, c, "compute")?,
                            read: parse_slot(n, r, "read")?,
                            write: parse_slot(n, w, "write")?,
                        },
                    );
                }
                ["pair", mn, class, ok] => {
                    let ok = match *ok {
                        "ok" => true,
                        "FAIL" => false,
                        other => return Err(format!("line {}: bad pair status `{other}`", n + 1)),
                    };
                    t.pairs.insert((mn.to_string(), class.to_string()), ok);
                }
                ["stallrow", row, cycles] => {
                    t.stall_rows
                        .insert(row.to_string(), parse_u64(n, "cycles", cycles)?);
                }
                _ => return Err(format!("line {}: unrecognized line `{line}`", n + 1)),
            }
        }
        if !saw_end {
            return Err("missing `end` trailer (truncated artifact?)".to_string());
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InferredTables {
        let mut t = InferredTables::new(8, 32);
        t.stamp("cpu-model", "Test CPU 9000");
        t.stamp("rustc", "1.0.0-test");
        t.ops.insert(
            "movl".into(),
            OpRow {
                entry: 1,
                ..OpRow::default()
            },
        );
        t.ops.insert(
            "mull2".into(),
            OpRow {
                entry: 1,
                compute: 11,
                ..OpRow::default()
            },
        );
        t.modes.insert(
            ("displacement".into(), "read".into()),
            ModeRow {
                entry: 1,
                read: 1,
                ..ModeRow::default()
            },
        );
        t.pairs.insert(("movl".into(), "register".into()), true);
        t.stall_rows.insert("spec1".into(), 144);
        t
    }

    #[test]
    fn roundtrips_exactly() {
        let t = sample();
        let text = t.to_text();
        let back = InferredTables::from_text(&text).expect("parses");
        assert_eq!(back.to_text(), text);
        assert_eq!(back.unroll, 8);
        assert_eq!(back.iters, 32);
        assert_eq!(back.ops["mull2"].compute, 11);
        assert_eq!(back.modes[&("displacement".into(), "read".into())].read, 1);
        assert!(back.pairs[&("movl".into(), "register".into())]);
        assert_eq!(back.stall_rows["spec1"], 144);
        assert_eq!(back.meta[0], ("cpu-model".into(), "Test CPU 9000".into()));
    }

    #[test]
    fn meta_values_may_contain_spaces() {
        let t = sample();
        let back = InferredTables::from_text(&t.to_text()).unwrap();
        assert_eq!(back.meta[0].1, "Test CPU 9000");
    }

    #[test]
    fn truncation_is_detected() {
        let t = sample();
        let text = t.to_text();
        let cut = &text[..text.len() - "end\n".len()];
        assert!(InferredTables::from_text(cut).is_err());
    }

    #[test]
    fn bad_header_and_bad_lines_error() {
        assert!(InferredTables::from_text("nope v9\nend\n").is_err());
        assert!(InferredTables::from_text("vax-probe-tables v1\nop movl entry=x\nend\n").is_err());
        assert!(InferredTables::from_text("vax-probe-tables v1\nend\nextra\n").is_err());
    }

    #[test]
    fn section_order_is_deterministic() {
        // Maps sort keys, so insertion order must not matter.
        let mut a = InferredTables::new(8, 32);
        a.ops.insert("movl".into(), OpRow::default());
        a.ops.insert("addl2".into(), OpRow::default());
        let mut b = InferredTables::new(8, 32);
        b.ops.insert("addl2".into(), OpRow::default());
        b.ops.insert("movl".into(), OpRow::default());
        assert_eq!(a.to_text(), b.to_text());
    }
}
