//! Paper-vs-measured comparison reports (the EXPERIMENTS.md generator).

use crate::paper::{self, Provenance, Ref};
use crate::tables::{Table1, Table2, Table3, Table4, Table5, Table6, Table7, Table8, Table9};
use crate::{Analysis, Section4Stats};
use std::fmt::Write as _;
use vax_arch::{OpcodeGroup, SpecModeClass};
use vax_ucode::Row;

/// One compared quantity.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// What is being compared.
    pub label: String,
    /// Published value.
    pub paper: Ref,
    /// Simulated value.
    pub measured: f64,
}

impl Comparison {
    /// Relative error against the paper value (absolute when the paper
    /// value is zero).
    pub fn rel_error(&self) -> f64 {
        if self.paper.value == 0.0 {
            self.measured.abs()
        } else {
            (self.measured - self.paper.value).abs() / self.paper.value.abs()
        }
    }

    fn flag(&self) -> &'static str {
        match self.paper.provenance {
            Provenance::Exact => " ",
            Provenance::Reconstructed => "~",
        }
    }
}

/// The full paper-vs-measured report for one composite measurement.
#[derive(Debug, Clone)]
pub struct StudyReport {
    /// All comparisons, grouped by experiment label order.
    pub comparisons: Vec<Comparison>,
    /// Rendered tables (measured).
    pub rendered_tables: String,
}

impl StudyReport {
    /// Build from a digested measurement.
    pub fn new(a: &Analysis) -> StudyReport {
        let mut cmp = Vec::new();
        let push = |cmp: &mut Vec<Comparison>, label: &str, paper: Ref, measured: f64| {
            cmp.push(Comparison {
                label: label.to_string(),
                paper,
                measured,
            });
        };

        // Table 1.
        let t1 = Table1::from_analysis(a);
        for g in OpcodeGroup::ALL {
            push(
                &mut cmp,
                &format!("T1 {} %", g.name()),
                paper::table1_group_pct(g),
                t1.pct(g),
            );
        }
        // Table 2.
        let t2 = Table2::from_analysis(a);
        for (class, pct, taken, _) in &t2.rows {
            let (p_pct, p_taken) = paper::table2(*class);
            push(&mut cmp, &format!("T2 {} %inst", class.name()), p_pct, *pct);
            push(
                &mut cmp,
                &format!("T2 {} %taken", class.name()),
                p_taken,
                *taken,
            );
        }
        push(
            &mut cmp,
            "T2 total %inst",
            paper::TABLE2_TOTAL_PCT,
            t2.total.0,
        );
        push(
            &mut cmp,
            "T2 total %taken",
            paper::TABLE2_TAKEN_PCT,
            t2.total.1,
        );
        // Table 3.
        let t3 = Table3::from_analysis(a);
        push(&mut cmp, "T3 spec1/inst", paper::SPEC1_PER_INSTR, t3.spec1);
        push(
            &mut cmp,
            "T3 spec2-6/inst",
            paper::SPEC2_6_PER_INSTR,
            t3.spec2_6,
        );
        push(&mut cmp, "T3 bdisp/inst", paper::BDISP_PER_INSTR, t3.bdisp);
        // Table 4.
        let t4 = Table4::from_analysis(a);
        for c in SpecModeClass::ALL {
            push(
                &mut cmp,
                &format!("T4 {} %", c.name()),
                paper::table4::total_pct(c),
                t4.total_pct(c),
            );
        }
        push(
            &mut cmp,
            "T4 indexed %",
            paper::table4::INDEXED_TOTAL_PCT,
            t4.indexed.2,
        );
        // Table 5.
        let t5 = Table5::from_analysis(a);
        push(
            &mut cmp,
            "T5 reads/inst",
            paper::table5::TOTAL.0,
            t5.total.0,
        );
        push(
            &mut cmp,
            "T5 writes/inst",
            paper::table5::TOTAL.1,
            t5.total.1,
        );
        push(
            &mut cmp,
            "T5 read:write",
            paper::READ_WRITE_RATIO,
            t5.read_write_ratio(),
        );
        // Table 6.
        let t6 = Table6::from_analysis(a);
        push(
            &mut cmp,
            "T6 bytes/inst",
            paper::INSTRUCTION_BYTES,
            t6.total_bytes,
        );
        push(
            &mut cmp,
            "T6 bytes/spec",
            paper::SPEC_SIZE_BYTES,
            t6.est_spec_bytes,
        );
        // Table 7.
        let t7 = Table7::from_analysis(a);
        push(
            &mut cmp,
            "T7 softint headway",
            paper::SOFT_INT_REQUEST_HEADWAY,
            t7.soft_int_request_headway,
        );
        push(
            &mut cmp,
            "T7 interrupt headway",
            paper::INTERRUPT_HEADWAY,
            t7.interrupt_headway,
        );
        push(
            &mut cmp,
            "T7 ctx-switch headway",
            paper::CONTEXT_SWITCH_HEADWAY,
            t7.context_switch_headway,
        );
        // Table 8.
        let t8 = Table8::from_analysis(a);
        push(&mut cmp, "T8 CPI", paper::table8::CPI, t8.cpi);
        for (i, col) in crate::Column::ALL.iter().enumerate() {
            push(
                &mut cmp,
                &format!("T8 col {}", col.name()),
                paper::table8::COL_TOTALS[i],
                t8.col_totals[i],
            );
        }
        for row in Row::ALL {
            // The paper characterized a healthy machine: it publishes no
            // fault-handling row, so there is nothing to compare against.
            if row == Row::FaultHandling {
                continue;
            }
            push(
                &mut cmp,
                &format!("T8 row {}", row.name()),
                paper::table8::ROW_TOTALS[row.index()],
                t8.row_total(row),
            );
        }
        push(
            &mut cmp,
            "T8 decode+spec fraction",
            paper::table8::DECODE_PLUS_SPEC_FRACTION,
            t8.decode_plus_spec_fraction(),
        );
        // Table 9.
        let t9 = Table9::from_analysis(a);
        for g in OpcodeGroup::ALL {
            push(
                &mut cmp,
                &format!("T9 {} cycles", g.name()),
                paper::table9_total(g),
                t9.total(g),
            );
        }
        // Section 4.
        let s4 = Section4Stats::from_analysis(a);
        push(
            &mut cmp,
            "S4 IB refs/inst",
            paper::IB_REFS_PER_INSTR,
            s4.ib_refs_per_instr,
        );
        push(
            &mut cmp,
            "S4 IB bytes/ref",
            paper::IB_BYTES_PER_REF,
            s4.ib_bytes_per_ref,
        );
        push(
            &mut cmp,
            "S4 cache miss/inst",
            paper::CACHE_MISSES_PER_INSTR,
            s4.cache_miss_per_instr(),
        );
        push(
            &mut cmp,
            "S4 cache miss I/inst",
            paper::CACHE_MISSES_I_PER_INSTR,
            s4.cache_miss_i_per_instr,
        );
        push(
            &mut cmp,
            "S4 cache miss D/inst",
            paper::CACHE_MISSES_D_PER_INSTR,
            s4.cache_miss_d_per_instr,
        );
        push(
            &mut cmp,
            "S4 TB miss/inst",
            paper::TB_MISSES_PER_INSTR,
            s4.tb_miss_per_instr,
        );
        push(
            &mut cmp,
            "S4 TB service cycles",
            paper::TB_SERVICE_CYCLES,
            s4.tb_service_cycles,
        );
        push(
            &mut cmp,
            "S4 TB svc read stall",
            paper::TB_SERVICE_READ_STALL,
            s4.tb_service_read_stall,
        );
        push(
            &mut cmp,
            "S4 unaligned/inst",
            paper::UNALIGNED_PER_INSTR,
            s4.unaligned_per_instr,
        );

        let mut rendered = String::new();
        let _ = write!(
            rendered,
            "{t1}\n{t2}\n{t3}\n{t4}\n{t5}\n{t6}\n{t7}\n{t8}\n{t9}\n{s4}"
        );
        StudyReport {
            comparisons: cmp,
            rendered_tables: rendered,
        }
    }

    /// Render the paper-vs-measured table (markdown-ish).
    pub fn comparison_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<30} {:>12} {:>12} {:>9}",
            "Quantity (~ = reconstructed)", "Paper", "Measured", "RelErr"
        );
        for c in &self.comparisons {
            let _ = writeln!(
                out,
                "{:<30} {:>11.3}{} {:>12.3} {:>8.1}%",
                c.label,
                c.paper.value,
                c.flag(),
                c.measured,
                100.0 * c.rel_error()
            );
        }
        out
    }

    /// Look up one comparison by label.
    pub fn get(&self, label: &str) -> Option<&Comparison> {
        self.comparisons.iter().find(|c| c.label == label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upc_monitor::Histogram;
    use vax_mem::HwCounters;
    use vax_ucode::ControlStore;

    #[test]
    fn report_builds_even_on_empty_measurement() {
        let cs = ControlStore::build();
        let h = Histogram::new();
        let a = Analysis::new(&h, &cs, &HwCounters::new());
        let r = StudyReport::new(&a);
        assert!(r.get("T8 CPI").is_some());
        assert!(r.comparison_table().contains("T8 CPI"));
        assert!(r.comparisons.len() > 50);
    }

    #[test]
    fn rel_error_handles_zero_paper_value() {
        let c = Comparison {
            label: "x".into(),
            paper: paper::exact(0.0),
            measured: 0.25,
        };
        assert_eq!(c.rel_error(), 0.25);
    }
}
