//! Control-store model of the VAX-11/780: the micro-address layout and the
//! "microcode listing" map.
//!
//! The paper's instrument counts cycles *per control-store location*; all
//! interpretation — which locations are specifier routines, which belong to
//! the TB-miss service routine, which opcode a dispatch target implements —
//! comes from the microcode listing. This crate is that listing for our
//! model:
//!
//! * [`ControlStore::build`] lays out a deterministic micro-address space
//!   (decode dispatch, IB-stall dispatches, per-mode specifier routines,
//!   per-opcode execute routines, branch-taken redirects, the TB-miss
//!   routine, interrupt/exception service, memory management and abort
//!   locations);
//! * every address has a **static** memory-operation class
//!   ([`MemOp`]) — exactly the property the paper exploits to tell read
//!   stalls from write stalls (§4.3);
//! * every address has a Table 8 **row** ([`Row`]) and an [`EventTag`]
//!   that the analysis uses to recover event frequencies (§3).
//!
//! The CPU model executes microinstructions *at* these addresses; the
//! monitor counts them; the analysis reads only (histogram, this map).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod class;
pub mod effect;
mod layout;
pub mod model;

pub use addr::MicroAddr;
pub use class::{AddrClass, EventTag, MemOp, Row, SpecPosition, StallPoint};
pub use layout::ControlStore;
