//! The static latency model: what the microcode listing *claims* each
//! specifier routine and execute routine costs.
//!
//! The paper's method is to trust measurement over documentation; this
//! module is the documentation side of that bargain. `vax-probe` infers
//! the same tables from instrument counts alone and diffs them against
//! these claims — every disagreement is either a simulator bug or a
//! documented model refinement (see DESIGN.md, "Measurement-driven
//! characterization").
//!
//! All costs are **issue counts per control-store bucket** under the
//! *canonical probe context*: steady state, warm cache and TB, canonical
//! operand values (shift counts of 1, string length 4 aligned, packed
//! decimals of 2 digits, procedure masks empty, branches that fall
//! through, bit branches on their not-taken bit state, `CASEx` selecting
//! entry 0 of a one-entry table). Stall cycles are deliberately outside
//! the model: they depend on cache and SBI state, which is exactly what
//! the instruments exist to measure.
//!
//! One claim is knowingly naive and kept that way as a probe target: the
//! displacement specifier is documented here as always spending an
//! address-add compute cycle, while the machine folds the add into the
//! entry cycle for byte-wide displacements (`vax-cpu/src/specifier.rs`).
//! The probe refutes the naive row; the accepted refinement lives in the
//! checked-in allowlist.

use std::collections::BTreeMap;

use crate::{ControlStore, SpecPosition};
use vax_arch::{AccessType, BranchClass, DataType, Opcode, SpecModeClass};

/// Claimed issue counts of one operand-specifier evaluation (entry,
/// index prefix, extra compute, operand-fetch reads, store writes),
/// including the result store for write/modify operands — the paper
/// attributes operand stores to specifier processing (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpecCost {
    /// Issues at the routine entry slot (always 1).
    pub entry: u64,
    /// Issues at the index-prefix routine (1 when the specifier is
    /// indexed).
    pub index: u64,
    /// Issues at the compute-body slot.
    pub compute: u64,
    /// Operand-fetch issues at the read slot.
    pub read: u64,
    /// Result-store issues at the write slot.
    pub write: u64,
}

impl SpecCost {
    /// Total claimed issues for the specifier.
    pub fn total(&self) -> u64 {
        self.entry + self.index + self.compute + self.read + self.write
    }
}

fn is_quad(dtype: DataType) -> bool {
    matches!(dtype, DataType::Quad | DataType::DFloat)
}

fn is_memory(class: SpecModeClass) -> bool {
    !matches!(
        class,
        SpecModeClass::Register | SpecModeClass::ShortLiteral | SpecModeClass::Immediate
    )
}

/// The claimed cost of evaluating (and, for write/modify access,
/// storing) one specifier of `class` with the given access and data
/// type. `indexed` adds the index-prefix routine and its address-scale
/// compute cycle.
pub fn spec_cost(
    class: SpecModeClass,
    access: AccessType,
    dtype: DataType,
    indexed: bool,
) -> SpecCost {
    let mut c = SpecCost {
        entry: 1,
        ..SpecCost::default()
    };
    if indexed {
        c.index = 1;
        c.compute += 1; // scale-and-add of the index register
    }
    match class {
        // Claimed address-add cycle for every displacement — the naive
        // row the probe refutes for byte-wide extensions.
        SpecModeClass::Displacement => c.compute += 1,
        // One indirection cycle plus the pointer fetch.
        SpecModeClass::DisplacementDeferred => {
            c.compute += 1;
            c.read += 1;
        }
        SpecModeClass::AutoIncDeferred => {
            c.compute += 1;
            c.read += 1;
        }
        _ => {}
    }
    let scalar_refs = if is_quad(dtype) { 2 } else { 1 };
    if access.reads_value() && is_memory(class) {
        c.read += scalar_refs;
    }
    if access.writes_value() {
        if is_memory(class) {
            c.write += scalar_refs;
        } else if class == SpecModeClass::Register {
            // Register stores spend the routine's compute slot.
            c.compute += 1;
        }
    }
    c
}

/// Claimed issue counts of one execute routine in the canonical probe
/// context. The entry dispatch always issues exactly once and is kept
/// implicit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecCost {
    /// Issues at the execute compute-body slot.
    pub compute: u64,
    /// D-stream fetch issues at the execute read slot.
    pub read: u64,
    /// D-stream store issues at the execute write slot.
    pub write: u64,
    /// The branch-taken redirect this opcode performs in the canonical
    /// context (`None` when it falls through).
    pub taken: Option<BranchClass>,
}

impl ExecCost {
    const fn new(compute: u64, read: u64, write: u64) -> ExecCost {
        ExecCost {
            compute,
            read,
            write,
            taken: None,
        }
    }

    const fn taken(compute: u64, read: u64, write: u64, class: BranchClass) -> ExecCost {
        ExecCost {
            compute,
            read,
            write,
            taken: Some(class),
        }
    }
}

/// The claimed execute-routine cost of `op` in the canonical probe
/// context, or `None` for opcodes the model does not characterize
/// (privileged context-switch instructions and `HALT`, which the probe
/// never drives).
pub fn exec_cost(op: Opcode) -> Option<ExecCost> {
    use BranchClass as B;
    use Opcode::*;
    let cost = match op {
        // ----- SYSTEM ----------------------------------------------------
        Nop => ExecCost::new(0, 0, 0),
        Rei => ExecCost::taken(9, 2, 0, B::SystemBranch),
        Prober | Probew => ExecCost::new(4, 0, 0),
        Insque => ExecCost::new(14, 1, 4),
        Remque => ExecCost::new(8, 2, 2),
        Chmk => ExecCost::taken(13, 1, 3, B::SystemBranch),
        // ----- CALL/RET (mask 0, numarg 0, PUSHR/POPR mask {R0}) ---------
        Ret => ExecCost::taken(10, 6, 0, B::ProcedureCallRet),
        Callg => ExecCost::taken(19, 1, 5, B::ProcedureCallRet),
        Calls => ExecCost::taken(19, 1, 6, B::ProcedureCallRet),
        Popr => ExecCost::new(2, 1, 0),
        Pushr => ExecCost::new(5, 0, 1),
        // ----- SIMPLE control flow ---------------------------------------
        Rsb => ExecCost::taken(0, 1, 0, B::SubroutineCallRet),
        Bsbb | Bsbw => ExecCost::taken(0, 0, 1, B::SubroutineCallRet),
        Jsb => ExecCost::taken(0, 0, 1, B::SubroutineCallRet),
        Brb | Brw => ExecCost::taken(0, 0, 0, B::SimpleCond),
        Jmp => ExecCost::taken(0, 0, 0, B::Unconditional),
        // Conditional and low-bit branches fall through canonically.
        Bneq | Beql | Bgtr | Bleq | Bgeq | Blss | Bgtru | Blequ | Bvc | Bvs | Bcc | Bcs => {
            ExecCost::new(0, 0, 0)
        }
        Blbs | Blbc => ExecCost::new(0, 0, 0),
        // Loop branches canonically exit (no redirect).
        Aoblss | Aobleq | Sobgeq | Sobgtr => ExecCost::new(0, 0, 0),
        Acbw | Acbl => ExecCost::new(1, 0, 0),
        // CASEx always redirects; entry 0 of a one-entry table is in
        // range, so the table entry is fetched.
        Caseb | Casew | Casel => ExecCost::taken(1, 1, 0, B::Case),
        // ----- SIMPLE data -----------------------------------------------
        Ashl | Rotl => ExecCost::new(1, 0, 0),
        Ashq => ExecCost::new(2, 0, 0),
        Pushl | Pushal => ExecCost::new(0, 0, 1),
        Movaw | Moval | Movpsl => ExecCost::new(0, 0, 0),
        Clrq | Movq => ExecCost::new(0, 0, 0),
        Addb2 | Addb3 | Addw2 | Addw3 | Addl2 | Addl3 | Subb2 | Subb3 | Subw2 | Subw3 | Subl2
        | Subl3 | Bisb2 | Bisb3 | Bisw2 | Bisl2 | Bisl3 | Bicb2 | Bicb3 | Bicw2 | Bicl2 | Bicl3
        | Xorb2 | Xorl2 | Xorl3 | Adwc | Sbwc => ExecCost::new(0, 0, 0),
        Incb | Incw | Incl | Decb | Decw | Decl => ExecCost::new(0, 0, 0),
        Movb | Movw | Movl | Mnegb | Mnegl | Mcomb | Mcoml | Movzbw | Movzbl | Movzwl => {
            ExecCost::new(0, 0, 0)
        }
        Clrb | Clrw | Clrl => ExecCost::new(0, 0, 0),
        Cvtbw | Cvtbl | Cvtwb | Cvtwl | Cvtlb | Cvtlw => ExecCost::new(0, 0, 0),
        Cmpb | Cmpw | Cmpl | Tstb | Tstw | Tstl | Bitb | Bitw | Bitl => ExecCost::new(0, 0, 0),
        // ----- FIELD (register field base, position 0, width 8) ----------
        Extv | Extzv | Cmpv | Cmpzv | Insv => ExecCost::new(6, 0, 0),
        Ffs | Ffc => ExecCost::new(7, 0, 0),
        // Bit branches on their canonical (not-taken) bit state: the
        // set/set and clear/clear variants change the bit (register
        // write-back is free); set/clear and clear/set leave it alone
        // and spend the no-change cycle instead.
        Bbs | Bbc | Bbss | Bbssi | Bbcc | Bbcci => ExecCost::new(2, 0, 0),
        Bbsc | Bbcs => ExecCost::new(3, 0, 0),
        // ----- FLOAT and integer multiply/divide -------------------------
        Movf | Movd | Mnegf | Tstf | Tstd => ExecCost::new(3, 0, 0),
        Cmpf | Cmpd => ExecCost::new(4, 0, 0),
        Cvtfb | Cvtfw | Cvtfl | Cvtbf | Cvtwf | Cvtlf | Cvtld | Cvtdl => ExecCost::new(6, 0, 0),
        Addf2 | Addf3 | Subf2 | Subf3 | Addd2 | Addd3 | Subd2 | Subd3 => ExecCost::new(7, 0, 0),
        Mulf2 | Mulf3 => ExecCost::new(9, 0, 0),
        Muld2 | Muld3 => ExecCost::new(10, 0, 0),
        Divf2 | Divf3 => ExecCost::new(14, 0, 0),
        Divd2 | Divd3 => ExecCost::new(18, 0, 0),
        Mull2 | Mull3 | Emul => ExecCost::new(11, 0, 0),
        Divl2 | Divl3 => ExecCost::new(16, 0, 0),
        Ediv => ExecCost::new(15, 0, 0),
        // ----- CHARACTER (length 4, longword-aligned buffers) ------------
        Movc3 | Movc5 => ExecCost::new(18, 1, 1),
        Cmpc3 | Cmpc5 => ExecCost::new(14, 2, 0),
        Locc | Skpc => ExecCost::new(13, 1, 0),
        Scanc | Spanc => ExecCost::new(17, 5, 0),
        // ----- DECIMAL (2-digit packed operands, shift count 0) ----------
        Addp4 | Subp4 | Addp6 | Subp6 => ExecCost::new(38, 2, 2),
        Mulp | Divp => ExecCost::new(54, 2, 2),
        Movp => ExecCost::new(28, 1, 2),
        Cmpp3 | Cmpp4 => ExecCost::new(32, 2, 0),
        Cvtpl => ExecCost::new(22, 1, 0),
        Cvtlp => ExecCost::new(18, 0, 2),
        Ashp => ExecCost::new(28, 1, 2),
        // Privileged/context instructions the probe never drives.
        Halt | Bpt | Ldpctx | Svpctx | Mtpr | Mfpr | Chme | Chms | Chmu => return None,
    };
    Some(cost)
}

/// The statically known shape of one operand specifier, as the probe
/// generator emitted it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecShape {
    /// Table 4 mode class.
    pub class: SpecModeClass,
    /// Access type from the opcode's operand template.
    pub access: AccessType,
    /// Data type from the template.
    pub dtype: DataType,
    /// Whether an index prefix was emitted.
    pub indexed: bool,
}

/// The statically known shape of one emitted instruction: opcode plus
/// its operand specifiers in order (branch displacements excluded — they
/// are not specifiers and issue nothing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstShape {
    /// The opcode.
    pub opcode: Opcode,
    /// Specifier shapes in specifier order.
    pub specs: Vec<SpecShape>,
}

/// Expand the model's claims for `shape` into per-bucket issue counts:
/// the IRD1 decode dispatch, each specifier's slots, the execute slots
/// and any branch-taken redirect. Returns `None` when
/// [`exec_cost`] does not characterize the opcode.
///
/// The branch-displacement bucket is claimed untouched: displacement
/// bytes are consumed during decode and the target add shares the
/// redirect cycle, so no issue lands at `bdisp` (the probe verifies
/// this claim too).
pub fn expected_issues(cs: &ControlStore, shape: &InstShape) -> Option<BTreeMap<u16, u64>> {
    let ec = exec_cost(shape.opcode)?;
    let mut out: BTreeMap<u16, u64> = BTreeMap::new();
    let mut add = |addr: crate::MicroAddr, n: u64| {
        if n > 0 {
            *out.entry(addr.value()).or_insert(0) += n;
        }
    };
    add(cs.ird1(), 1);
    for (i, spec) in shape.specs.iter().enumerate() {
        let pos = if i == 0 {
            SpecPosition::First
        } else {
            SpecPosition::Rest
        };
        let sc = spec_cost(spec.class, spec.access, spec.dtype, spec.indexed);
        add(cs.spec_index(pos), sc.index);
        add(cs.spec_entry(pos, spec.class), sc.entry);
        add(cs.spec_compute(pos, spec.class), sc.compute);
        add(cs.spec_read(pos, spec.class), sc.read);
        add(cs.spec_write(pos, spec.class), sc.write);
    }
    add(cs.exec_entry(shape.opcode), 1);
    add(cs.exec_compute(shape.opcode), ec.compute);
    add(cs.exec_read(shape.opcode), ec.read);
    add(cs.exec_write(shape.opcode), ec.write);
    if let Some(class) = ec.taken {
        add(cs.branch_taken(class), 1);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_read_is_entry_only() {
        let c = spec_cost(
            SpecModeClass::Register,
            AccessType::Read,
            DataType::Long,
            false,
        );
        assert_eq!(c.total(), 1);
        assert_eq!(c.entry, 1);
    }

    #[test]
    fn register_store_uses_the_compute_slot() {
        let c = spec_cost(
            SpecModeClass::Register,
            AccessType::Write,
            DataType::Long,
            false,
        );
        assert_eq!((c.entry, c.compute, c.write), (1, 1, 0));
    }

    #[test]
    fn displacement_claims_the_naive_address_add() {
        // The deliberately naive row: the machine folds the add into the
        // entry cycle for byte displacements, and the probe refutes this.
        let c = spec_cost(
            SpecModeClass::Displacement,
            AccessType::Read,
            DataType::Long,
            false,
        );
        assert_eq!((c.entry, c.compute, c.read), (1, 1, 1));
    }

    #[test]
    fn quad_memory_modify_doubles_the_references() {
        let c = spec_cost(
            SpecModeClass::RegisterDeferred,
            AccessType::Modify,
            DataType::Quad,
            false,
        );
        assert_eq!((c.read, c.write), (2, 2));
    }

    #[test]
    fn exec_cost_covers_every_unprivileged_opcode() {
        for &op in Opcode::ALL {
            let privileged = matches!(
                op,
                Opcode::Halt
                    | Opcode::Bpt
                    | Opcode::Ldpctx
                    | Opcode::Svpctx
                    | Opcode::Mtpr
                    | Opcode::Mfpr
                    | Opcode::Chme
                    | Opcode::Chms
                    | Opcode::Chmu
            );
            assert_eq!(exec_cost(op).is_none(), privileged, "{op:?}");
        }
    }

    #[test]
    fn expected_issues_movl_reg_reg() {
        let cs = ControlStore::build();
        let shape = InstShape {
            opcode: Opcode::Movl,
            specs: vec![
                SpecShape {
                    class: SpecModeClass::Register,
                    access: AccessType::Read,
                    dtype: DataType::Long,
                    indexed: false,
                },
                SpecShape {
                    class: SpecModeClass::Register,
                    access: AccessType::Write,
                    dtype: DataType::Long,
                    indexed: false,
                },
            ],
        };
        let m = expected_issues(&cs, &shape).unwrap();
        assert_eq!(m[&cs.ird1().value()], 1);
        assert_eq!(
            m[&cs
                .spec_entry(SpecPosition::First, SpecModeClass::Register)
                .value()],
            1
        );
        // Destination store: the SPEC2-6 register routine's compute slot.
        assert_eq!(
            m[&cs
                .spec_compute(SpecPosition::Rest, SpecModeClass::Register)
                .value()],
            1
        );
        assert_eq!(m[&cs.exec_entry(Opcode::Movl).value()], 1);
        // Total: decode + 2 entries + store + exec entry.
        assert_eq!(m.values().sum::<u64>(), 5);
    }
}
