//! The deterministic control-store layout.

use crate::{AddrClass, EventTag, MemOp, MicroAddr, Row, SpecPosition, StallPoint};
use vax_arch::{BranchClass, Opcode, OpcodeGroup, SpecModeClass};

const IRD1: u16 = 0x000;
const IB_STALL_BASE: u16 = 0x001; // 4 addresses, one per StallPoint
const BDISP: u16 = 0x005;
const SPEC_INDEX_BASE: u16 = 0x008; // 2 addresses (SPEC1, SPEC2-6)
const SPEC_BASE: u16 = 0x010; // 2 positions x 10 classes x 4 slots = 80
const SPEC_SLOTS: u16 = 4;
const BRANCH_TAKEN_BASE: u16 = 0x060; // 9 branch classes
const TB_MISS_BASE: u16 = 0x070; // entry, body, pte read, sys read, insert
const MEMMGMT_BASE: u16 = 0x078; // compute, read, write (alignment etc.)
const INT_BASE: u16 = 0x080; // entry, body, read, write
const EXC_BASE: u16 = 0x084; // entry, body, read, write
const ABORT: u16 = 0x088;
const SOFT_INT_REQ: u16 = 0x089;
const FAULT_BASE: u16 = 0x090; // machine-check entry, recovery body
const EXEC_BASE: u16 = 0x100; // per opcode: entry, compute, read, write
const EXEC_SLOTS: u16 = 4;

/// The control store: a classification for every allocated micro-address,
/// plus named accessors the CPU model dispatches through.
///
/// # Example
///
/// ```
/// use vax_ucode::{ControlStore, EventTag, MemOp};
/// use vax_arch::Opcode;
///
/// let cs = ControlStore::build();
/// let entry = cs.exec_entry(Opcode::Movl);
/// let class = cs.class(entry);
/// assert_eq!(class.tag, EventTag::ExecEntry(Opcode::Movl));
/// assert_eq!(class.op, MemOp::Compute);
/// ```
#[derive(Debug, Clone)]
pub struct ControlStore {
    classes: Vec<Option<AddrClass>>,
    opcode_index: [u16; 256],
    size: usize,
}

impl ControlStore {
    /// Build the layout. Deterministic: the same "listing" every time,
    /// like a microcode revision.
    pub fn build() -> ControlStore {
        let mut opcode_index = [u16::MAX; 256];
        for (i, op) in Opcode::ALL.iter().enumerate() {
            opcode_index[op.to_byte() as usize] = i as u16;
        }
        let top = EXEC_BASE as usize + Opcode::ALL.len() * EXEC_SLOTS as usize;
        assert!(top <= MicroAddr::SPACE, "layout exceeds the control store");
        let mut classes: Vec<Option<AddrClass>> = vec![None; top];

        let mut set = |addr: u16, class: AddrClass| {
            classes[addr as usize] = Some(class);
        };

        set(
            IRD1,
            AddrClass {
                row: Row::Decode,
                op: MemOp::Compute,
                tag: EventTag::InstDecode,
            },
        );
        for point in StallPoint::ALL {
            set(
                IB_STALL_BASE + point.index() as u16,
                AddrClass {
                    row: point.row(),
                    op: MemOp::Compute,
                    tag: EventTag::IbStall(point),
                },
            );
        }
        set(
            BDISP,
            AddrClass {
                row: Row::BranchDisp,
                op: MemOp::Compute,
                tag: EventTag::BranchDispatch,
            },
        );
        for pos in SpecPosition::ALL {
            set(
                SPEC_INDEX_BASE + pos.index() as u16,
                AddrClass {
                    row: spec_row(pos),
                    op: MemOp::Compute,
                    tag: EventTag::SpecIndex(pos),
                },
            );
        }
        for pos in SpecPosition::ALL {
            for class in SpecModeClass::ALL {
                let base = spec_slot_base(pos, class);
                let row = spec_row(pos);
                set(
                    base,
                    AddrClass {
                        row,
                        op: MemOp::Compute,
                        tag: EventTag::SpecEntry(pos, class),
                    },
                );
                set(base + 1, AddrClass::body(row));
                set(
                    base + 2,
                    AddrClass {
                        row,
                        op: MemOp::Read,
                        tag: EventTag::None,
                    },
                );
                set(
                    base + 3,
                    AddrClass {
                        row,
                        op: MemOp::Write,
                        tag: EventTag::None,
                    },
                );
            }
        }
        for class in BranchClass::ALL {
            // For displacement branches the taken-redirect cycle IS the
            // branch-displacement target calculation (§5: B-Disp compute
            // is spent only when the instruction branches); classes that
            // compute their targets from operands redirect within their
            // execute row.
            let row = match class {
                BranchClass::SimpleCond
                | BranchClass::Loop
                | BranchClass::LowBitTest
                | BranchClass::BitBranch => Row::BranchDisp,
                other => Row::Exec(branch_class_group(other)),
            };
            set(
                BRANCH_TAKEN_BASE + class.index() as u16,
                AddrClass {
                    row,
                    op: MemOp::Compute,
                    tag: EventTag::BranchTaken(class),
                },
            );
        }
        // TB miss service routine.
        set(
            TB_MISS_BASE,
            AddrClass {
                row: Row::MemMgmt,
                op: MemOp::Compute,
                tag: EventTag::TbMissEntry,
            },
        );
        set(TB_MISS_BASE + 1, AddrClass::body(Row::MemMgmt));
        set(
            TB_MISS_BASE + 2,
            AddrClass {
                row: Row::MemMgmt,
                op: MemOp::Read,
                tag: EventTag::None,
            },
        );
        set(
            TB_MISS_BASE + 3,
            AddrClass {
                row: Row::MemMgmt,
                op: MemOp::Read,
                tag: EventTag::None,
            },
        );
        set(TB_MISS_BASE + 4, AddrClass::body(Row::MemMgmt));
        // Alignment / other memory-management microcode.
        set(
            MEMMGMT_BASE,
            AddrClass {
                row: Row::MemMgmt,
                op: MemOp::Compute,
                tag: EventTag::MemMgmtBody,
            },
        );
        set(
            MEMMGMT_BASE + 1,
            AddrClass {
                row: Row::MemMgmt,
                op: MemOp::Read,
                tag: EventTag::MemMgmtBody,
            },
        );
        set(
            MEMMGMT_BASE + 2,
            AddrClass {
                row: Row::MemMgmt,
                op: MemOp::Write,
                tag: EventTag::MemMgmtBody,
            },
        );
        // Interrupt service dispatch microcode.
        set(
            INT_BASE,
            AddrClass {
                row: Row::IntExcept,
                op: MemOp::Compute,
                tag: EventTag::InterruptEntry,
            },
        );
        set(INT_BASE + 1, AddrClass::body(Row::IntExcept));
        set(
            INT_BASE + 2,
            AddrClass {
                row: Row::IntExcept,
                op: MemOp::Read,
                tag: EventTag::None,
            },
        );
        set(
            INT_BASE + 3,
            AddrClass {
                row: Row::IntExcept,
                op: MemOp::Write,
                tag: EventTag::None,
            },
        );
        // Exception service dispatch microcode.
        set(
            EXC_BASE,
            AddrClass {
                row: Row::IntExcept,
                op: MemOp::Compute,
                tag: EventTag::ExceptionEntry,
            },
        );
        set(EXC_BASE + 1, AddrClass::body(Row::IntExcept));
        set(
            EXC_BASE + 2,
            AddrClass {
                row: Row::IntExcept,
                op: MemOp::Read,
                tag: EventTag::None,
            },
        );
        set(
            EXC_BASE + 3,
            AddrClass {
                row: Row::IntExcept,
                op: MemOp::Write,
                tag: EventTag::None,
            },
        );
        set(
            ABORT,
            AddrClass {
                row: Row::Abort,
                op: MemOp::Compute,
                tag: EventTag::AbortCycle,
            },
        );
        set(
            SOFT_INT_REQ,
            AddrClass {
                row: Row::Exec(OpcodeGroup::System),
                op: MemOp::Compute,
                tag: EventTag::SoftIntRequest,
            },
        );
        // Machine-check / fault-recovery microcode. The recovery flow is
        // compute-only: the 780's machine-check microcode re-reads state
        // registers internal to the CPU, so no D-stream stalls arise and
        // the read+write == stall-cycle partition stays exact under
        // injected faults.
        set(
            FAULT_BASE,
            AddrClass {
                row: Row::FaultHandling,
                op: MemOp::Compute,
                tag: EventTag::MachineCheckEntry,
            },
        );
        set(FAULT_BASE + 1, AddrClass::body(Row::FaultHandling));
        for (i, &op) in Opcode::ALL.iter().enumerate() {
            let base = EXEC_BASE + i as u16 * EXEC_SLOTS;
            let row = Row::Exec(op.group());
            set(
                base,
                AddrClass {
                    row,
                    op: MemOp::Compute,
                    tag: EventTag::ExecEntry(op),
                },
            );
            set(base + 1, AddrClass::body(row));
            set(
                base + 2,
                AddrClass {
                    row,
                    op: MemOp::Read,
                    tag: EventTag::None,
                },
            );
            set(
                base + 3,
                AddrClass {
                    row,
                    op: MemOp::Write,
                    tag: EventTag::None,
                },
            );
        }

        ControlStore {
            classes,
            opcode_index,
            size: top,
        }
    }

    /// Number of allocated control-store locations.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The classification of `addr`.
    ///
    /// # Panics
    ///
    /// Panics for addresses outside the allocated layout (a mis-built CPU
    /// model, not a runtime condition).
    pub fn class(&self, addr: MicroAddr) -> AddrClass {
        self.classes
            .get(addr.index())
            .copied()
            .flatten()
            .unwrap_or_else(|| panic!("unallocated micro-address {addr}"))
    }

    /// Iterate over all allocated (address, class) pairs — the "listing".
    pub fn iter(&self) -> impl Iterator<Item = (MicroAddr, AddrClass)> + '_ {
        self.classes
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.map(|c| (MicroAddr::new(i as u16), c)))
    }

    /// The named regions of the layout: `(name, base, len)` in address
    /// order. Every allocated address falls in exactly one region; the
    /// gaps between regions are deliberately unallocated (a real listing
    /// leaves patch space). Auditing tools check both properties.
    pub fn regions(&self) -> Vec<(&'static str, u16, u16)> {
        vec![
            ("ird1", IRD1, 1),
            ("ib-stall", IB_STALL_BASE, 4),
            ("bdisp", BDISP, 1),
            ("spec-index", SPEC_INDEX_BASE, 2),
            ("spec", SPEC_BASE, 2 * 10 * SPEC_SLOTS),
            ("branch-taken", BRANCH_TAKEN_BASE, 9),
            ("tb-miss", TB_MISS_BASE, 5),
            ("memmgmt", MEMMGMT_BASE, 3),
            ("interrupt", INT_BASE, 4),
            ("exception", EXC_BASE, 4),
            ("abort", ABORT, 1),
            ("soft-int", SOFT_INT_REQ, 1),
            ("fault-recovery", FAULT_BASE, 2),
            ("exec", EXEC_BASE, Opcode::ALL.len() as u16 * EXEC_SLOTS),
        ]
    }

    // ----- named accessors (CPU dispatch points) ---------------------------

    /// The IRD1 initial-decode dispatch.
    pub fn ird1(&self) -> MicroAddr {
        MicroAddr::new(IRD1)
    }

    /// The IB-stall dispatch for a starved decode at `point`.
    pub fn ib_stall(&self, point: StallPoint) -> MicroAddr {
        MicroAddr::new(IB_STALL_BASE + point.index() as u16)
    }

    /// Branch-displacement processing.
    pub fn bdisp(&self) -> MicroAddr {
        MicroAddr::new(BDISP)
    }

    /// Index-mode prefix routine for a specifier at `pos`.
    pub fn spec_index(&self, pos: SpecPosition) -> MicroAddr {
        MicroAddr::new(SPEC_INDEX_BASE + pos.index() as u16)
    }

    /// Entry of the specifier routine for (`pos`, `class`).
    pub fn spec_entry(&self, pos: SpecPosition, class: SpecModeClass) -> MicroAddr {
        MicroAddr::new(spec_slot_base(pos, class))
    }

    /// Compute-body slot of a specifier routine.
    pub fn spec_compute(&self, pos: SpecPosition, class: SpecModeClass) -> MicroAddr {
        MicroAddr::new(spec_slot_base(pos, class) + 1)
    }

    /// Read slot of a specifier routine (operand fetch).
    pub fn spec_read(&self, pos: SpecPosition, class: SpecModeClass) -> MicroAddr {
        MicroAddr::new(spec_slot_base(pos, class) + 2)
    }

    /// Write slot of a specifier routine (result store).
    pub fn spec_write(&self, pos: SpecPosition, class: SpecModeClass) -> MicroAddr {
        MicroAddr::new(spec_slot_base(pos, class) + 3)
    }

    /// The IB-redirect cycle of a taken branch of `class`.
    pub fn branch_taken(&self, class: BranchClass) -> MicroAddr {
        MicroAddr::new(BRANCH_TAKEN_BASE + class.index() as u16)
    }

    /// TB-miss service routine entry.
    pub fn tb_miss_entry(&self) -> MicroAddr {
        MicroAddr::new(TB_MISS_BASE)
    }

    /// TB-miss routine compute body.
    pub fn tb_miss_body(&self) -> MicroAddr {
        MicroAddr::new(TB_MISS_BASE + 1)
    }

    /// TB-miss PTE read microinstruction.
    pub fn tb_miss_pte_read(&self) -> MicroAddr {
        MicroAddr::new(TB_MISS_BASE + 2)
    }

    /// TB-miss nested system PTE read (double miss).
    pub fn tb_miss_sys_read(&self) -> MicroAddr {
        MicroAddr::new(TB_MISS_BASE + 3)
    }

    /// TB-miss insert/restart tail.
    pub fn tb_miss_insert(&self) -> MicroAddr {
        MicroAddr::new(TB_MISS_BASE + 4)
    }

    /// Alignment/memory-management compute body.
    pub fn memmgmt_compute(&self) -> MicroAddr {
        MicroAddr::new(MEMMGMT_BASE)
    }

    /// Alignment/memory-management read.
    pub fn memmgmt_read(&self) -> MicroAddr {
        MicroAddr::new(MEMMGMT_BASE + 1)
    }

    /// Alignment/memory-management write.
    pub fn memmgmt_write(&self) -> MicroAddr {
        MicroAddr::new(MEMMGMT_BASE + 2)
    }

    /// Interrupt service entry.
    pub fn int_entry(&self) -> MicroAddr {
        MicroAddr::new(INT_BASE)
    }

    /// Interrupt service compute body.
    pub fn int_body(&self) -> MicroAddr {
        MicroAddr::new(INT_BASE + 1)
    }

    /// Interrupt service read (vector fetch).
    pub fn int_read(&self) -> MicroAddr {
        MicroAddr::new(INT_BASE + 2)
    }

    /// Interrupt service write (PC/PSL push).
    pub fn int_write(&self) -> MicroAddr {
        MicroAddr::new(INT_BASE + 3)
    }

    /// Exception service entry.
    pub fn exc_entry(&self) -> MicroAddr {
        MicroAddr::new(EXC_BASE)
    }

    /// Exception service compute body.
    pub fn exc_body(&self) -> MicroAddr {
        MicroAddr::new(EXC_BASE + 1)
    }

    /// Exception service read.
    pub fn exc_read(&self) -> MicroAddr {
        MicroAddr::new(EXC_BASE + 2)
    }

    /// Exception service write.
    pub fn exc_write(&self) -> MicroAddr {
        MicroAddr::new(EXC_BASE + 3)
    }

    /// The abort-cycle location (one execution per microcode trap).
    pub fn abort(&self) -> MicroAddr {
        MicroAddr::new(ABORT)
    }

    /// Executed when `MTPR` posts a software interrupt request.
    pub fn soft_int_request(&self) -> MicroAddr {
        MicroAddr::new(SOFT_INT_REQ)
    }

    /// Machine-check/fault-recovery entry (one execution per fault taken).
    pub fn fault_entry(&self) -> MicroAddr {
        MicroAddr::new(FAULT_BASE)
    }

    /// Machine-check recovery compute body.
    pub fn fault_body(&self) -> MicroAddr {
        MicroAddr::new(FAULT_BASE + 1)
    }

    fn opcode_slot(&self, op: Opcode) -> u16 {
        let i = self.opcode_index[op.to_byte() as usize];
        debug_assert_ne!(i, u16::MAX);
        EXEC_BASE + i * EXEC_SLOTS
    }

    /// Execute-routine entry for `op` (dispatch target of I-Decode).
    pub fn exec_entry(&self, op: Opcode) -> MicroAddr {
        MicroAddr::new(self.opcode_slot(op))
    }

    /// Execute-routine compute body for `op`.
    pub fn exec_compute(&self, op: Opcode) -> MicroAddr {
        MicroAddr::new(self.opcode_slot(op) + 1)
    }

    /// Execute-routine read microinstruction for `op`.
    pub fn exec_read(&self, op: Opcode) -> MicroAddr {
        MicroAddr::new(self.opcode_slot(op) + 2)
    }

    /// Execute-routine write microinstruction for `op`.
    pub fn exec_write(&self, op: Opcode) -> MicroAddr {
        MicroAddr::new(self.opcode_slot(op) + 3)
    }
}

impl Default for ControlStore {
    fn default() -> Self {
        ControlStore::build()
    }
}

fn spec_row(pos: SpecPosition) -> Row {
    match pos {
        SpecPosition::First => Row::Spec1,
        SpecPosition::Rest => Row::Spec2to6,
    }
}

fn spec_slot_base(pos: SpecPosition, class: SpecModeClass) -> u16 {
    SPEC_BASE + (pos.index() as u16 * 10 + class.index() as u16) * SPEC_SLOTS
}

/// The group whose execute row a taken branch's redirect cycle belongs to.
fn branch_class_group(class: BranchClass) -> OpcodeGroup {
    match class {
        BranchClass::SimpleCond
        | BranchClass::Loop
        | BranchClass::LowBitTest
        | BranchClass::SubroutineCallRet
        | BranchClass::Unconditional
        | BranchClass::Case => OpcodeGroup::Simple,
        BranchClass::BitBranch => OpcodeGroup::Field,
        BranchClass::ProcedureCallRet => OpcodeGroup::CallRet,
        BranchClass::SystemBranch => OpcodeGroup::System,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_fits_the_board() {
        let cs = ControlStore::build();
        assert!(cs.size() <= MicroAddr::SPACE);
        // Sanity: a few hundred words, like a real machine's WCS scale.
        assert!(cs.size() > 256);
    }

    #[test]
    fn all_named_addresses_are_classified() {
        let cs = ControlStore::build();
        assert_eq!(cs.class(cs.ird1()).tag, EventTag::InstDecode);
        assert_eq!(
            cs.class(cs.ib_stall(StallPoint::Spec1)).tag,
            EventTag::IbStall(StallPoint::Spec1)
        );
        assert_eq!(cs.class(cs.bdisp()).row, Row::BranchDisp);
        assert_eq!(cs.class(cs.tb_miss_entry()).tag, EventTag::TbMissEntry);
        assert_eq!(cs.class(cs.tb_miss_pte_read()).op, MemOp::Read);
        assert_eq!(cs.class(cs.abort()).row, Row::Abort);
        assert_eq!(cs.class(cs.int_entry()).tag, EventTag::InterruptEntry);
        assert_eq!(cs.class(cs.exc_entry()).tag, EventTag::ExceptionEntry);
        assert_eq!(cs.class(cs.fault_entry()).tag, EventTag::MachineCheckEntry);
        assert_eq!(cs.class(cs.fault_entry()).row, Row::FaultHandling);
        assert_eq!(cs.class(cs.fault_body()).op, MemOp::Compute);
    }

    #[test]
    fn spec_slots_distinguish_position_class_and_op() {
        let cs = ControlStore::build();
        for pos in SpecPosition::ALL {
            for class in SpecModeClass::ALL {
                let e = cs.class(cs.spec_entry(pos, class));
                assert_eq!(e.tag, EventTag::SpecEntry(pos, class));
                assert_eq!(e.op, MemOp::Compute);
                assert_eq!(cs.class(cs.spec_read(pos, class)).op, MemOp::Read);
                assert_eq!(cs.class(cs.spec_write(pos, class)).op, MemOp::Write);
                let expected_row = match pos {
                    SpecPosition::First => Row::Spec1,
                    SpecPosition::Rest => Row::Spec2to6,
                };
                assert_eq!(e.row, expected_row);
            }
        }
    }

    #[test]
    fn exec_slots_cover_every_opcode_without_collision() {
        let cs = ControlStore::build();
        let mut seen = std::collections::HashSet::new();
        for &op in Opcode::ALL {
            let entry = cs.exec_entry(op);
            assert!(seen.insert(entry), "collision at {entry} for {op}");
            assert_eq!(cs.class(entry).tag, EventTag::ExecEntry(op));
            assert_eq!(cs.class(entry).row, Row::Exec(op.group()));
            assert_eq!(cs.class(cs.exec_read(op)).op, MemOp::Read);
            assert_eq!(cs.class(cs.exec_write(op)).op, MemOp::Write);
        }
    }

    #[test]
    fn branch_taken_rows_split_by_target_source() {
        let cs = ControlStore::build();
        // Displacement branches redirect in the B-Disp row.
        assert_eq!(
            cs.class(cs.branch_taken(BranchClass::SimpleCond)).row,
            Row::BranchDisp
        );
        assert_eq!(
            cs.class(cs.branch_taken(BranchClass::BitBranch)).row,
            Row::BranchDisp
        );
        assert_eq!(
            cs.class(cs.branch_taken(BranchClass::Loop)).row,
            Row::BranchDisp
        );
        // Operand-targeted PC changers redirect in their execute row.
        assert_eq!(
            cs.class(cs.branch_taken(BranchClass::ProcedureCallRet)).row,
            Row::Exec(OpcodeGroup::CallRet)
        );
        assert_eq!(
            cs.class(cs.branch_taken(BranchClass::Unconditional)).row,
            Row::Exec(OpcodeGroup::Simple)
        );
        assert_eq!(
            cs.class(cs.branch_taken(BranchClass::SystemBranch)).row,
            Row::Exec(OpcodeGroup::System)
        );
    }

    #[test]
    fn listing_iterates_uniquely() {
        let cs = ControlStore::build();
        let mut seen = std::collections::HashSet::new();
        let mut entries = 0usize;
        for (addr, class) in cs.iter() {
            assert!(seen.insert(addr));
            if matches!(class.tag, EventTag::ExecEntry(_)) {
                entries += 1;
            }
        }
        assert_eq!(entries, Opcode::ALL.len());
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn unallocated_address_panics() {
        let cs = ControlStore::build();
        let _ = cs.class(MicroAddr::new(0x0F0));
    }
}
