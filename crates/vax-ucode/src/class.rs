//! Per-address classification: Table 8 row, memory-operation class, and
//! event tags for frequency analysis.

use std::fmt;
use vax_arch::{BranchClass, Opcode, OpcodeGroup, SpecModeClass};

/// Specifier position distinguished by the 11/780 microcode: the first
/// specifier ("SPEC1") versus all later ones ("SPEC2-6") — paper §3.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpecPosition {
    /// The specifier directly following the opcode.
    First,
    /// Specifiers 2–6.
    Rest,
}

impl SpecPosition {
    /// Both positions, SPEC1 first.
    pub const ALL: [SpecPosition; 2] = [SpecPosition::First, SpecPosition::Rest];

    /// Index 0 for SPEC1, 1 for SPEC2-6.
    pub const fn index(self) -> usize {
        match self {
            SpecPosition::First => 0,
            SpecPosition::Rest => 1,
        }
    }

    /// Label as printed in Tables 4/5/8.
    pub const fn name(self) -> &'static str {
        match self {
            SpecPosition::First => "SPEC1",
            SpecPosition::Rest => "SPEC2-6",
        }
    }
}

impl fmt::Display for SpecPosition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The rows of the paper's Table 8: the stages/activities an average
/// instruction's cycles are attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Row {
    /// Initial instruction decode (one non-overlapped cycle).
    Decode,
    /// First-specifier processing.
    Spec1,
    /// Processing of specifiers 2–6.
    Spec2to6,
    /// Branch-displacement processing.
    BranchDisp,
    /// Execute phase, by opcode group.
    Exec(OpcodeGroup),
    /// Interrupts and exceptions (overhead, not per-instruction).
    IntExcept,
    /// Memory management (TB miss service) and alignment microcode.
    MemMgmt,
    /// Abort cycles (one per microcode trap).
    Abort,
    /// Machine-check and fault-recovery microcode (injected faults).
    FaultHandling,
}

impl Row {
    /// Number of rows (Table 8 plus the fault-handling extension).
    pub const COUNT: usize = 15;

    /// All rows in Table 8 order.
    pub const ALL: [Row; Row::COUNT] = [
        Row::Decode,
        Row::Spec1,
        Row::Spec2to6,
        Row::BranchDisp,
        Row::Exec(OpcodeGroup::Simple),
        Row::Exec(OpcodeGroup::Field),
        Row::Exec(OpcodeGroup::Float),
        Row::Exec(OpcodeGroup::CallRet),
        Row::Exec(OpcodeGroup::System),
        Row::Exec(OpcodeGroup::Character),
        Row::Exec(OpcodeGroup::Decimal),
        Row::IntExcept,
        Row::MemMgmt,
        Row::Abort,
        Row::FaultHandling,
    ];

    /// Stable index 0–14 in Table 8 order.
    pub const fn index(self) -> usize {
        match self {
            Row::Decode => 0,
            Row::Spec1 => 1,
            Row::Spec2to6 => 2,
            Row::BranchDisp => 3,
            Row::Exec(g) => 4 + g.index(),
            Row::IntExcept => 11,
            Row::MemMgmt => 12,
            Row::Abort => 13,
            Row::FaultHandling => 14,
        }
    }

    /// Row label as printed in Table 8.
    pub const fn name(self) -> &'static str {
        match self {
            Row::Decode => "Decode",
            Row::Spec1 => "Spec 1",
            Row::Spec2to6 => "Spec 2-6",
            Row::BranchDisp => "B-Disp",
            Row::Exec(g) => g.name(),
            Row::IntExcept => "Int/Except",
            Row::MemMgmt => "Mem Mgmt",
            Row::Abort => "Abort",
            Row::FaultHandling => "Fault Handling",
        }
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Static memory-operation class of a microinstruction. On the 11/780
/// a microinstruction can read or write, never both (§4.3); the histogram
/// board distinguishes read stalls from write stalls by this property of
/// the stalled address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOp {
    /// Autonomous EBOX operation, no memory reference.
    Compute,
    /// Performs a D-stream read.
    Read,
    /// Performs a D-stream write.
    Write,
}

/// The decode points where the microcode may find the IB empty; IB stall
/// cycles are attributed to the row of the starved decode (§5 discussion
/// of where IB stalls occur).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallPoint {
    /// Initial opcode decode.
    Decode,
    /// First specifier decode.
    Spec1,
    /// Later specifier decode.
    Spec2to6,
    /// Branch-displacement fetch.
    BranchDisp,
}

impl StallPoint {
    /// All stall points.
    pub const ALL: [StallPoint; 4] = [
        StallPoint::Decode,
        StallPoint::Spec1,
        StallPoint::Spec2to6,
        StallPoint::BranchDisp,
    ];

    /// Index 0–3.
    pub const fn index(self) -> usize {
        match self {
            StallPoint::Decode => 0,
            StallPoint::Spec1 => 1,
            StallPoint::Spec2to6 => 2,
            StallPoint::BranchDisp => 3,
        }
    }

    /// The Table 8 row the stall is charged to.
    pub const fn row(self) -> Row {
        match self {
            StallPoint::Decode => Row::Decode,
            StallPoint::Spec1 => Row::Spec1,
            StallPoint::Spec2to6 => Row::Spec2to6,
            StallPoint::BranchDisp => Row::BranchDisp,
        }
    }
}

/// What executing the microinstruction at an address *means*, for event
/// frequency analysis (paper §3: "the frequency of many events can be
/// determined through examination of the relative execution counts of
/// various microinstructions").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventTag {
    /// No event; plain routine body.
    None,
    /// The IRD1 decode dispatch: exactly one execution per instruction.
    InstDecode,
    /// An IB-stall dispatch: each execution is one IB-stall cycle.
    IbStall(StallPoint),
    /// Entry to a specifier routine: one execution per specifier of this
    /// position and mode class.
    SpecEntry(SpecPosition, SpecModeClass),
    /// The index-mode prefix routine: one execution per indexed specifier.
    SpecIndex(SpecPosition),
    /// Branch-displacement processing: one execution per displacement.
    BranchDispatch,
    /// Entry to an opcode's execute routine: one execution per instance of
    /// the opcode.
    ExecEntry(Opcode),
    /// The IB-redirect cycle of a taken PC-changing instruction.
    BranchTaken(BranchClass),
    /// Entry to the TB miss service routine: one execution per miss.
    TbMissEntry,
    /// Entry to interrupt service microcode: one execution per interrupt.
    InterruptEntry,
    /// Entry to exception service microcode.
    ExceptionEntry,
    /// Executed when `MTPR` posts a software interrupt request.
    SoftIntRequest,
    /// Entry to machine-check/fault-recovery microcode: one execution per
    /// injected fault taken.
    MachineCheckEntry,
    /// Alignment/memory-management microcode body.
    MemMgmtBody,
    /// An abort cycle (one per microcode trap).
    AbortCycle,
}

/// The full classification of one control-store address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddrClass {
    /// Table 8 row.
    pub row: Row,
    /// Static memory-operation class.
    pub op: MemOp,
    /// Event meaning of an execution count at this address.
    pub tag: EventTag,
}

impl AddrClass {
    /// An unremarkable compute-body address in `row`.
    pub const fn body(row: Row) -> AddrClass {
        AddrClass {
            row,
            op: MemOp::Compute,
            tag: EventTag::None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_indices_are_unique_and_ordered() {
        for (i, r) in Row::ALL.iter().enumerate() {
            assert_eq!(r.index(), i, "{r}");
        }
    }

    #[test]
    fn stall_points_map_to_rows() {
        assert_eq!(StallPoint::Decode.row(), Row::Decode);
        assert_eq!(StallPoint::Spec1.row(), Row::Spec1);
        assert_eq!(StallPoint::Spec2to6.row(), Row::Spec2to6);
        assert_eq!(StallPoint::BranchDisp.row(), Row::BranchDisp);
    }

    #[test]
    fn spec_positions() {
        assert_eq!(SpecPosition::First.name(), "SPEC1");
        assert_eq!(SpecPosition::Rest.index(), 1);
    }
}
