//! Micro-address newtype.

use std::fmt;

/// An address in the 11/780 control store (and thus a bucket index on the
/// histogram board, which has 16 K count locations — paper §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MicroAddr(u16);

impl MicroAddr {
    /// Number of addressable control-store locations (= histogram buckets).
    pub const SPACE: usize = 16 * 1024;

    /// A micro-address.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the 16 K control store.
    pub const fn new(addr: u16) -> MicroAddr {
        assert!((addr as usize) < MicroAddr::SPACE, "micro-address range");
        MicroAddr(addr)
    }

    /// The raw address value.
    #[inline]
    pub const fn value(self) -> u16 {
        self.0
    }

    /// Usable as a bucket index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The address `offset` locations later.
    ///
    /// # Panics
    ///
    /// Panics on overflow of the control store.
    pub const fn offset(self, offset: u16) -> MicroAddr {
        MicroAddr::new(self.0 + offset)
    }
}

impl fmt::Display for MicroAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{:04x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let a = MicroAddr::new(0x123);
        assert_eq!(a.value(), 0x123);
        assert_eq!(a.index(), 0x123);
        assert_eq!(a.offset(2).value(), 0x125);
        assert_eq!(a.to_string(), "u0123");
    }

    #[test]
    #[should_panic(expected = "micro-address range")]
    fn rejects_out_of_range() {
        let _ = MicroAddr::new(0x4000);
    }
}
