//! Derived per-opcode effect footprints.
//!
//! The block tier (vax-cpu) rests on two opcode classifiers —
//! "cannot redirect execution" and "cannot perturb interrupt state" —
//! that were written by hand. The paper's lesson is to trust derivation
//! and measurement over documentation, so this module *derives* a
//! conservative effect footprint for every opcode from three
//! independent sources that were each built for other reasons:
//!
//! 1. the architectural operand templates and branch classes
//!    (`vax-arch`): what the instruction declares it reads, writes,
//!    and where it can send PC;
//! 2. control-store region membership (`ControlStore::class`): which
//!    Table 8 execute row the opcode's microroutine lives in — the
//!    System row is exactly the microcode that may touch IPL, SISR,
//!    the PSL privilege bits, or the address space;
//! 3. the static characterization (`model::exec_cost`): which opcodes
//!    the probe refuses to drive (privileged), which take a canonical
//!    branch redirect, and which are provably inert (zero issues at
//!    every execute slot).
//!
//! No hand list of opcodes appears anywhere below: every rule is a
//! predicate over those tables. The derived footprints are compared
//! against the block tier's hand classifiers by `vax-cpu`'s effect
//! audit (and by `vax780 lint --effects`), in both directions — a
//! derived-unsafe opcode claimed safe is unsound (error); a
//! derived-safe opcode claimed unsafe is foregone coverage (warning).
//!
//! # Why the System-row rule is shaped the way it is
//!
//! An opcode in the System execute row manipulates machine state, but
//! only some System-row opcodes perturb the *interrupt-relevant* state
//! the block tier freezes. The discriminating observation: a System
//! opcode whose only architecturally visible destination is a normal
//! operand (MFPR's `.wl`, PROBEx's condition codes via `.ab` probes,
//! INSQUE/REMQUE's queue words) cannot be the instruction that raises
//! IPL or switches address space — those effects have no operand to
//! flow through, so opcodes that produce them declare *no* writable
//! operand at all (HALT, LDPCTX, SVPCTX) or only `.rx` sources (MTPR).
//! Conversely an operand-less System opcode that the characterization
//! proves inert (NOP: zero issues at every slot, no redirect) has no
//! microcode left to perturb anything with.

use crate::model;
use crate::{ControlStore, Row};
use std::fmt;
use vax_arch::{AccessType, BranchClass, Opcode, OpcodeGroup};

/// A conservative, derived set of architectural effects an opcode may
/// have. "May": every bit is an over-approximation — absence of a bit
/// is a proof, presence is a possibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EffectSet(u16);

impl EffectSet {
    /// The empty footprint (a provably inert instruction).
    pub const EMPTY: EffectSet = EffectSet(0);
    /// May load PC with something other than the next sequential
    /// instruction (branches, calls, returns, case dispatch, traps).
    pub const REDIRECTS_PC: EffectSet = EffectSet(1 << 0);
    /// May write interrupt-relevant machine state: PSL privilege
    /// bits/mode, IPL, SISR, or the address space mapping.
    pub const WRITES_INTERRUPT_STATE: EffectSet = EffectSet(1 << 1);
    /// Touches privileged processor registers or is refused by the
    /// user-mode characterization probe.
    pub const PRIVILEGED: EffectSet = EffectSet(1 << 2);
    /// May store to memory (through an operand or its microroutine).
    pub const WRITES_MEMORY: EffectSet = EffectSet(1 << 3);
    /// May read memory (operand fetch or microroutine D-stream read).
    pub const READS_MEMORY: EffectSet = EffectSet(1 << 4);
    /// May take a fault mid-instruction (memory reference or trap).
    pub const MAY_FAULT: EffectSet = EffectSet(1 << 5);
    /// Iterates internally: string/decimal element loops or a counted
    /// loop branch.
    pub const ITERATES: EffectSet = EffectSet(1 << 6);

    /// Set union.
    #[must_use]
    pub const fn union(self, other: EffectSet) -> EffectSet {
        EffectSet(self.0 | other.0)
    }

    /// Does this footprint contain every bit of `other`?
    pub const fn contains(self, other: EffectSet) -> bool {
        self.0 & other.0 == other.0
    }

    /// Does this footprint share any bit with `other`?
    pub const fn intersects(self, other: EffectSet) -> bool {
        self.0 & other.0 != 0
    }

    /// Is this the empty footprint?
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// All `(bit, name)` pairs, for rendering and JSON export.
    pub const NAMES: &'static [(EffectSet, &'static str)] = &[
        (EffectSet::REDIRECTS_PC, "redirects-pc"),
        (EffectSet::WRITES_INTERRUPT_STATE, "writes-interrupt-state"),
        (EffectSet::PRIVILEGED, "privileged"),
        (EffectSet::WRITES_MEMORY, "writes-memory"),
        (EffectSet::READS_MEMORY, "reads-memory"),
        (EffectSet::MAY_FAULT, "may-fault"),
        (EffectSet::ITERATES, "iterates"),
    ];
}

impl std::ops::BitOr for EffectSet {
    type Output = EffectSet;
    fn bitor(self, rhs: EffectSet) -> EffectSet {
        self.union(rhs)
    }
}

impl std::ops::BitOrAssign for EffectSet {
    fn bitor_assign(&mut self, rhs: EffectSet) {
        *self = self.union(rhs);
    }
}

impl fmt::Display for EffectSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "inert");
        }
        let mut first = true;
        for &(bit, name) in EffectSet::NAMES {
            if self.contains(bit) {
                if !first {
                    write!(f, "+")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        Ok(())
    }
}

/// Is the opcode's execute routine provably inert — characterized with
/// zero issues at every execute slot and no canonical redirect? (Only
/// a characterized opcode can be proven inert; an uncharacterized one
/// stays conservative.)
fn provably_inert(op: Opcode) -> bool {
    matches!(
        model::exec_cost(op),
        Some(c) if c.compute == 0 && c.read == 0 && c.write == 0 && c.taken.is_none()
    )
}

/// Derive the conservative effect footprint of one opcode from the
/// operand templates, the branch classes, the control-store row map,
/// and the static characterization. No opcode is named in the rules.
pub fn derive(op: Opcode, cs: &ControlStore) -> EffectSet {
    let mut fx = EffectSet::EMPTY;
    let templates = op.operands();
    let cost = model::exec_cost(op);

    // --- architectural branch classes --------------------------------
    if let Some(bc) = op.branch_class() {
        fx |= EffectSet::REDIRECTS_PC;
        if bc == BranchClass::SystemBranch {
            // REI/CHMx/BPT redirects pop or push PSL: mode, IPL and
            // the privilege bits all change with the transfer.
            fx |= EffectSet::WRITES_INTERRUPT_STATE | EffectSet::MAY_FAULT;
        }
        if bc == BranchClass::Loop {
            fx |= EffectSet::ITERATES;
        }
    }

    // --- control-store execute-row membership ------------------------
    let row = cs.class(cs.exec_entry(op)).row;
    if row == Row::Exec(OpcodeGroup::System) {
        // A System-row opcode with no writable/address operand has no
        // operand its effect could flow through: whatever it does lands
        // directly in machine state (IPL, SISR, PSL, address space) —
        // unless the characterization proves the routine inert.
        let has_operand_dest = templates.iter().any(|t| {
            matches!(
                t.access(),
                AccessType::Write | AccessType::Modify | AccessType::Address | AccessType::Field
            )
        });
        if !has_operand_dest && !provably_inert(op) {
            fx |= EffectSet::WRITES_INTERRUPT_STATE | EffectSet::PRIVILEGED;
        }
    }
    if matches!(
        row,
        Row::Exec(OpcodeGroup::Character) | Row::Exec(OpcodeGroup::Decimal)
    ) {
        fx |= EffectSet::ITERATES;
    }

    // --- static characterization -------------------------------------
    match cost {
        // The probe refuses to drive it from user mode: privileged.
        None => fx |= EffectSet::PRIVILEGED,
        Some(c) => {
            if c.read > 0 {
                fx |= EffectSet::READS_MEMORY | EffectSet::MAY_FAULT;
            }
            if c.write > 0 {
                fx |= EffectSet::WRITES_MEMORY | EffectSet::MAY_FAULT;
            }
        }
    }

    // --- operand templates -------------------------------------------
    for t in templates {
        match t.access() {
            AccessType::Read => {
                fx |= EffectSet::READS_MEMORY | EffectSet::MAY_FAULT;
            }
            AccessType::Write => {
                fx |= EffectSet::WRITES_MEMORY | EffectSet::MAY_FAULT;
            }
            AccessType::Modify | AccessType::Field | AccessType::Address => {
                // `.ax`/`.vx` hand the routine an address or field base
                // whose access direction is opcode-specific: assume both.
                fx |= EffectSet::READS_MEMORY | EffectSet::WRITES_MEMORY | EffectSet::MAY_FAULT;
            }
            // A branch displacement is I-stream data, not a specifier.
            AccessType::Branch => {}
        }
    }

    fx
}

/// Derived form of the block tier's "may be flattened into a block"
/// claim: the instruction can neither redirect execution nor perturb
/// the interrupt state the block entry guards froze.
///
/// This is the *opcode-level* footprint; a specific parse can still be
/// rejected (a register-mode PC operand), which only the consumer with
/// the parse in hand can check.
pub fn derived_block_safe(op: Opcode, cs: &ControlStore) -> bool {
    !derive(op, cs).intersects(EffectSet::REDIRECTS_PC | EffectSet::WRITES_INTERRUPT_STATE)
}

/// Derived form of the block tier's "may the run continue after this
/// instruction retires" claim: redirecting PC is fine (the replay
/// follows), perturbing interrupt state is not.
pub fn derived_resume_safe(op: Opcode, cs: &ControlStore) -> bool {
    !derive(op, cs).contains(EffectSet::WRITES_INTERRUPT_STATE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redirect_bit_equals_the_architectural_branch_table() {
        let cs = ControlStore::build();
        for &op in Opcode::ALL {
            assert_eq!(
                derive(op, &cs).contains(EffectSet::REDIRECTS_PC),
                op.is_pc_changing(),
                "{op:?}"
            );
        }
    }

    #[test]
    fn nop_is_the_only_provably_inert_system_row_opcode() {
        let cs = ControlStore::build();
        for &op in Opcode::ALL {
            if cs.class(cs.exec_entry(op)).row == Row::Exec(OpcodeGroup::System) {
                assert_eq!(provably_inert(op), op == Opcode::Nop, "{op:?}");
            }
        }
    }

    #[test]
    fn interrupt_state_writers_are_exactly_the_uncontinuable_set() {
        // Regression pin: the derived interrupt-state writers. This is
        // the theorem the block tier's resume classifier must match —
        // pinned here so a table change that silently grows or shrinks
        // the set is visible in this crate, next to the tables.
        let cs = ControlStore::build();
        let writers: Vec<Opcode> = Opcode::ALL
            .iter()
            .copied()
            .filter(|&op| derive(op, &cs).contains(EffectSet::WRITES_INTERRUPT_STATE))
            .collect();
        assert_eq!(
            writers,
            vec![
                Opcode::Halt,
                Opcode::Rei,
                Opcode::Bpt,
                Opcode::Ldpctx,
                Opcode::Svpctx,
                Opcode::Chmk,
                Opcode::Chme,
                Opcode::Chms,
                Opcode::Chmu,
                Opcode::Mtpr,
            ]
        );
    }

    #[test]
    fn derived_safety_is_monotone_in_the_footprint() {
        let cs = ControlStore::build();
        for &op in Opcode::ALL {
            // Block safety implies resume safety (a block interior
            // instruction could always have been a terminator).
            if derived_block_safe(op, &cs) {
                assert!(derived_resume_safe(op, &cs), "{op:?}");
            }
        }
    }

    #[test]
    fn memory_write_bit_covers_every_writable_template() {
        let cs = ControlStore::build();
        for &op in Opcode::ALL {
            if op.operands().iter().any(|t| {
                matches!(
                    t.access(),
                    AccessType::Write | AccessType::Modify | AccessType::Address
                )
            }) {
                assert!(derive(op, &cs).contains(EffectSet::WRITES_MEMORY), "{op:?}");
            }
        }
    }

    #[test]
    fn display_renders_names() {
        assert_eq!(EffectSet::EMPTY.to_string(), "inert");
        let fx = EffectSet::REDIRECTS_PC | EffectSet::MAY_FAULT;
        assert_eq!(fx.to_string(), "redirects-pc+may-fault");
    }
}
