//! Invariants of the control-store listing that the whole methodology
//! rests on: unique addresses, static memory-op classes, and complete
//! event coverage.

use std::collections::HashMap;
use vax_arch::{BranchClass, Opcode, SpecModeClass};
use vax_ucode::{ControlStore, EventTag, MemOp, MicroAddr, Row, SpecPosition, StallPoint};

#[test]
fn every_event_tag_has_exactly_one_address() {
    let cs = ControlStore::build();
    let mut by_tag: HashMap<String, Vec<MicroAddr>> = HashMap::new();
    for (addr, class) in cs.iter() {
        let key = match class.tag {
            // `None` is the generic body marker; `MemMgmtBody` marks the
            // whole alignment-microcode block (compute/read/write slots).
            // Neither is a counting event.
            EventTag::None | EventTag::MemMgmtBody => continue,
            other => format!("{other:?}"),
        };
        by_tag.entry(key).or_default().push(addr);
    }
    for (tag, addrs) in by_tag {
        assert_eq!(addrs.len(), 1, "tag {tag} has {} addresses", addrs.len());
    }
}

#[test]
fn event_tags_cover_the_full_event_space() {
    let cs = ControlStore::build();
    let tags: Vec<EventTag> = cs.iter().map(|(_, c)| c.tag).collect();
    // One decode dispatch.
    assert!(tags.contains(&EventTag::InstDecode));
    // All stall points.
    for p in StallPoint::ALL {
        assert!(tags.contains(&EventTag::IbStall(p)), "{p:?}");
    }
    // Every (position, mode class) pair.
    for pos in SpecPosition::ALL {
        for class in SpecModeClass::ALL {
            assert!(
                tags.contains(&EventTag::SpecEntry(pos, class)),
                "{pos:?}/{class:?}"
            );
        }
        assert!(tags.contains(&EventTag::SpecIndex(pos)));
    }
    // Every opcode and branch class.
    for &op in Opcode::ALL {
        assert!(tags.contains(&EventTag::ExecEntry(op)), "{op}");
    }
    for class in BranchClass::ALL {
        assert!(tags.contains(&EventTag::BranchTaken(class)), "{class:?}");
    }
    // The service/overhead events.
    for t in [
        EventTag::TbMissEntry,
        EventTag::InterruptEntry,
        EventTag::ExceptionEntry,
        EventTag::SoftIntRequest,
        EventTag::AbortCycle,
        EventTag::BranchDispatch,
    ] {
        assert!(tags.contains(&t), "{t:?}");
    }
}

#[test]
fn read_and_write_addresses_exist_for_every_routine_that_references_memory() {
    let cs = ControlStore::build();
    // Specifier routines: every (pos, class) has distinct read and write
    // slots with the right static class.
    for pos in SpecPosition::ALL {
        for class in SpecModeClass::ALL {
            assert_eq!(cs.class(cs.spec_read(pos, class)).op, MemOp::Read);
            assert_eq!(cs.class(cs.spec_write(pos, class)).op, MemOp::Write);
            assert_eq!(cs.class(cs.spec_compute(pos, class)).op, MemOp::Compute);
        }
    }
    for &op in Opcode::ALL {
        assert_eq!(cs.class(cs.exec_read(op)).op, MemOp::Read);
        assert_eq!(cs.class(cs.exec_write(op)).op, MemOp::Write);
        assert_eq!(cs.class(cs.exec_entry(op)).op, MemOp::Compute);
        assert_eq!(cs.class(cs.exec_compute(op)).op, MemOp::Compute);
    }
}

#[test]
fn rows_partition_the_listing_consistently() {
    let cs = ControlStore::build();
    for (addr, class) in cs.iter() {
        // Exec rows only at exec/branch-taken/softint addresses; spec rows
        // only at spec addresses; and every address has a valid row index.
        assert!(class.row.index() < Row::ALL.len(), "{addr}");
        if let EventTag::SpecEntry(pos, _) = class.tag {
            let expected = match pos {
                SpecPosition::First => Row::Spec1,
                SpecPosition::Rest => Row::Spec2to6,
            };
            assert_eq!(class.row, expected);
        }
        if let EventTag::ExecEntry(op) = class.tag {
            assert_eq!(class.row, Row::Exec(op.group()));
        }
    }
}

#[test]
fn the_board_is_big_enough_for_the_listing() {
    let cs = ControlStore::build();
    assert!(cs.size() <= MicroAddr::SPACE);
    // And we use a realistic fraction of a writable control store.
    assert!(
        cs.size() >= 512,
        "listing suspiciously small: {}",
        cs.size()
    );
}
