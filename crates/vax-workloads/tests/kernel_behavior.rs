//! Behavioural checks on the running mini-VMS: system services execute
//! and return, the scheduler round-robins through all processes, and the
//! measured event mix contains what the kernel is supposed to produce.

use upc_monitor::{Command, HistogramBoard};
use vax_arch::Opcode;
use vax_ucode::EventTag;
use vax_workloads::{build_machine, profile, ProfileParams, WorkloadKind};

fn small() -> ProfileParams {
    ProfileParams {
        processes: 4,
        functions_per_process: 8,
        slots_per_function: 20,
        scalar_bytes: 16 * 1024,
        terminal_users: 6,
        ..profile(WorkloadKind::Commercial)
    }
}

#[test]
fn system_services_are_invoked_and_return() {
    let mut machine = build_machine(&small());
    let mut board = HistogramBoard::new();
    board.execute(Command::Start);
    machine.run_instructions(120_000, &mut board).expect("runs");
    let hist = board.snapshot();
    let cs = machine.cpu.control_store();

    let chmk = hist.issue(cs.exec_entry(Opcode::Chmk));
    let rei = hist.issue(cs.exec_entry(Opcode::Rei));
    assert!(chmk > 5, "CHMK services invoked: {chmk}");
    // Every CHMK and every interrupt returns through REI.
    let mut interrupts = 0;
    for (addr, class) in cs.iter() {
        if class.tag == EventTag::InterruptEntry {
            interrupts += hist.issue(addr);
        }
    }
    // One handler may still be in flight per process when the run stops,
    // plus the bootstrap's own REI.
    let slack = u64::from(small().processes) + 1;
    assert!(
        rei + slack >= chmk + interrupts,
        "REI ({rei}) must cover CHMK ({chmk}) + interrupts ({interrupts})"
    );
}

#[test]
fn scheduler_round_robins_through_every_process() {
    let params = small();
    let mut machine = build_machine(&params);
    let mut board = HistogramBoard::new();
    board.execute(Command::Start);
    machine.run_instructions(150_000, &mut board).expect("runs");
    let hist = board.snapshot();
    let cs = machine.cpu.control_store();
    let switches = hist.issue(cs.exec_entry(Opcode::Svpctx));
    assert!(
        switches >= params.processes as u64,
        "at least one full rotation: {switches} switches"
    );
    // LDPCTX count = SVPCTX count + the bootstrap's initial LDPCTX
    // (± one in-flight reschedule at the measurement edge).
    let ldpctx = hist.issue(cs.exec_entry(Opcode::Ldpctx));
    assert!(
        ldpctx >= switches && ldpctx <= switches + 2,
        "LDPCTX {ldpctx} vs SVPCTX {switches}"
    );
}

#[test]
fn pushr_popr_balance_in_handlers() {
    let mut machine = build_machine(&small());
    let mut board = HistogramBoard::new();
    board.execute(Command::Start);
    machine.run_instructions(100_000, &mut board).expect("runs");
    let hist = board.snapshot();
    let cs = machine.cpu.control_store();
    let pushr = hist.issue(cs.exec_entry(Opcode::Pushr));
    let popr = hist.issue(cs.exec_entry(Opcode::Popr));
    // Handlers always pair them; user code emits adjacent pairs. A
    // context switch can park a process between the two, so allow a
    // per-process imbalance.
    let slack = 2 * u64::from(small().processes) + 2;
    assert!(
        pushr.abs_diff(popr) <= slack,
        "pushr {pushr} vs popr {popr}"
    );
}

#[test]
fn null_process_is_never_entered_under_load() {
    let mut machine = build_machine(&small());
    let mut board = HistogramBoard::new();
    board.execute(Command::Start);
    for _ in 0..50_000 {
        assert!(!machine.at_idle(), "always-ready processes never idle");
        machine.step(&mut board).expect("runs");
    }
}

#[test]
fn calls_and_rets_balance() {
    let mut machine = build_machine(&small());
    let mut board = HistogramBoard::new();
    board.execute(Command::Start);
    machine.run_instructions(100_000, &mut board).expect("runs");
    let hist = board.snapshot();
    let cs = machine.cpu.control_store();
    let calls = hist.issue(cs.exec_entry(Opcode::Calls));
    let rets = hist.issue(cs.exec_entry(Opcode::Ret));
    // In-flight call chains (one per process) bound the imbalance.
    let bound = u64::from(small().processes) * u64::from(small().functions_per_process + 1);
    assert!(calls > 50, "calls: {calls}");
    assert!(
        calls.abs_diff(rets) <= bound,
        "calls {calls} vs rets {rets}"
    );
}
