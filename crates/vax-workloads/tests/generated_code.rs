//! Validation of generated workload code: every profile's program must
//! fully disassemble, respect the register conventions, and stay within
//! its layout budgets.

use rand::rngs::StdRng;
use rand::SeedableRng;
use vax_arch::{disasm, Assembler};
use vax_workloads::codegen::{CodeGen, DataLayout};
use vax_workloads::{profile, WorkloadKind};

fn generate(kind: WorkloadKind, process: u64) -> (vax_arch::CodeImage, Vec<u32>, DataLayout) {
    let params = profile(kind);
    let layout = DataLayout::for_profile(&params, 512);
    let code_base = (512 + layout.total_len + 15) & !15;
    let mut asm = Assembler::new(code_base);
    let rng = StdRng::seed_from_u64(params.seed ^ (0x9E37_79B9u64.wrapping_mul(process + 1)));
    let mut generator = CodeGen::new(&mut asm, rng, &params, layout);
    let prog = generator.generate().expect("generates");
    let image = asm.finish().expect("assembles");
    (image, prog.functions, layout)
}

#[test]
fn every_profile_generates_decodable_functions() {
    for kind in WorkloadKind::ALL {
        let (image, functions, _) = generate(kind, 0);
        assert!(!functions.is_empty());
        // Disassemble each function body linearly from its entry mask to
        // at least a handful of instructions (case tables stop linear
        // disassembly, which is fine).
        for (i, &f) in functions.iter().enumerate() {
            let off = (f - image.base) as usize + 2; // skip entry mask
            let lines = disasm::disassemble(&image.bytes[off..], f + 2);
            assert!(
                lines.len() >= 4,
                "{kind:?} fn{i} produced only {} lines",
                lines.len()
            );
            // No undecodable bytes before the function's RET (linear
            // disassembly past RET runs into the next function's raw
            // entry-mask word, which is data, not code).
            for (_, _, text) in &lines {
                if text == "ret" {
                    break;
                }
                assert!(
                    !text.starts_with(".byte"),
                    "{kind:?} fn{i}: undecodable byte in body"
                );
            }
        }
    }
}

#[test]
fn generated_code_never_writes_the_reserved_registers() {
    // R9 (tables), R10 (bias — autoincrement reads only), R11 (data base)
    // must never be the *destination* of a generated body instruction,
    // or the process would lose its data addressing. We check textually
    // over the disassembly: no line's last operand is R9/R11, and R10
    // appears only as "(R10)+".
    let (image, functions, _) = generate(WorkloadKind::TimesharingLight, 0);
    for &f in &functions {
        let off = (f - image.base) as usize + 2;
        for (_, _, text) in disasm::disassemble(&image.bytes[off..], f + 2) {
            // Skip the prologue walker loads (destinations R6/R7/R8).
            if let Some(last) = text.rsplit(", ").next() {
                assert_ne!(last, "R11", "R11 written by: {text}");
                assert_ne!(last, "R9", "R9 written by: {text}");
                assert_ne!(last, "R10", "R10 written by: {text}");
            }
            if text.contains("R10") {
                assert!(
                    text.contains("(R10)+"),
                    "R10 used other than as bias walker: {text}"
                );
            }
        }
    }
}

#[test]
fn distinct_processes_get_distinct_code() {
    let (a, _, _) = generate(WorkloadKind::SciEng, 0);
    let (b, _, _) = generate(WorkloadKind::SciEng, 1);
    assert_ne!(a.bytes, b.bytes, "per-process seeds must differ");
}

#[test]
fn layouts_scale_with_profile_parameters() {
    let small = DataLayout::for_profile(
        &vax_workloads::ProfileParams {
            scalar_bytes: 8 * 1024,
            ..profile(WorkloadKind::TimesharingLight)
        },
        512,
    );
    let big = DataLayout::for_profile(
        &vax_workloads::ProfileParams {
            scalar_bytes: 128 * 1024,
            ..profile(WorkloadKind::TimesharingLight)
        },
        512,
    );
    assert!(big.total_len > small.total_len);
    assert_eq!(big.bias_len, small.bias_len, "bias stream size is fixed");
}

#[test]
fn dispatcher_precedes_all_functions() {
    let (image, functions, _) = generate(WorkloadKind::Commercial, 0);
    for &f in &functions {
        assert!(f > image.base, "function below code base");
        assert!(f < image.end(), "function beyond code end");
    }
    let mut sorted = functions.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, functions, "functions are laid out in order");
}
