//! The miniature VMS kernel: boot code, interrupt service routines, the
//! rescheduling software interrupt (real `SVPCTX`/`LDPCTX` context
//! switches), `CHMK` system services, and the (excluded-from-measurement)
//! Null-process idle loop.
//!
//! All of it is genuine VAX code assembled into system space, so kernel
//! activity is measured by the µPC monitor exactly like user activity —
//! the property the paper's method was built to capture (§1).

use crate::mix::{sample_count, ProfileParams};
use rand::rngs::StdRng;
use rand::Rng;
use vax_arch::{ArchError, Assembler, CodeImage, Opcode, Operand, Reg};

/// IPR codes used by kernel code (match `vax_cpu::IprReg`).
const IPR_PCBB: u8 = 16;
const IPR_SCBB: u8 = 17;
const IPR_SIRR: u8 = 20;

/// Software interrupt levels.
const AST_LEVEL: u8 = 2;
const RESCHED_LEVEL: u8 = 3;

/// Kernel data-area offsets (relative to the kernel data base, which
/// handlers load into `R5`).
pub mod kdata {
    /// Interval-timer tick counter.
    pub const TICK: u32 = 0;
    /// Current process index.
    pub const CUR: u32 = 4;
    /// Number of processes.
    pub const NPROC: u32 = 8;
    /// Terminal "device buffer" longword.
    pub const DEVBUF: u32 = 12;
    /// Kernel queue head (two longwords).
    pub const QHEAD: u32 = 16;
    /// Kernel queue nodes (16 × 8 bytes).
    pub const QNODES: u32 = 24;
    /// Kernel string buffer A (256 bytes).
    pub const KSTR_A: u32 = 152;
    /// Kernel string buffer B (256 bytes).
    pub const KSTR_B: u32 = 408;
    /// Kernel scalar scratch area (360 bytes).
    pub const SCRATCH: u32 = 664;
    /// PCB physical-address table (one longword per process).
    pub const PCB_TABLE: u32 = 1024;
    /// Machine-check error-log counter.
    pub const MCHECKS: u32 = 1024 + 64 * 4;
    /// Total kernel data size in bytes (up to 64 processes).
    pub const SIZE: u32 = 1024 + 64 * 4 + 4;
}

/// The assembled kernel plus everything the session builder needs to
/// install it.
#[derive(Debug)]
pub struct KernelImage {
    /// Kernel code (based in system space).
    pub code: CodeImage,
    /// Initial contents of the kernel data area.
    pub data: Vec<u8>,
    /// Bootstrap entry (kernel mode, runs once).
    pub boot_pc: u32,
    /// The Null-process idle loop (excluded from measurement, §2.2).
    pub idle_pc: u32,
    /// SCB vector installations: (vector byte offset, handler VA).
    pub vectors: Vec<(u16, u32)>,
}

/// Build the kernel.
///
/// `code_base` and `data_base` are system VAs the session has mapped;
/// `scb_pa` is the physical SCB; `pcb_pas` are the processes' physical
/// PCB addresses.
///
/// # Errors
///
/// Propagates assembler errors (generator bugs).
pub fn build_kernel(
    params: &ProfileParams,
    rng: &mut StdRng,
    code_base: u32,
    data_base: u32,
    scb_pa: u32,
    pcb_pas: &[u32],
) -> Result<KernelImage, ArchError> {
    let mut asm = Assembler::new(code_base);
    let kb = Reg::R5;
    let load_kb = |asm: &mut Assembler| -> Result<(), ArchError> {
        asm.inst(
            Opcode::Movl,
            &[Operand::Immediate(u64::from(data_base)), Operand::Reg(kb)],
        )?;
        Ok(())
    };

    // ----- bootstrap ---------------------------------------------------------
    let boot_pc = asm.here();
    asm.inst(
        Opcode::Mtpr,
        &[
            Operand::Immediate(u64::from(scb_pa)),
            Operand::Literal(IPR_SCBB),
        ],
    )?;
    asm.inst(
        Opcode::Mtpr,
        &[
            Operand::Immediate(u64::from(pcb_pas[0])),
            Operand::Literal(IPR_PCBB),
        ],
    )?;
    asm.inst(Opcode::Ldpctx, &[])?;
    asm.inst(Opcode::Rei, &[])?;

    // ----- idle loop (the Null process) --------------------------------------
    let idle_pc = asm.here();
    let idle_top = asm.label_here();
    asm.branch(Opcode::Brb, &[], idle_top)?;

    // ----- interval-timer ISR (hardware, IPL 24, vector 0xC0) ----------------
    let timer_isr = asm.here();
    let timer_mask = (1u16 << 0) | (1 << 1) | (1 << 2) | (1 << 3) | (1 << 5);
    asm.inst(Opcode::Pushr, &[Operand::Immediate(u64::from(timer_mask))])?;
    load_kb(&mut asm)?;
    asm.inst(Opcode::Incl, &[Operand::Disp(kdata::TICK as i32, kb)])?;
    emit_kernel_slots(&mut asm, rng, kb, 6, false)?;
    asm.inst(
        Opcode::Mtpr,
        &[Operand::Literal(RESCHED_LEVEL), Operand::Literal(IPR_SIRR)],
    )?;
    asm.inst(Opcode::Popr, &[Operand::Immediate(u64::from(timer_mask))])?;
    asm.inst(Opcode::Rei, &[])?;

    // ----- terminal ISR (hardware, IPL 20, vectors 0xF0..) -------------------
    let term_isr = asm.here();
    let term_mask = 0x3Fu16 | (1 << 5); // R0..R5
    asm.inst(Opcode::Pushr, &[Operand::Immediate(u64::from(term_mask))])?;
    load_kb(&mut asm)?;
    // Read and acknowledge the "device".
    asm.inst(
        Opcode::Movl,
        &[
            Operand::Disp(kdata::DEVBUF as i32, kb),
            Operand::Reg(Reg::R0),
        ],
    )?;
    asm.inst(Opcode::Incl, &[Operand::Disp(kdata::DEVBUF as i32, kb)])?;
    // Echo/typeahead bookkeeping.
    emit_kernel_slots(&mut asm, rng, kb, 8, true)?;
    // Post an AST-level software interrupt when the tick count's low bit
    // agrees (a drifting, data-dependent condition).
    let skip_ast = asm.new_label();
    asm.branch(
        Opcode::Blbc,
        &[Operand::Disp(kdata::TICK as i32, kb)],
        skip_ast,
    )?;
    asm.inst(
        Opcode::Mtpr,
        &[Operand::Literal(AST_LEVEL), Operand::Literal(IPR_SIRR)],
    )?;
    asm.place(skip_ast)?;
    asm.inst(Opcode::Popr, &[Operand::Immediate(u64::from(term_mask))])?;
    asm.inst(Opcode::Rei, &[])?;

    // ----- AST delivery (software level 2, vector 0x88) ----------------------
    let ast_isr = asm.here();
    let ast_mask = 0x23u16; // R0, R1, R5
    asm.inst(Opcode::Pushr, &[Operand::Immediate(u64::from(ast_mask))])?;
    load_kb(&mut asm)?;
    emit_kernel_slots(&mut asm, rng, kb, 6, false)?;
    asm.inst(Opcode::Popr, &[Operand::Immediate(u64::from(ast_mask))])?;
    asm.inst(Opcode::Rei, &[])?;

    // ----- rescheduler (software level 3, vector 0x8C) -----------------------
    // The interrupted PC/PSL frame sits on the outgoing process's kernel
    // stack; SVPCTX banks it with the context; LDPCTX + REI resume the
    // incoming process. This is the VMS flow the paper's context-switch
    // headway (Table 7) counts.
    let sched = asm.here();
    asm.inst(Opcode::Svpctx, &[])?;
    load_kb(&mut asm)?;
    asm.inst(
        Opcode::Movl,
        &[Operand::Disp(kdata::CUR as i32, kb), Operand::Reg(Reg::R0)],
    )?;
    asm.inst(Opcode::Incl, &[Operand::Reg(Reg::R0)])?;
    asm.inst(
        Opcode::Cmpl,
        &[
            Operand::Reg(Reg::R0),
            Operand::Disp(kdata::NPROC as i32, kb),
        ],
    )?;
    let no_wrap = asm.new_label();
    asm.branch(Opcode::Blss, &[], no_wrap)?;
    asm.inst(Opcode::Clrl, &[Operand::Reg(Reg::R0)])?;
    asm.place(no_wrap)?;
    asm.inst(
        Opcode::Movl,
        &[Operand::Reg(Reg::R0), Operand::Disp(kdata::CUR as i32, kb)],
    )?;
    // Fetch the next PCB physical address: indexed off the table.
    let table = Operand::Disp(kdata::PCB_TABLE as i32, kb)
        .indexed(Reg::R0)
        .expect("displacement is indexable");
    asm.inst(Opcode::Movl, &[table, Operand::Reg(Reg::R1)])?;
    asm.inst(
        Opcode::Mtpr,
        &[Operand::Reg(Reg::R1), Operand::Literal(IPR_PCBB)],
    )?;
    asm.inst(Opcode::Ldpctx, &[])?;
    asm.inst(Opcode::Rei, &[])?;

    // ----- CHMK system services ----------------------------------------------
    let chmk = asm.here();
    // Pop the service code (R0/R1 are the service ABI's scratch).
    asm.inst(
        Opcode::Movl,
        &[Operand::AutoIncrement(Reg::Sp), Operand::Reg(Reg::R1)],
    )?;
    let nsvc = params.service_count.max(1);
    let svc_labels: Vec<_> = (0..nsvc).map(|_| asm.new_label()).collect();
    asm.case(
        Opcode::Caseb,
        &[
            Operand::Reg(Reg::R1),
            Operand::Literal(0),
            Operand::Literal((nsvc - 1) as u8),
        ],
        &svc_labels,
    )?;
    // Out-of-range service code: fail back to the caller.
    asm.inst(Opcode::Clrl, &[Operand::Reg(Reg::R0)])?;
    asm.inst(Opcode::Rei, &[])?;
    let svc_mask = 0x2Du16; // R0, R2, R3, R5
    for (i, label) in svc_labels.iter().enumerate() {
        asm.place(*label)?;
        asm.inst(Opcode::Pushr, &[Operand::Immediate(u64::from(svc_mask))])?;
        load_kb(&mut asm)?;
        let slots = sample_count(rng, params.service_slots, params.service_slots * 2);
        // Give a couple of services a buffer-copy personality.
        let heavy = i % 3 == 0;
        emit_kernel_slots(&mut asm, rng, kb, slots, heavy)?;
        asm.inst(Opcode::Popr, &[Operand::Immediate(u64::from(svc_mask))])?;
        asm.inst(Opcode::Movl, &[Operand::Literal(1), Operand::Reg(Reg::R0)])?;
        asm.inst(Opcode::Rei, &[])?;
    }

    // ----- machine check (vector 0x04) ---------------------------------------
    // The recovery proper already ran in microcode by the time this
    // handler is entered; the kernel's share is error logging, the way
    // VMS's error logger fields a survivable machine check. Emitted
    // last so every other ISR keeps its address (and the RNG stream it
    // was generated from) whether or not faults are ever injected.
    let mcheck_isr = asm.here();
    let mcheck_mask = 0x23u16; // R0, R1, R5
    asm.inst(Opcode::Pushr, &[Operand::Immediate(u64::from(mcheck_mask))])?;
    load_kb(&mut asm)?;
    asm.inst(Opcode::Incl, &[Operand::Disp(kdata::MCHECKS as i32, kb)])?;
    emit_kernel_slots(&mut asm, rng, kb, 4, false)?;
    asm.inst(Opcode::Popr, &[Operand::Immediate(u64::from(mcheck_mask))])?;
    asm.inst(Opcode::Rei, &[])?;

    let code = asm.finish()?;

    // ----- kernel data image ---------------------------------------------------
    let mut data = vec![0u8; kdata::SIZE as usize];
    let put = |data: &mut Vec<u8>, off: u32, v: u32| {
        data[off as usize..off as usize + 4].copy_from_slice(&v.to_le_bytes());
    };
    put(&mut data, kdata::NPROC, pcb_pas.len() as u32);
    // Self-linked queue head (absolute VAs).
    let qhead_va = data_base + kdata::QHEAD;
    put(&mut data, kdata::QHEAD, qhead_va);
    put(&mut data, kdata::QHEAD + 4, qhead_va);
    for (i, &pa) in pcb_pas.iter().enumerate() {
        put(&mut data, kdata::PCB_TABLE + 4 * i as u32, pa);
    }
    for i in 0..256u32 {
        data[(kdata::KSTR_A + i) as usize] = b'a' + (i % 26) as u8;
    }

    // ----- SCB vectors ----------------------------------------------------------
    let mut vectors = vec![
        (0xC0u16, timer_isr), // interval timer (IPL 24)
        (0x88, ast_isr),      // software level 2
        (0x8C, sched),        // software level 3 (reschedule)
        (0x40, chmk),         // CHMK
        (0x04, mcheck_isr),   // machine check (injected faults)
    ];
    for line in 0..crate::rte::TERMINAL_CONTROLLERS {
        vectors.push((crate::rte::TERMINAL_VECTOR_BASE + 4 * line, term_isr));
    }

    Ok(KernelImage {
        code,
        data,
        boot_pc,
        idle_pc,
        vectors,
    })
}

/// Restricted kernel-mode slot sampler: registers `R0–R3`, kernel data
/// off `R5`, absolute kernel addresses, queue and string work. `heavy`
/// biases toward buffer copies (echo paths, record services).
fn emit_kernel_slots(
    asm: &mut Assembler,
    rng: &mut StdRng,
    kb: Reg,
    n: u32,
    heavy: bool,
) -> Result<(), ArchError> {
    let scratch = |rng: &mut StdRng| [Reg::R0, Reg::R2, Reg::R3][rng.random_range(0..3usize)];
    let kdisp =
        |rng: &mut StdRng| -> i32 { (kdata::SCRATCH + 4 * rng.random_range(0..80u32)) as i32 };
    for _ in 0..n {
        let pick: f64 = rng.random();
        if heavy && pick < 0.10 {
            // Buffer copy between the kernel string areas.
            let len = rng.random_range(8..48u32);
            asm.inst(
                Opcode::Movc3,
                &[
                    Operand::Immediate(u64::from(len)),
                    Operand::Disp(kdata::KSTR_A as i32, kb),
                    Operand::Disp(kdata::KSTR_B as i32, kb),
                ],
            )?;
        } else if pick < 0.06 {
            // Queue work.
            let node = rng.random_range(0..16u32);
            let head = Operand::Disp(kdata::QHEAD as i32, kb);
            let entry = Operand::Disp((kdata::QNODES + 8 * node) as i32, kb);
            asm.inst(Opcode::Insque, &[entry.clone(), head.clone()])?;
            asm.inst(Opcode::Remque, &[entry, Operand::Reg(Reg::R2)])?;
        } else if pick < 0.10 {
            // Data-dependent short branch on a drifting counter.
            let skip = asm.new_label();
            asm.branch(Opcode::Blbc, &[Operand::Disp(kdata::TICK as i32, kb)], skip)?;
            asm.inst(Opcode::Incl, &[Operand::Disp(kdisp(rng), kb)])?;
            asm.place(skip)?;
        } else if pick < 0.30 {
            asm.inst(
                Opcode::Movl,
                &[Operand::Disp(kdisp(rng), kb), Operand::Reg(scratch(rng))],
            )?;
        } else if pick < 0.42 {
            asm.inst(
                Opcode::Movl,
                &[Operand::Reg(scratch(rng)), Operand::Disp(kdisp(rng), kb)],
            )?;
        } else if pick < 0.60 {
            asm.inst(
                Opcode::Addl2,
                &[Operand::Disp(kdisp(rng), kb), Operand::Reg(scratch(rng))],
            )?;
        } else if pick < 0.72 {
            asm.inst(
                Opcode::Bicl2,
                &[
                    Operand::Literal(rng.random_range(0..64u32) as u8),
                    Operand::Reg(scratch(rng)),
                ],
            )?;
        } else if pick < 0.82 {
            asm.inst(
                Opcode::Cmpl,
                &[Operand::Reg(scratch(rng)), Operand::Disp(kdisp(rng), kb)],
            )?;
        } else if pick < 0.97 {
            asm.inst(Opcode::Incl, &[Operand::Reg(scratch(rng))])?;
        } else {
            // Short counted loop.
            let iters = rng.random_range(6..14u32);
            asm.inst(
                Opcode::Movl,
                &[Operand::Literal(iters as u8), Operand::Reg(Reg::R3)],
            )?;
            let top = asm.label_here();
            asm.inst(Opcode::Addl2, &[Operand::Literal(1), Operand::Reg(Reg::R2)])?;
            asm.branch(Opcode::Sobgtr, &[Operand::Reg(Reg::R3)], top)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{profile, WorkloadKind};
    use rand::SeedableRng;

    #[test]
    fn kernel_builds_and_vectors_resolve() {
        let params = profile(WorkloadKind::TimesharingLight);
        let mut rng = StdRng::seed_from_u64(1);
        let pcbs = [0x10000u32, 0x10100, 0x10200];
        let k = build_kernel(&params, &mut rng, 0x8000_8000, 0x8000_0000, 0x4000, &pcbs)
            .expect("kernel builds");
        assert!(k.code.len() > 200);
        assert_eq!(k.boot_pc, 0x8000_8000);
        // Every vector lands inside the kernel code image.
        for &(v, handler) in &k.vectors {
            assert!(
                handler >= k.code.base && handler < k.code.end(),
                "vector {v:#x} -> {handler:#010x} outside kernel"
            );
        }
        // Data image contains the process count and queue head.
        let nproc = u32::from_le_bytes(
            k.data[kdata::NPROC as usize..kdata::NPROC as usize + 4]
                .try_into()
                .unwrap(),
        );
        assert_eq!(nproc, 3);
    }

    #[test]
    fn kernel_is_deterministic() {
        let params = profile(WorkloadKind::Commercial);
        let build = || {
            let mut rng = StdRng::seed_from_u64(9);
            build_kernel(
                &params,
                &mut rng,
                0x8000_8000,
                0x8000_0000,
                0x4000,
                &[0x10000],
            )
            .unwrap()
            .code
            .bytes
        };
        assert_eq!(build(), build());
    }
}
