//! Synthetic program generator: emits real VAX machine code whose dynamic
//! instruction mix, addressing-mode distribution and branch behaviour
//! follow a [`crate::ProfileParams`].
//!
//! # Structure of a generated program
//!
//! ```text
//! entry:      R11 = data base; R9 = pointer-table base; dispatcher loop:
//!             reset bias walker, CALLS each function via the function
//!             table (displacement-deferred), occasional CHMK, repeat.
//! functions:  entry mask; walker-register prologue; sampled body slots
//!             (moves/arith/branches/loops/strings/decimal/float/...);
//!             RET; private JSB leaves.
//! data:       scalar area, branch-bias stream, walker arenas, string and
//!             decimal arenas, pointer and function tables, queue nodes,
//!             static flag bytes, threshold slots (see `DataLayout`).
//! ```
//!
//! # Safety invariants the generator maintains
//!
//! * walker registers are re-based at every function entry and their
//!   worst-case consumption (loop multiplicity included) is budgeted
//!   against the arena sizes;
//! * push/pop idioms are emitted adjacently, never split by control flow;
//! * conditional skips jump only over filler the emitter itself produced;
//! * string/decimal emitters (which clobber `R0–R5`) are never placed
//!   inside loops.

use crate::mix::{sample_count, ProfileParams};
use rand::rngs::StdRng;
use rand::Rng;
use vax_arch::{Assembler, DataType, Label, Opcode, Operand, Reg};

/// Register conventions for generated user code.
pub mod regs {
    use vax_arch::Reg;

    /// Data-region base.
    pub const DATA_BASE: Reg = Reg::R11;
    /// Branch-bias stream walker.
    pub const BIAS: Reg = Reg::R10;
    /// Pointer/function-table base.
    pub const TABLES: Reg = Reg::R9;
    /// Pointer-table walker (autoincrement deferred).
    pub const PTR_WALKER: Reg = Reg::R8;
    /// Forward walker arena (autoincrement).
    pub const WALK_UP: Reg = Reg::R6;
    /// Backward walker arena (autodecrement).
    pub const WALK_DOWN: Reg = Reg::R7;
    /// Outer loop counter.
    pub const LOOP_OUTER: Reg = Reg::R5;
    /// Inner loop counter.
    pub const LOOP_INNER: Reg = Reg::R3;
    /// Dispatcher iteration counter.
    pub const DISPATCH_COUNT: Reg = Reg::R4;
}

/// Layout of a process's data region, relative to the data base that
/// `R11` carries at run time.
#[derive(Debug, Clone, Copy)]
pub struct DataLayout {
    /// VA of the data base (page aligned, after the code).
    pub base: u32,
    /// Scalar longword area.
    pub scalar_off: u32,
    /// Scalar area length (bytes).
    pub scalar_len: u32,
    /// Threshold slots (for biased unsigned compares), inside the scalar
    /// area's first page: `thresholds_off + 4*k`.
    pub thresholds_off: u32,
    /// Number of threshold slots.
    pub threshold_count: u32,
    /// Static flag bytes for bit branches.
    pub flags_off: u32,
    /// Flag area length.
    pub flags_len: u32,
    /// Forward walker arena.
    pub walk_up_off: u32,
    /// Backward walker arena (walker starts at its end).
    pub walk_down_off: u32,
    /// Each walker arena's length.
    pub walker_len: u32,
    /// String arena A.
    pub string_a_off: u32,
    /// String arena B.
    pub string_b_off: u32,
    /// Each string arena's length.
    pub string_len: u32,
    /// Packed-decimal slots (16 bytes each).
    pub decimal_off: u32,
    /// Number of decimal slots.
    pub decimal_slots: u32,
    /// Digits stored in each decimal slot (indexed by slot).
    pub decimal_digits: u32,
    /// Queue head (two longwords) followed by nodes (8 bytes each).
    pub queue_off: u32,
    /// Number of queue nodes.
    pub queue_nodes: u32,
    /// Pointer table: longword addresses into the scalar area.
    pub ptr_table_off: u32,
    /// Pointer-table entries.
    pub ptr_entries: u32,
    /// Function table (absolute function addresses), right after the
    /// pointer table so both are reachable off the tables register.
    pub func_table_off: u32,
    /// Function-table capacity.
    pub func_capacity: u32,
    /// Branch-bias stream (longwords).
    pub bias_off: u32,
    /// Bias stream length (bytes).
    pub bias_len: u32,
    /// Total data-region length (bytes).
    pub total_len: u32,
}

impl DataLayout {
    /// Compute the layout for a profile, with the data base at `base`.
    pub fn for_profile(params: &ProfileParams, base: u32) -> DataLayout {
        let scalar_len = params.scalar_bytes.max(4096);
        let mut off = 0u32;
        let mut take = |len: u32| {
            let o = off;
            off += (len + 15) & !15;
            o
        };
        let scalar_off = take(scalar_len);
        let flags_len = 1024;
        let flags_off = take(flags_len);
        let walker_len = 4 * 1024;
        let walk_up_off = take(walker_len);
        let walk_down_off = take(walker_len);
        let string_len = 4 * 1024;
        let string_a_off = take(string_len);
        let string_b_off = take(string_len);
        let decimal_slots = 16;
        let decimal_off = take(decimal_slots * 16);
        let queue_nodes = 16;
        let queue_off = take(8 + queue_nodes * 8);
        let ptr_entries = 256;
        let ptr_table_off = take(ptr_entries * 4);
        let func_capacity = 64;
        let func_table_off = take(func_capacity * 4);
        let bias_len = 16 * 1024;
        let bias_off = take(bias_len);
        DataLayout {
            base,
            scalar_off,
            scalar_len,
            thresholds_off: scalar_off,
            threshold_count: 8,
            flags_off,
            flags_len,
            walk_up_off,
            walk_down_off,
            walker_len,
            string_a_off,
            string_b_off,
            string_len,
            decimal_off,
            decimal_slots,
            decimal_digits: params.decimal_mean_digits.clamp(3, 29),
            queue_off,
            queue_nodes,
            ptr_table_off,
            ptr_entries,
            func_table_off,
            func_capacity,
            bias_off,
            bias_len,
            total_len: off,
        }
    }

    /// Offset of the function-table entry `i` relative to the tables
    /// register (which points at the pointer table).
    pub fn func_entry_rel(&self, i: u32) -> i32 {
        (self.func_table_off - self.ptr_table_off + 4 * i) as i32
    }
}

/// A generated program: the code image is inside the assembler the caller
/// provided; this records what was placed where.
#[derive(Debug)]
pub struct GeneratedProgram {
    /// Entry point (user-mode start PC).
    pub entry: u32,
    /// Function addresses, in function-table order.
    pub functions: Vec<u32>,
    /// End of code (first free VA after).
    pub code_end: u32,
}

/// The generator.
pub struct CodeGen<'a> {
    asm: &'a mut Assembler,
    rng: StdRng,
    params: &'a ProfileParams,
    layout: DataLayout,
    /// Remaining bias bytes this function may consume (worst case).
    bias_budget: i64,
    /// Remaining walker bytes (each arena) this function may consume.
    walker_budget: i64,
    /// Remaining pointer-table entries this function may consume.
    ptr_budget: i64,
    /// Product of enclosing loop limits.
    loop_multiplier: u32,
    /// Current loop nesting depth.
    loop_depth: u32,
    /// Inside a byte-displacement loop: the body must stay small, so
    /// large emitters (nested loops, case) are excluded.
    compact_body: bool,
    /// Index of the function currently being generated (for forward-only
    /// nested calls) and the total function count.
    current_function: u32,
    nfunc: u32,
    /// Leaves waiting to be placed after the current function.
    pending_leaves: Vec<Label>,
}

impl<'a> CodeGen<'a> {
    /// A generator emitting into `asm` with the given RNG.
    pub fn new(
        asm: &'a mut Assembler,
        rng: StdRng,
        params: &'a ProfileParams,
        layout: DataLayout,
    ) -> CodeGen<'a> {
        CodeGen {
            asm,
            rng,
            params,
            layout,
            bias_budget: 0,
            walker_budget: 0,
            ptr_budget: 0,
            loop_multiplier: 1,
            loop_depth: 0,
            compact_body: false,
            current_function: 0,
            nfunc: 0,
            pending_leaves: Vec::new(),
        }
    }

    /// Generate the whole program: dispatcher plus functions.
    ///
    /// # Errors
    ///
    /// Propagates assembler errors (they indicate a generator bug).
    pub fn generate(&mut self) -> Result<GeneratedProgram, vax_arch::ArchError> {
        let entry = self.asm.here();
        let nfunc = self
            .params
            .functions_per_process
            .min(self.layout.func_capacity);
        // ----- dispatcher ---------------------------------------------------
        let lay = self.layout;
        self.asm.inst(
            Opcode::Movl,
            &[
                Operand::Immediate(u64::from(lay.base)),
                Operand::Reg(regs::DATA_BASE),
            ],
        )?;
        self.asm.inst(
            Opcode::Moval,
            &[
                Operand::Disp(lay.ptr_table_off as i32, regs::DATA_BASE),
                Operand::Reg(regs::TABLES),
            ],
        )?;
        self.asm
            .inst(Opcode::Clrl, &[Operand::Reg(regs::DISPATCH_COUNT)])?;
        let disp_top = self.asm.label_here();
        for i in 0..nfunc {
            // Reset the bias walker so the per-function budget holds.
            self.asm.inst(
                Opcode::Moval,
                &[
                    Operand::Disp(lay.bias_off as i32, regs::DATA_BASE),
                    Operand::Reg(regs::BIAS),
                ],
            )?;
            // Arguments, then call through the function table.
            let nargs = self.rng.random_range(0..3u32);
            for a in 0..nargs {
                self.asm
                    .inst(Opcode::Pushl, &[Operand::Literal((i + a) as u8 & 63)])?;
            }
            self.asm.inst(
                Opcode::Calls,
                &[
                    Operand::Literal(nargs as u8),
                    Operand::DispDeferred(lay.func_entry_rel(i), regs::TABLES),
                ],
            )?;
            // Occasional system service request.
            if self.rng.random::<f64>() < self.params.user_mix.syscall * 0.02 {
                let code = self.rng.random_range(0..self.params.service_count);
                self.asm
                    .inst(Opcode::Chmk, &[Operand::Immediate(u64::from(code))])?;
            }
        }
        self.asm
            .inst(Opcode::Incl, &[Operand::Reg(regs::DISPATCH_COUNT)])?;
        self.asm.branch(Opcode::Brw, &[], disp_top)?;

        // ----- functions ----------------------------------------------------
        self.nfunc = nfunc;
        let mut functions = Vec::with_capacity(nfunc as usize);
        for i in 0..nfunc {
            self.current_function = i;
            functions.push(self.gen_function()?);
        }
        Ok(GeneratedProgram {
            entry,
            functions,
            code_end: self.asm.here(),
        })
    }

    /// Generate one procedure (CALLS-compatible) plus its private leaves.
    fn gen_function(&mut self) -> Result<u32, vax_arch::ArchError> {
        let addr = self.asm.here();
        // Entry mask: the walker registers are always saved (functions can
        // be called from inside other functions, which must get their own
        // walker positions back), plus a few general callee-saves.
        let mut mask: u16 = (1 << 6) | (1 << 7) | (1 << 8);
        let extra = sample_count(
            &mut self.rng,
            self.params.call_mask_regs.saturating_sub(2),
            4,
        );
        for _ in 0..extra {
            mask |= 1 << self.rng.random_range(2..=5u16);
        }
        self.asm.word(mask);
        // Prologue: re-base the walkers.
        let lay = self.layout;
        self.asm.inst(
            Opcode::Moval,
            &[
                Operand::Disp(lay.walk_up_off as i32, regs::DATA_BASE),
                Operand::Reg(regs::WALK_UP),
            ],
        )?;
        self.asm.inst(
            Opcode::Moval,
            &[
                Operand::Disp((lay.walk_down_off + lay.walker_len) as i32, regs::DATA_BASE),
                Operand::Reg(regs::WALK_DOWN),
            ],
        )?;
        self.asm.inst(
            Opcode::Moval,
            &[
                Operand::Disp(lay.ptr_table_off as i32, regs::DATA_BASE),
                Operand::Reg(regs::PTR_WALKER),
            ],
        )?;
        // Budgets for this function body.
        self.bias_budget = i64::from(lay.bias_len) - 256;
        self.walker_budget = i64::from(lay.walker_len) - 64;
        self.ptr_budget = i64::from(lay.ptr_entries) - 8;
        self.loop_multiplier = 1;
        self.loop_depth = 0;
        self.pending_leaves.clear();

        let slots = sample_count(
            &mut self.rng,
            self.params.slots_per_function,
            self.params.slots_per_function * 2,
        )
        .max(self.params.slots_per_function / 2);
        for _ in 0..slots {
            self.emit_slot(false)?;
        }
        self.asm.inst(Opcode::Ret, &[])?;
        // Place the leaves referenced by JSB slots.
        let leaves: Vec<Label> = self.pending_leaves.drain(..).collect();
        for leaf in leaves {
            self.asm.place(leaf)?;
            let n = self.rng.random_range(2..5u32);
            for _ in 0..n {
                self.emit_simple_value_slot()?;
            }
            self.asm.inst(Opcode::Rsb, &[])?;
        }
        Ok(addr)
    }

    /// Emit one body slot. `in_loop` restricts the emitter set.
    fn emit_slot(&mut self, in_loop: bool) -> Result<(), vax_arch::ArchError> {
        let m = &self.params.user_mix;
        let mut entries: Vec<(f64, Emitter)> = vec![
            (m.moves, Emitter::Move),
            (m.arith, Emitter::Arith),
            (m.logic, Emitter::Logic),
            (m.cond_branch, Emitter::CondBranch),
            (m.lowbit_branch, Emitter::LowBit),
            (m.field_ops, Emitter::Field),
            (m.bit_branch, Emitter::BitBranch),
            (m.float_ops, Emitter::Float),
            (m.muldiv, Emitter::MulDiv),
            (m.pushr_popr, Emitter::PushPop),
            (m.jsb_leaf, Emitter::Jsb),
            (m.case_dispatch, Emitter::Case),
            (m.jmp_uncond, Emitter::JmpUncond),
        ];
        if !in_loop && self.current_function + 1 < self.nfunc {
            entries.push((m.calls_proc, Emitter::CallsFn));
        }
        if self.compact_body {
            // Byte-displacement loop body: drop the large emitters.
            entries.retain(|(_, e)| !matches!(e, Emitter::Case));
        }
        if !in_loop {
            entries.extend_from_slice(&[
                (m.loop_construct, Emitter::Loop),
                (m.char_ops, Emitter::CharOp),
                (m.decimal_ops, Emitter::DecimalOp),
                (m.queue_ops, Emitter::QueueOp),
                (m.syscall, Emitter::Syscall),
            ]);
        } else if self.loop_depth < 2 && !self.compact_body {
            entries.push((m.loop_construct * 0.5, Emitter::Loop));
        }
        let total: f64 = entries.iter().map(|(w, _)| *w).sum();
        let mut pick = self.rng.random::<f64>() * total;
        let mut chosen = Emitter::Move;
        for (w, e) in entries {
            pick -= w;
            if pick <= 0.0 {
                chosen = e;
                break;
            }
        }
        self.emit(chosen, in_loop)
    }

    fn emit(&mut self, e: Emitter, in_loop: bool) -> Result<(), vax_arch::ArchError> {
        match e {
            Emitter::Move => self.emit_move(),
            Emitter::Arith => self.emit_arith(),
            Emitter::Logic => self.emit_logic(),
            Emitter::CondBranch => self.emit_cond_branch(),
            Emitter::LowBit => self.emit_lowbit(),
            Emitter::Loop => self.emit_loop(),
            Emitter::Case => self.emit_case(),
            Emitter::Jsb => self.emit_jsb(),
            Emitter::JmpUncond => self.emit_jmp(),
            Emitter::CallsFn => self.emit_calls_fn(),
            Emitter::PushPop => self.emit_pushpop(),
            Emitter::Field => self.emit_field(),
            Emitter::BitBranch => self.emit_bit_branch(),
            Emitter::Float => self.emit_float(),
            Emitter::MulDiv => self.emit_muldiv(),
            Emitter::CharOp => self.emit_char(),
            Emitter::DecimalOp => self.emit_decimal(),
            Emitter::QueueOp => self.emit_queue(),
            Emitter::Syscall => self.emit_syscall(),
        }?;
        let _ = in_loop;
        Ok(())
    }

    // ----- operand sampling --------------------------------------------------

    fn scratch_reg(&mut self) -> Reg {
        [Reg::R0, Reg::R1, Reg::R2][self.rng.random_range(0..3usize)]
    }

    fn scalar_disp(&mut self, dtype: DataType) -> i32 {
        let size = dtype.size_bytes();
        let lay = self.layout;
        // Three-level locality: a hot page (byte displacements), a warm
        // 8 KB neighbourhood, and a cold spread over the whole area —
        // plus a small unaligned fraction (§3.3.1 reports 0.016/instr).
        let r = self.rng.random::<f64>();
        let max = if r < 0.64 {
            120
        } else if r < 0.87 {
            (8 * 1024).min(lay.scalar_len - 8)
        } else {
            lay.scalar_len - 8
        };
        let slot = self.rng.random_range(0..(max / size).max(1));
        let mut off = lay.scalar_off + lay.threshold_count * 4 + slot * size;
        if size > 1 && self.rng.random::<f64>() < 0.012 {
            off += 1;
        }
        off as i32
    }

    /// A read operand of `dtype` under the mode weights.
    fn read_operand(&mut self, dtype: DataType) -> Operand {
        let w = self.params.modes;
        let total = w.register
            + w.literal
            + w.immediate
            + w.displacement
            + w.reg_deferred
            + w.disp_deferred
            + w.autoincrement
            + w.autodecrement
            + w.autoinc_deferred
            + w.absolute;
        let mut pick = self.rng.random::<f64>() * total;
        let mut class = 0usize;
        for (i, wt) in [
            w.register,
            w.literal,
            w.immediate,
            w.displacement,
            w.reg_deferred,
            w.disp_deferred,
            w.autoincrement,
            w.autodecrement,
            w.autoinc_deferred,
            w.absolute,
        ]
        .iter()
        .enumerate()
        {
            pick -= wt;
            if pick <= 0.0 {
                class = i;
                break;
            }
        }
        match class {
            0 => Operand::Reg(self.scratch_reg()),
            1 => Operand::Literal(self.rng.random_range(0..64u32) as u8),
            2 => Operand::Immediate(u64::from(self.rng.random::<u32>())),
            3 => {
                if self.index_roll() {
                    // Indexed window: keep the base in the hot first page;
                    // the index register is a loop counter, bounded ≤ 32.
                    let lay = self.layout;
                    let slot = self.rng.random_range(0..24u32);
                    let base = Operand::Disp(
                        (lay.scalar_off + lay.threshold_count * 4 + 4 * slot) as i32,
                        regs::DATA_BASE,
                    );
                    base.indexed(self.index_reg())
                        .expect("displacement is indexable")
                } else {
                    let d = self.scalar_disp(dtype);
                    Operand::Disp(d, regs::DATA_BASE)
                }
            }
            4 => {
                let r = if self.rng.random::<bool>() {
                    regs::WALK_UP
                } else {
                    regs::WALK_DOWN
                };
                if self.index_roll() {
                    Operand::RegDeferred(r)
                        .indexed(self.index_reg())
                        .expect("deferred is indexable")
                } else {
                    Operand::RegDeferred(r)
                }
            }
            5 => {
                let entry = self.rng.random_range(0..self.layout.ptr_entries);
                Operand::DispDeferred((entry * 4) as i32, regs::TABLES)
            }
            6 => {
                let need = i64::from(dtype.size_bytes()) * i64::from(self.loop_multiplier);
                if self.walker_budget >= need {
                    self.walker_budget -= need;
                    Operand::AutoIncrement(regs::WALK_UP)
                } else {
                    Operand::Disp(self.scalar_disp(dtype), regs::DATA_BASE)
                }
            }
            7 => {
                let need = i64::from(dtype.size_bytes()) * i64::from(self.loop_multiplier);
                if self.walker_budget >= need {
                    self.walker_budget -= need;
                    Operand::AutoDecrement(regs::WALK_DOWN)
                } else {
                    Operand::Disp(self.scalar_disp(dtype), regs::DATA_BASE)
                }
            }
            8 => {
                let need = i64::from(self.loop_multiplier);
                if self.ptr_budget >= need {
                    self.ptr_budget -= need;
                    Operand::AutoIncDeferred(regs::PTR_WALKER)
                } else {
                    Operand::DispDeferred(0, regs::TABLES)
                }
            }
            _ => {
                let off = self.scalar_disp(dtype);
                Operand::Absolute(self.layout.base.wrapping_add(off as u32))
            }
        }
    }

    /// A write/modify operand (no literal/immediate). Destinations lean
    /// toward registers — the paper notes the "tendency to store results
    /// in registers" behind Table 4's SPEC2-6 register share.
    fn write_operand(&mut self, dtype: DataType) -> Operand {
        if self.rng.random::<f64>() < 0.22 {
            return Operand::Reg(self.scratch_reg());
        }
        loop {
            let op = self.read_operand(dtype);
            if !matches!(op, Operand::Literal(_) | Operand::Immediate(_)) {
                return op;
            }
        }
    }

    /// Should this memory operand be index-mode? The probability is set
    /// so the overall indexed share of specifiers lands at Table 4's
    /// bottom line.
    fn index_roll(&mut self) -> bool {
        self.rng.random::<f64>() < self.params.modes.indexed
    }

    /// The index register: a loop counter, whose value is always bounded
    /// by a loop limit (≤ 32), even between loops.
    fn index_reg(&self) -> Reg {
        if self.loop_depth >= 2 {
            regs::LOOP_INNER
        } else {
            regs::LOOP_OUTER
        }
    }

    fn sample_int_dtype(&mut self) -> DataType {
        let r = self.rng.random::<f64>();
        if r < 0.70 {
            DataType::Long
        } else if r < 0.85 {
            DataType::Word
        } else {
            DataType::Byte
        }
    }

    // ----- emitters -----------------------------------------------------------

    /// A simple register-to-register/memory value slot for leaves and
    /// filler (never control flow, never walkers).
    fn emit_simple_value_slot(&mut self) -> Result<(), vax_arch::ArchError> {
        let dst = Operand::Reg(self.scratch_reg());
        let d = self.scalar_disp(DataType::Long);
        match self.rng.random_range(0..3u32) {
            0 => self
                .asm
                .inst(Opcode::Movl, &[Operand::Disp(d, regs::DATA_BASE), dst])?,
            1 => self.asm.inst(Opcode::Addl2, &[Operand::Literal(3), dst])?,
            _ => self.asm.inst(Opcode::Bicl2, &[Operand::Literal(7), dst])?,
        };
        Ok(())
    }

    fn emit_move(&mut self) -> Result<(), vax_arch::ArchError> {
        let dtype = self.sample_int_dtype();
        let r = self.rng.random::<f64>();
        if r < 0.08 {
            let dst = self.write_operand(dtype);
            let op = match dtype {
                DataType::Byte => Opcode::Clrb,
                DataType::Word => Opcode::Clrw,
                _ => Opcode::Clrl,
            };
            self.asm.inst(op, &[dst])?;
        } else if r < 0.14 {
            let src = self.read_operand(DataType::Byte);
            let dst = Operand::Reg(self.scratch_reg());
            self.asm.inst(Opcode::Movzbl, &[src, dst])?;
        } else if r < 0.20 {
            // Address move.
            let d = self.scalar_disp(DataType::Long);
            let src = Operand::Disp(d, regs::DATA_BASE);
            let dst = Operand::Reg(self.scratch_reg());
            self.asm.inst(Opcode::Moval, &[src, dst])?;
        } else if r < 0.26 {
            // Push/pop pair (adjacent; stack stays balanced).
            let src = self.read_operand(DataType::Long);
            let dst = Operand::Reg(self.scratch_reg());
            self.asm.inst(Opcode::Pushl, &[src])?;
            self.asm
                .inst(Opcode::Movl, &[Operand::AutoIncrement(Reg::Sp), dst])?;
        } else {
            let op = match dtype {
                DataType::Byte => Opcode::Movb,
                DataType::Word => Opcode::Movw,
                _ => Opcode::Movl,
            };
            let src = self.read_operand(dtype);
            let dst = self.write_operand(dtype);
            self.asm.inst(op, &[src, dst])?;
        }
        Ok(())
    }

    fn emit_arith(&mut self) -> Result<(), vax_arch::ArchError> {
        let dtype = self.sample_int_dtype();
        let r = self.rng.random::<f64>();
        if r < 0.18 {
            let op = match (dtype, self.rng.random::<bool>()) {
                (DataType::Byte, true) => Opcode::Incb,
                (DataType::Byte, false) => Opcode::Decb,
                (DataType::Word, true) => Opcode::Incw,
                (DataType::Word, false) => Opcode::Decw,
                (_, true) => Opcode::Incl,
                (_, false) => Opcode::Decl,
            };
            let dst = self.write_operand(dtype);
            self.asm.inst(op, &[dst])?;
        } else if r < 0.62 {
            // Two-operand add/sub.
            let op = match (dtype, self.rng.random::<bool>()) {
                (DataType::Byte, true) => Opcode::Addb2,
                (DataType::Byte, false) => Opcode::Subb2,
                (DataType::Word, true) => Opcode::Addw2,
                (DataType::Word, false) => Opcode::Subw2,
                (_, true) => Opcode::Addl2,
                (_, false) => Opcode::Subl2,
            };
            let src = self.read_operand(dtype);
            let dst = self.write_operand(dtype);
            self.asm.inst(op, &[src, dst])?;
        } else if r < 0.92 {
            // Three-operand.
            let op = match (dtype, self.rng.random::<bool>()) {
                (DataType::Byte, true) => Opcode::Addb3,
                (DataType::Byte, false) => Opcode::Subb3,
                (DataType::Word, true) => Opcode::Addw3,
                (DataType::Word, false) => Opcode::Subw3,
                (_, true) => Opcode::Addl3,
                (_, false) => Opcode::Subl3,
            };
            let a = self.read_operand(dtype);
            let b = self.read_operand(dtype);
            let dst = self.write_operand(dtype);
            self.asm.inst(op, &[a, b, dst])?;
        } else {
            // Shifts/rotates/converts.
            match self.rng.random_range(0..3u32) {
                0 => {
                    let cnt = Operand::Literal(self.rng.random_range(0..16u32) as u8);
                    let src = self.read_operand(DataType::Long);
                    let dst = Operand::Reg(self.scratch_reg());
                    self.asm.inst(Opcode::Ashl, &[cnt, src, dst])?;
                }
                1 => {
                    let src = self.read_operand(DataType::Word);
                    let dst = Operand::Reg(self.scratch_reg());
                    self.asm.inst(Opcode::Cvtwl, &[src, dst])?;
                }
                _ => {
                    let cnt = Operand::Literal(self.rng.random_range(1..31u32) as u8);
                    let src = self.read_operand(DataType::Long);
                    let dst = Operand::Reg(self.scratch_reg());
                    self.asm.inst(Opcode::Rotl, &[cnt, src, dst])?;
                }
            }
        }
        Ok(())
    }

    fn emit_logic(&mut self) -> Result<(), vax_arch::ArchError> {
        let dtype = DataType::Long;
        match self.rng.random_range(0..5u32) {
            0 => {
                let a = self.read_operand(dtype);
                let dst = self.write_operand(dtype);
                self.asm.inst(Opcode::Bisl2, &[a, dst])?;
            }
            1 => {
                let a = self.read_operand(dtype);
                let dst = self.write_operand(dtype);
                self.asm.inst(Opcode::Bicl2, &[a, dst])?;
            }
            2 => {
                let a = self.read_operand(dtype);
                let dst = self.write_operand(dtype);
                self.asm.inst(Opcode::Xorl2, &[a, dst])?;
            }
            3 => {
                let a = self.read_operand(dtype);
                let b = self.read_operand(dtype);
                self.asm.inst(Opcode::Bitl, &[a, b])?;
            }
            _ => {
                let a = self.read_operand(dtype);
                self.asm.inst(Opcode::Tstl, &[a])?;
            }
        }
        Ok(())
    }

    /// Compare the bias stream against a threshold slot, then branch on
    /// the result two or three times — as real code does, reusing one
    /// compare's condition codes for several conditional branches.
    /// Thresholds are fractions of 2³², so taken rates are controlled.
    fn emit_cond_branch(&mut self) -> Result<(), vax_arch::ArchError> {
        if !self.consume_bias(4) {
            return self.emit_logic();
        }
        let lay = self.layout;
        let slot = self.rng.random_range(0..lay.threshold_count);
        self.asm.inst(
            Opcode::Cmpl,
            &[
                Operand::AutoIncrement(regs::BIAS),
                Operand::Disp((lay.thresholds_off + slot * 4) as i32, regs::DATA_BASE),
            ],
        )?;
        let threshold = crate::process::THRESHOLDS[slot as usize];
        let branches = self.rng.random_range(2..4u32);
        for _ in 0..branches {
            let skip = self.asm.new_label();
            // Unsigned tests against the threshold fraction; equality is
            // vanishingly rare with 32-bit uniform bias values. The pick
            // leans toward the likelier direction, which is what real
            // code's forward-branch structure does, landing the class
            // taken rate at Table 2's 56 %.
            let taken_if_less = if self.rng.random::<f64>() < 0.70 {
                threshold >= 0.5
            } else {
                threshold < 0.5
            };
            let op = match (taken_if_less, self.rng.random::<bool>()) {
                (true, true) => Opcode::Bcs,    // unsigned <
                (true, false) => Opcode::Blequ, // unsigned <=
                (false, true) => Opcode::Bgtru, // unsigned >
                (false, false) => Opcode::Bcc,  // unsigned >=
            };
            self.asm.branch(op, &[], skip)?;
            self.emit_simple_value_slot()?;
            self.asm.place(skip)?;
        }
        Ok(())
    }

    fn emit_lowbit(&mut self) -> Result<(), vax_arch::ArchError> {
        if !self.consume_bias(4) {
            return self.emit_logic();
        }
        let skip = self.asm.new_label();
        // Mostly BLBS: the bias low bit is set 41 % of the time, so the
        // class taken rate lands at Table 2's figure (the kernel's tick
        // tests run at 50 %, pulling the average up slightly).
        let op = if self.rng.random::<f64>() < 0.9 {
            Opcode::Blbs
        } else {
            Opcode::Blbc
        };
        self.asm
            .branch(op, &[Operand::AutoIncrement(regs::BIAS)], skip)?;
        self.emit_simple_value_slot()?;
        self.asm.place(skip)?;
        Ok(())
    }

    fn emit_loop(&mut self) -> Result<(), vax_arch::ArchError> {
        // Floor of 4 iterations: very short loops are usually unrolled by
        // hand or compiler, and Table 2's 91 % loop-taken rate implies
        // ≈10+ average iterations.
        let iters = sample_count(&mut self.rng, self.params.loop_mean_iters, 32).max(4);
        let counter = if self.loop_depth == 0 {
            regs::LOOP_OUTER
        } else {
            regs::LOOP_INNER
        };
        let body_slots = self.rng.random_range(3..8u32);
        // AOBxxx/SOBxxx take byte displacements: only small bodies fit.
        // Larger bodies use ACBL, whose displacement is a word.
        let compact = body_slots <= 4;
        let was_compact = self.compact_body;
        self.loop_depth += 1;
        self.loop_multiplier = self.loop_multiplier.saturating_mul(iters);
        if compact {
            self.compact_body = true;
            if self.rng.random::<bool>() {
                self.asm.inst(Opcode::Clrl, &[Operand::Reg(counter)])?;
                let top = self.asm.label_here();
                for _ in 0..body_slots {
                    self.emit_slot(true)?;
                }
                self.asm.branch(
                    Opcode::Aoblss,
                    &[Operand::Literal(iters as u8), Operand::Reg(counter)],
                    top,
                )?;
            } else {
                self.asm.inst(
                    Opcode::Movl,
                    &[Operand::Literal(iters as u8), Operand::Reg(counter)],
                )?;
                let top = self.asm.label_here();
                for _ in 0..body_slots {
                    self.emit_slot(true)?;
                }
                self.asm
                    .branch(Opcode::Sobgtr, &[Operand::Reg(counter)], top)?;
            }
        } else {
            self.asm.inst(Opcode::Clrl, &[Operand::Reg(counter)])?;
            let top = self.asm.label_here();
            for _ in 0..body_slots {
                self.emit_slot(true)?;
            }
            self.asm.branch(
                Opcode::Acbl,
                &[
                    Operand::Literal((iters - 1) as u8),
                    Operand::Literal(1),
                    Operand::Reg(counter),
                ],
                top,
            )?;
        }
        self.compact_body = was_compact;
        self.loop_multiplier /= iters.max(1);
        self.loop_depth -= 1;
        Ok(())
    }

    fn emit_case(&mut self) -> Result<(), vax_arch::ArchError> {
        // Selector: dispatcher counter masked to 0..=3.
        self.asm.inst(
            Opcode::Bicl3,
            &[
                Operand::Immediate(0xFFFF_FFFC),
                Operand::Reg(regs::DISPATCH_COUNT),
                Operand::Reg(Reg::R0),
            ],
        )?;
        let targets: Vec<Label> = (0..4).map(|_| self.asm.new_label()).collect();
        self.asm.case(
            Opcode::Casel,
            &[
                Operand::Reg(Reg::R0),
                Operand::Literal(0),
                Operand::Literal(3),
            ],
            &targets,
        )?;
        let join = self.asm.new_label();
        for t in targets {
            self.asm.place(t)?;
            self.emit_simple_value_slot()?;
            self.asm.branch(Opcode::Brb, &[], join)?;
        }
        self.asm.place(join)?;
        Ok(())
    }

    fn emit_jsb(&mut self) -> Result<(), vax_arch::ArchError> {
        let leaf = self.asm.new_label();
        self.pending_leaves.push(leaf);
        self.asm.branch(Opcode::Bsbw, &[], leaf)?;
        Ok(())
    }

    /// Computed `JMP` through a register (the rare Unconditional class of
    /// Table 2): load the address of the next instruction region, jump.
    fn emit_jmp(&mut self) -> Result<(), vax_arch::ArchError> {
        let target = self.asm.new_label();
        self.asm.moval_pcrel(target, Operand::Reg(Reg::R0))?;
        self.asm
            .inst(Opcode::Jmp, &[Operand::RegDeferred(Reg::R0)])?;
        self.asm.place(target)?;
        Ok(())
    }

    /// Nested procedure call, forward-only through the function table (so
    /// the call graph is acyclic and stack depth is bounded by the
    /// function count).
    fn emit_calls_fn(&mut self) -> Result<(), vax_arch::ArchError> {
        let next = self.rng.random_range(self.current_function + 1..self.nfunc);
        let nargs = self.rng.random_range(0..2u32);
        for a in 0..nargs {
            self.asm
                .inst(Opcode::Pushl, &[Operand::Literal((next + a) as u8 & 63)])?;
        }
        self.asm.inst(
            Opcode::Calls,
            &[
                Operand::Literal(nargs as u8),
                Operand::DispDeferred(self.layout.func_entry_rel(next), regs::TABLES),
            ],
        )?;
        Ok(())
    }

    fn emit_pushpop(&mut self) -> Result<(), vax_arch::ArchError> {
        let mut mask = 0u16;
        let n = self.rng.random_range(2..5u32);
        while mask.count_ones() < n {
            mask |= 1 << self.rng.random_range(0..6u16);
        }
        self.asm
            .inst(Opcode::Pushr, &[Operand::Immediate(u64::from(mask))])?;
        self.asm
            .inst(Opcode::Popr, &[Operand::Immediate(u64::from(mask))])?;
        Ok(())
    }

    fn emit_field(&mut self) -> Result<(), vax_arch::ArchError> {
        // Field positions come from a bounded register (a loop counter,
        // <= 32) about a third of the time, as array-of-fields code does.
        let pos = if self.rng.random::<f64>() < 0.35 {
            Operand::Reg(regs::LOOP_OUTER)
        } else {
            Operand::Literal(self.rng.random_range(0..24u32) as u8)
        };
        let size = Operand::Literal(self.rng.random_range(1..16u32) as u8);
        let base_mem = self.rng.random::<f64>() < 0.5;
        let base = if base_mem {
            let d = self.scalar_disp(DataType::Long);
            Operand::Disp(d, regs::DATA_BASE)
        } else {
            Operand::Reg(Reg::R4)
        };
        let r = Operand::Reg(self.scratch_reg());
        match self.rng.random_range(0..4u32) {
            0 => self.asm.inst(Opcode::Extzv, &[pos, size, base, r])?,
            1 => self.asm.inst(Opcode::Extv, &[pos, size, base, r])?,
            2 => self.asm.inst(Opcode::Insv, &[r, pos, size, base])?,
            _ => self.asm.inst(
                Opcode::Ffs,
                &[Operand::Literal(0), Operand::Literal(32), base, r],
            )?,
        };
        Ok(())
    }

    fn emit_bit_branch(&mut self) -> Result<(), vax_arch::ArchError> {
        let lay = self.layout;
        let byte = self.rng.random_range(0..lay.flags_len);
        let bit = Operand::Literal(self.rng.random_range(0..8u32) as u8);
        let base = Operand::Disp((lay.flags_off + byte) as i32, regs::DATA_BASE);
        let skip = self.asm.new_label();
        // Flag bits are set with p = 0.44; weighting BBS over BBC keeps
        // the class taken rate near Table 2's 44 %. One setter and one
        // clearer variant keep the flag density from drifting.
        let op = match self.rng.random_range(0..40u32) {
            0..=29 => Opcode::Bbs,
            30..=37 => Opcode::Bbc,
            38 => Opcode::Bbss,
            _ => Opcode::Bbcc,
        };
        self.asm.branch(op, &[bit, base], skip)?;
        self.emit_simple_value_slot()?;
        self.asm.place(skip)?;
        Ok(())
    }

    fn emit_float(&mut self) -> Result<(), vax_arch::ArchError> {
        match self.rng.random_range(0..6u32) {
            0 => {
                let d = self.scalar_disp(DataType::Long);
                let src = Operand::Disp(d, regs::DATA_BASE);
                self.asm
                    .inst(Opcode::Cvtlf, &[src, Operand::Reg(Reg::R0)])?;
            }
            1 => {
                self.asm.inst(
                    Opcode::Addf2,
                    &[Operand::Reg(Reg::R0), Operand::Reg(Reg::R1)],
                )?;
            }
            2 => {
                self.asm.inst(
                    Opcode::Mulf3,
                    &[
                        Operand::Reg(Reg::R0),
                        Operand::Reg(Reg::R1),
                        Operand::Reg(Reg::R2),
                    ],
                )?;
            }
            3 => {
                let d = self.scalar_disp(DataType::FFloat);
                let src = Operand::Disp(d, regs::DATA_BASE);
                self.asm.inst(Opcode::Movf, &[src, Operand::Reg(Reg::R1)])?;
            }
            4 => {
                self.asm.inst(
                    Opcode::Subf3,
                    &[
                        Operand::Reg(Reg::R1),
                        Operand::Reg(Reg::R0),
                        Operand::Reg(Reg::R2),
                    ],
                )?;
            }
            _ => {
                self.asm.inst(
                    Opcode::Cmpf,
                    &[Operand::Reg(Reg::R0), Operand::Reg(Reg::R1)],
                )?;
            }
        };
        Ok(())
    }

    fn emit_muldiv(&mut self) -> Result<(), vax_arch::ArchError> {
        if self.rng.random::<f64>() < 0.6 {
            let a = self.read_operand(DataType::Long);
            let b = Operand::Reg(self.scratch_reg());
            let dst = Operand::Reg(self.scratch_reg());
            self.asm.inst(Opcode::Mull3, &[a, b, dst])?;
        } else {
            // Divisor from memory half the time (a zero divisor just
            // sets V on the VAX); literal otherwise.
            let div = if self.rng.random::<bool>() {
                let d = self.scalar_disp(DataType::Long);
                Operand::Disp(d, regs::DATA_BASE)
            } else {
                Operand::Literal(self.rng.random_range(1..64u32) as u8)
            };
            let b = self.read_operand(DataType::Long);
            let dst = Operand::Reg(self.scratch_reg());
            self.asm.inst(Opcode::Divl3, &[div, b, dst])?;
        }
        Ok(())
    }

    fn emit_char(&mut self) -> Result<(), vax_arch::ArchError> {
        let lay = self.layout;
        let len = sample_count(&mut self.rng, self.params.string_mean_len, 200).max(4);
        // Strings are usually longword-aligned in practice.
        let mut off_a = self.rng.random_range(0..(lay.string_len - len - 4));
        let mut off_b = self.rng.random_range(0..(lay.string_len - len - 4));
        if self.rng.random::<f64>() < 0.55 {
            off_a &= !3;
            off_b &= !3;
        }
        let src = Operand::Disp((lay.string_a_off + off_a) as i32, regs::DATA_BASE);
        let dst = Operand::Disp((lay.string_b_off + off_b) as i32, regs::DATA_BASE);
        // Short lengths encode as literals, as a compiler would emit.
        let len_op = if len < 64 {
            Operand::Literal(len as u8)
        } else {
            Operand::Immediate(u64::from(len))
        };
        match self.rng.random_range(0..10u32) {
            0..=6 => self.asm.inst(Opcode::Movc3, &[len_op, src, dst])?,
            7 | 8 => self.asm.inst(Opcode::Cmpc3, &[len_op, src, dst])?,
            _ => self
                .asm
                .inst(Opcode::Locc, &[Operand::Literal(b' ' & 63), len_op, src])?,
        };
        Ok(())
    }

    fn emit_decimal(&mut self) -> Result<(), vax_arch::ArchError> {
        let lay = self.layout;
        let digits = lay.decimal_digits as u8;
        let slot = |i: u32| -> Operand {
            Operand::Disp((lay.decimal_off + 16 * i) as i32, regs::DATA_BASE)
        };
        let a = self.rng.random_range(0..lay.decimal_slots);
        let b = self.rng.random_range(0..lay.decimal_slots);
        let len = Operand::Literal(digits.min(31));
        match self.rng.random_range(0..4u32) {
            0 | 1 => self
                .asm
                .inst(Opcode::Addp4, &[len.clone(), slot(a), len.clone(), slot(b)])?,
            2 => self
                .asm
                .inst(Opcode::Cmpp3, &[len.clone(), slot(a), slot(b)])?,
            _ => self
                .asm
                .inst(Opcode::Movp, &[len.clone(), slot(a), slot(b)])?,
        };
        Ok(())
    }

    fn emit_queue(&mut self) -> Result<(), vax_arch::ArchError> {
        let lay = self.layout;
        let node = self.rng.random_range(0..lay.queue_nodes);
        let head = Operand::Disp(lay.queue_off as i32, regs::DATA_BASE);
        let entry = Operand::Disp((lay.queue_off + 8 + node * 8) as i32, regs::DATA_BASE);
        self.asm
            .inst(Opcode::Insque, &[entry.clone(), head.clone()])?;
        self.asm
            .inst(Opcode::Remque, &[entry, Operand::Reg(Reg::R2)])?;
        Ok(())
    }

    fn emit_syscall(&mut self) -> Result<(), vax_arch::ArchError> {
        let code = self.rng.random_range(0..self.params.service_count);
        self.asm
            .inst(Opcode::Chmk, &[Operand::Immediate(u64::from(code))])?;
        Ok(())
    }

    /// Reserve `bytes × loop multiplicity` of the bias stream; false if
    /// the budget is exhausted (the caller emits something else).
    fn consume_bias(&mut self, bytes: u32) -> bool {
        let need = i64::from(bytes) * i64::from(self.loop_multiplier);
        if self.bias_budget >= need {
            self.bias_budget -= need;
            true
        } else {
            false
        }
    }
}

/// Emitter kinds (sampled by weight).
#[derive(Debug, Clone, Copy)]
enum Emitter {
    Move,
    Arith,
    Logic,
    CondBranch,
    LowBit,
    Loop,
    Case,
    Jsb,
    JmpUncond,
    CallsFn,
    PushPop,
    Field,
    BitBranch,
    Float,
    MulDiv,
    CharOp,
    DecimalOp,
    QueueOp,
    Syscall,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{profile, WorkloadKind};
    use rand::SeedableRng;

    #[test]
    fn generates_a_decodable_program() {
        let params = profile(WorkloadKind::TimesharingLight);
        let mut asm = Assembler::new(0x400);
        let layout = DataLayout::for_profile(&params, 0x8_0000);
        let mut gen = CodeGen::new(
            &mut asm,
            StdRng::seed_from_u64(params.seed),
            &params,
            layout,
        );
        let prog = gen.generate().expect("generation succeeds");
        assert_eq!(prog.functions.len(), params.functions_per_process as usize);
        let image = asm.finish().expect("all labels resolve");
        assert!(image.len() > 4000, "non-trivial program: {}", image.len());
        // Whole image decodes instruction by instruction from entry to
        // the first function (the dispatcher is straight-line + BRW).
        let mut src = vax_arch::SliceSource::new(&image.bytes);
        let mut decoded = 0;
        while (image.base + src.pos() as u32) < prog.functions[0] {
            vax_arch::Decoder::decode(&mut src).expect("dispatcher decodes");
            decoded += 1;
        }
        assert!(decoded > 20);
    }

    #[test]
    fn generation_is_deterministic() {
        let params = profile(WorkloadKind::Commercial);
        let build = || {
            let mut asm = Assembler::new(0x400);
            let layout = DataLayout::for_profile(&params, 0x8_0000);
            let mut gen = CodeGen::new(
                &mut asm,
                StdRng::seed_from_u64(params.seed),
                &params,
                layout,
            );
            gen.generate().unwrap();
            asm.finish().unwrap().bytes
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn layout_regions_do_not_overlap() {
        let params = profile(WorkloadKind::SciEng);
        let l = DataLayout::for_profile(&params, 0x10000);
        let regions = [
            (l.scalar_off, l.scalar_len),
            (l.flags_off, l.flags_len),
            (l.walk_up_off, l.walker_len),
            (l.walk_down_off, l.walker_len),
            (l.string_a_off, l.string_len),
            (l.string_b_off, l.string_len),
            (l.decimal_off, l.decimal_slots * 16),
            (l.queue_off, 8 + l.queue_nodes * 8),
            (l.ptr_table_off, l.ptr_entries * 4),
            (l.func_table_off, l.func_capacity * 4),
            (l.bias_off, l.bias_len),
        ];
        for (i, &(a_off, a_len)) in regions.iter().enumerate() {
            for &(b_off, b_len) in &regions[i + 1..] {
                assert!(
                    a_off + a_len <= b_off || b_off + b_len <= a_off,
                    "regions overlap: ({a_off},{a_len}) vs ({b_off},{b_len})"
                );
            }
        }
        assert!(l.total_len >= l.bias_off + l.bias_len);
    }
}
