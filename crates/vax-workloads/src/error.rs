//! Workload-construction errors.
//!
//! Building a machine image from a profile can fail in three places: the
//! profile parameters themselves, the per-process code generator, and
//! the kernel builder. Each failure carries enough context to report a
//! diagnostic (which profile, which process) instead of aborting the
//! whole process with a panic.

use crate::mix::ProfileParams;
use std::fmt;
use vax_arch::ArchError;

/// Why a workload machine could not be built.
#[derive(Debug)]
#[non_exhaustive]
pub enum WorkloadError {
    /// The profile parameters are out of range.
    Params {
        /// Profile name.
        profile: &'static str,
        /// What is wrong with the parameters.
        message: String,
    },
    /// The per-process code generator (or its assembler) failed.
    Codegen {
        /// Profile name.
        profile: &'static str,
        /// Index of the process whose program failed.
        process: u32,
        /// The underlying assembler/architecture error.
        source: ArchError,
    },
    /// The kernel builder failed.
    Kernel {
        /// Profile name.
        profile: &'static str,
        /// The underlying assembler/architecture error.
        source: ArchError,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Params { profile, message } => {
                write!(f, "profile '{profile}': invalid parameters: {message}")
            }
            WorkloadError::Codegen {
                profile,
                process,
                source,
            } => write!(
                f,
                "profile '{profile}': process {process} code generation failed: {source}"
            ),
            WorkloadError::Kernel { profile, source } => {
                write!(f, "profile '{profile}': kernel build failed: {source}")
            }
        }
    }
}

impl std::error::Error for WorkloadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorkloadError::Params { .. } => None,
            WorkloadError::Codegen { source, .. } | WorkloadError::Kernel { source, .. } => {
                Some(source)
            }
        }
    }
}

impl ProfileParams {
    /// Check the parameters, reporting the first violation as an error
    /// instead of panicking (the checked twin of
    /// [`validate`](ProfileParams::validate)).
    ///
    /// # Errors
    ///
    /// [`WorkloadError::Params`] naming the out-of-range field.
    pub fn check(&self) -> Result<(), WorkloadError> {
        let constraints: &[(&str, bool)] = &[
            ("processes >= 1", self.processes >= 1),
            (
                "functions_per_process >= 1",
                self.functions_per_process >= 1,
            ),
            ("slots_per_function >= 4", self.slots_per_function >= 4),
            ("loop_mean_iters >= 2", self.loop_mean_iters >= 2),
            ("service_count >= 1", self.service_count >= 1),
            ("timer_period >= 1000", self.timer_period >= 1000),
        ];
        for (what, ok) in constraints {
            if !ok {
                return Err(WorkloadError::Params {
                    profile: self.name,
                    message: format!("requires {what}"),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{profile, WorkloadKind};

    #[test]
    fn check_accepts_builtin_profiles_and_names_violations() {
        for kind in WorkloadKind::ALL {
            profile(kind).check().expect("builtin profile is valid");
        }
        let bad = ProfileParams {
            slots_per_function: 1,
            ..profile(WorkloadKind::Commercial)
        };
        let err = bad.check().unwrap_err();
        let text = err.to_string();
        assert!(text.contains("commercial"), "{text}");
        assert!(text.contains("slots_per_function"), "{text}");
    }
}
