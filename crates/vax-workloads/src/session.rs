//! Session assembly: build a complete runnable machine for one workload.
//!
//! Wires together physical memory and paging, the generated kernel, the
//! per-process programs/data/PCBs, the SCB, and the external event
//! sources (interval timer + RTE). The result boots like the real thing:
//! the CPU starts in the kernel bootstrap, `LDPCTX`/`REI`s into process
//! 0, and from then on the timer drives scheduling.

use crate::codegen::{CodeGen, DataLayout};
use crate::error::WorkloadError;
use crate::kernel::{self, KernelImage};
use crate::mix::ProfileParams;
use crate::process;
use crate::rte::{RteConfig, RteSource};
use rand::rngs::StdRng;
use rand::SeedableRng;
use upc_monitor::CycleSink;
use vax_arch::Assembler;
use vax_cpu::{Cpu, CpuConfig, CpuError, Interrupt, Psl, StepOutcome};
use vax_mem::{load_virtual, AddressSpace, MapBuilder, MemConfig, MemorySubsystem, PAGE_BYTES};

/// Interval-timer interrupt: IPL 24, SCB vector 0xC0 (the 11/780 clock).
const TIMER_IPL: u8 = 24;
const TIMER_VECTOR: u16 = 0xC0;

/// User stack pages within each process's P1 window; kernel stack pages
/// sit above them. Public so the static verifier (`vax-lint`) can bound
/// worst-case stack depth against the stack actually mapped here.
pub const USER_STACK_PAGES: u32 = 32;

/// Bytes of user stack each process gets ([`USER_STACK_PAGES`] pages).
pub const USER_STACK_BYTES: u32 = USER_STACK_PAGES * PAGE_BYTES;
const KERNEL_STACK_PAGES: u32 = 8;

/// A complete workload machine.
pub struct Machine {
    /// The processor (owns the memory subsystem).
    pub cpu: Cpu,
    /// Profile name (report labels).
    pub name: &'static str,
    /// The Null-process idle loop PC (measurement exclusion).
    pub idle_pc: u32,
    timer_period: u64,
    next_timer: u64,
    dma_period: u64,
    dma_burst: u64,
    next_dma: u64,
    rte: RteSource,
    interrupts_posted: u64,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("name", &self.name)
            .field("cycles", &self.cpu.now())
            .field("instructions", &self.cpu.instructions())
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// Post any external events that are due at the current cycle.
    pub fn pump(&mut self) {
        let now = self.cpu.now();
        if now >= self.next_timer {
            self.cpu.post_interrupt(Interrupt {
                ipl: TIMER_IPL,
                vector: TIMER_VECTOR,
            });
            self.interrupts_posted += 1;
            // Missed ticks are dropped, as a real ISR that re-arms would.
            self.next_timer = now + self.timer_period;
        }
        while let Some(int) = self.rte.due(now) {
            self.cpu.post_interrupt(int);
            self.interrupts_posted += 1;
        }
        // Background SBI DMA (disk/terminal controllers).
        if self.dma_period > 0 && now >= self.next_dma {
            self.cpu.mem_mut().inject_dma(now, self.dma_burst);
            self.next_dma = now + self.dma_period;
        }
        // Everything due at `now` has been posted, so each source's next
        // firing is strictly in the future: publish the earliest one as
        // the CPU's event horizon. The block tier stops before crossing
        // it, which makes the pump calls it skips provable no-ops.
        let next_dma = if self.dma_period > 0 {
            self.next_dma
        } else {
            u64::MAX
        };
        self.cpu
            .set_event_horizon(self.next_timer.min(self.rte.next_due()).min(next_dma));
    }

    /// One instruction (or interrupt service), with event pumping.
    ///
    /// # Errors
    ///
    /// Propagates CPU errors ([`CpuError::Halted`] etc.).
    pub fn step<S: CycleSink>(&mut self, sink: &mut S) -> Result<StepOutcome, CpuError> {
        self.pump();
        self.cpu.step(sink)
    }

    /// Up to `budget` instructions (or one interrupt service), with
    /// event pumping: the block tier may retire a whole straight-line
    /// run in one call, but never more than `budget` instructions and
    /// never past the next external event.
    ///
    /// # Errors
    ///
    /// Propagates CPU errors ([`CpuError::Halted`] etc.).
    pub fn step_budgeted<S: CycleSink>(
        &mut self,
        budget: u64,
        sink: &mut S,
    ) -> Result<StepOutcome, CpuError> {
        self.pump();
        self.cpu.step_budgeted(budget, sink)
    }

    /// Run until `n` more instructions have retired.
    ///
    /// # Errors
    ///
    /// Propagates CPU errors.
    pub fn run_instructions<S: CycleSink>(&mut self, n: u64, sink: &mut S) -> Result<(), CpuError> {
        let target = self.cpu.instructions() + n;
        while self.cpu.instructions() < target {
            let remaining = target - self.cpu.instructions();
            self.step_budgeted(remaining, sink)?;
        }
        Ok(())
    }

    /// Run `n` instructions as a named phase: the sink receives
    /// begin/end phase markers around the run, so a tracing sink can
    /// bracket warmup/measure/cooldown in its timeline. Non-tracing
    /// sinks ignore the markers.
    ///
    /// # Errors
    ///
    /// Propagates CPU errors; the end marker is still emitted.
    pub fn run_phase<S: CycleSink>(
        &mut self,
        name: &str,
        n: u64,
        sink: &mut S,
    ) -> Result<(), CpuError> {
        sink.trace_phase(name, true);
        let result = self.run_instructions(n, sink);
        sink.trace_phase(name, false);
        result
    }

    /// Is the CPU sitting in the Null process? (The idle loop is a
    /// two-byte `BRB` to itself.)
    pub fn at_idle(&self) -> bool {
        let pc = self.cpu.pc();
        pc >= self.idle_pc && pc < self.idle_pc + 2
    }

    /// External interrupts posted so far (timer + terminals).
    pub fn interrupts_posted(&self) -> u64 {
        self.interrupts_posted
    }

    /// Keystrokes delivered by the RTE so far.
    pub fn keystrokes(&self) -> u64 {
        self.rte.delivered()
    }
}

/// One process's generated program, before it is loaded into memory:
/// the assembled code image, the data layout/image it runs against, and
/// the placement facts a static analyzer needs (entry point, function
/// addresses).
#[derive(Debug)]
pub struct ProcessImage {
    /// Assembled user code.
    pub image: vax_arch::CodeImage,
    /// Data-region layout the code was generated against.
    pub layout: DataLayout,
    /// Initial contents of the data region.
    pub data: Vec<u8>,
    /// User-mode entry PC (the dispatcher).
    pub entry: u32,
    /// Function addresses (each starts with a 2-byte entry mask), in
    /// function-table order.
    pub functions: Vec<u32>,
}

/// Generate every process image for a profile — the pure-codegen half of
/// machine construction, exposed so static analysis (`vax-lint`) can
/// inspect exactly the code a machine would run without building one.
///
/// Deterministic in `params.seed`.
///
/// # Errors
///
/// [`WorkloadError::Params`] for out-of-range parameters and
/// [`WorkloadError::Codegen`] when generation or assembly fails.
pub fn plan_processes(params: &ProfileParams) -> Result<Vec<ProcessImage>, WorkloadError> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    plan_processes_with(params, &mut rng)
}

/// As [`plan_processes`], continuing an existing RNG stream (the kernel
/// builder consumes the same stream right after the data images, so the
/// split must not reseed in between).
fn plan_processes_with(
    params: &ProfileParams,
    rng: &mut StdRng,
) -> Result<Vec<ProcessImage>, WorkloadError> {
    params.check()?;
    let mut plans = Vec::with_capacity(params.processes as usize);
    for i in 0..params.processes {
        let layout_base = PAGE_BYTES; // page 0 reserved
        let layout = DataLayout::for_profile(params, layout_base);
        let code_base = (layout_base + layout.total_len + 15) & !15;
        let mut asm = Assembler::new(code_base);
        let gen_rng = StdRng::seed_from_u64(params.seed ^ (0x9E37_79B9 * u64::from(i + 1)));
        let mut generator = CodeGen::new(&mut asm, gen_rng, params, layout);
        let codegen_err = |source| WorkloadError::Codegen {
            profile: params.name,
            process: i,
            source,
        };
        let prog = generator.generate().map_err(codegen_err)?;
        let image = asm.finish().map_err(codegen_err)?;
        let data = process::build_data_image(&layout, params, rng, &prog.functions);
        plans.push(ProcessImage {
            image,
            layout,
            data,
            entry: prog.entry,
            functions: prog.functions,
        });
    }
    Ok(plans)
}

/// Build a machine for the given workload profile.
///
/// Deterministic in `params.seed`. Panics on construction failure; use
/// [`try_build_machine`] to report the error instead.
pub fn build_machine(params: &ProfileParams) -> Machine {
    build_machine_with_config(params, CpuConfig::default(), MemConfig::default())
}

/// As [`build_machine`] with explicit CPU/memory configurations (used by
/// the ablation benches).
pub fn build_machine_with_config(
    params: &ProfileParams,
    cpu_config: CpuConfig,
    mem_config: MemConfig,
) -> Machine {
    match try_build_machine_with_config(params, cpu_config, mem_config) {
        Ok(machine) => machine,
        Err(e) => panic!("{e}"),
    }
}

/// Build a machine for the given workload profile, reporting failures
/// (bad parameters, generator or kernel bugs) as a [`WorkloadError`]
/// diagnostic instead of aborting the process.
///
/// # Errors
///
/// Any [`WorkloadError`] from parameter checking, process code
/// generation, or the kernel builder.
pub fn try_build_machine(params: &ProfileParams) -> Result<Machine, WorkloadError> {
    try_build_machine_with_config(params, CpuConfig::default(), MemConfig::default())
}

/// As [`try_build_machine`] with explicit CPU/memory configurations.
///
/// # Errors
///
/// Any [`WorkloadError`] from parameter checking, process code
/// generation, or the kernel builder.
pub fn try_build_machine_with_config(
    params: &ProfileParams,
    cpu_config: CpuConfig,
    mem_config: MemConfig,
) -> Result<Machine, WorkloadError> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let plans = plan_processes_with(params, &mut rng)?;
    let mut mem = MemorySubsystem::new(mem_config);
    let mut mb = MapBuilder::new(mem.phys(), 8192);

    // ----- physical allocations: SCB and PCBs ------------------------------
    let scb_pa = mb.alloc_frames(1) * PAGE_BYTES;
    let pcb_pas: Vec<u32> = (0..params.processes)
        .map(|_| mb.alloc_frames(1) * PAGE_BYTES)
        .collect();

    // ----- kernel ------------------------------------------------------------
    let kdata_pages = kernel::kdata::SIZE.div_ceil(PAGE_BYTES).max(4);
    let kdata_va = 0x8000_0000;
    let kcode_va = kdata_va + kdata_pages * PAGE_BYTES;
    let kernel_img: KernelImage = kernel::build_kernel(
        params, &mut rng, kcode_va, kdata_va, scb_pa, &pcb_pas,
    )
    .map_err(|source| WorkloadError::Kernel {
        profile: params.name,
        source,
    })?;
    let kcode_pages = (kernel_img.code.len() as u32).div_ceil(PAGE_BYTES) + 1;

    // ----- system mappings (order defines the fixed kernel VAs) -------------
    let got_kdata = mb.map_system(mem.phys_mut(), kdata_pages);
    assert_eq!(got_kdata, kdata_va, "kernel data VA");
    let got_kcode = mb.map_system(mem.phys_mut(), kcode_pages);
    assert_eq!(got_kcode, kcode_va, "kernel code VA");
    let istack_pages = 8;
    let istack_base = mb.map_system(mem.phys_mut(), istack_pages);
    let istack_top = istack_base + istack_pages * PAGE_BYTES;

    // ----- processes ----------------------------------------------------------
    let p1_pages = USER_STACK_PAGES + KERNEL_STACK_PAGES;
    let mut spaces = Vec::with_capacity(plans.len());
    for plan in &plans {
        let p0_pages = plan.image.end().div_ceil(PAGE_BYTES) + 2;
        let space = mb.create_process(mem.phys_mut(), p0_pages, p1_pages);
        spaces.push(space);
    }
    let system = mb.system_map();
    mem.set_system_map(system);

    // Load kernel code and data (system space; any address space works).
    let empty = AddressSpace::empty();
    load_virtual(
        mem.phys_mut(),
        &system,
        &empty,
        kernel_img.code.base,
        &kernel_img.code.bytes,
    );
    load_virtual(mem.phys_mut(), &system, &empty, kdata_va, &kernel_img.data);

    // SCB vectors (physical).
    for &(vector, handler) in &kernel_img.vectors {
        mem.phys_mut()
            .write_u32(scb_pa + u32::from(vector), handler);
    }

    // Load process images, stacks, PCBs.
    for (i, plan) in plans.iter().enumerate() {
        let space = spaces[i];
        load_virtual(
            mem.phys_mut(),
            &system,
            &space,
            plan.layout.base,
            &plan.data,
        );
        load_virtual(
            mem.phys_mut(),
            &system,
            &space,
            plan.image.base,
            &plan.image.bytes,
        );
        // Initial kernel-stack frame: REI pops PC then PSL.
        let ktop = space.stack_top();
        let ksp = ktop - 8;
        let user_psl = Psl::default(); // user mode, IPL 0
        let mut frame = Vec::with_capacity(8);
        frame.extend_from_slice(&plan.entry.to_le_bytes());
        frame.extend_from_slice(&user_psl.to_u32().to_le_bytes());
        load_virtual(mem.phys_mut(), &system, &space, ksp, &frame);
        let usp = vax_mem::P1_BASE + USER_STACK_PAGES * PAGE_BYTES;
        let pcb = process::build_pcb(&space, ksp, usp);
        for (off, b) in pcb.iter().enumerate() {
            mem.phys_mut().write_u8(pcb_pas[i] + off as u32, *b);
        }
    }

    // ----- CPU -----------------------------------------------------------------
    let mut cpu = Cpu::new(mem, cpu_config, kernel_img.boot_pc);
    // The boot code's MTPRs install SCBB/PCBB architecturally; priming the
    // interrupt stack pointer is legitimately machine setup.
    let on_is = Psl {
        interrupt_stack: true,
        ..Psl::kernel_boot()
    };
    cpu.regs_mut().set_banked_sp(&on_is, istack_top);
    // Give boot a kernel stack too (not used past the bootstrap).
    cpu.regs_mut().set_sp(istack_top - 64);

    let rte = RteSource::new(RteConfig {
        users: params.terminal_users,
        think_mean_cycles: params.think_mean_cycles,
        burst_mean_keys: params.burst_mean_keys,
        key_gap_cycles: params.key_gap_cycles,
        seed: params.seed ^ 0xDEAD_BEEF,
    });

    Ok(Machine {
        cpu,
        name: params.name,
        idle_pc: kernel_img.idle_pc,
        timer_period: params.timer_period,
        next_timer: params.timer_period,
        dma_period: params.dma_period,
        dma_burst: params.dma_burst,
        next_dma: params.dma_period,
        rte,
        interrupts_posted: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{profile, WorkloadKind};
    use upc_monitor::NullSink;

    fn small_profile() -> ProfileParams {
        ProfileParams {
            processes: 3,
            functions_per_process: 8,
            slots_per_function: 20,
            scalar_bytes: 16 * 1024,
            terminal_users: 4,
            ..profile(WorkloadKind::TimesharingLight)
        }
    }

    #[test]
    fn machine_boots_into_user_code_and_runs() {
        let params = small_profile();
        let mut m = build_machine(&params);
        let mut sink = NullSink;
        m.run_instructions(20_000, &mut sink).expect("runs");
        assert!(m.cpu.instructions() >= 20_000);
        assert!(m.cpu.now() > 20_000, "cycles advanced");
        // The workload actually exercises memory.
        let c = m.cpu.mem().counters();
        assert!(c.writes > 100, "writes: {}", c.writes);
        assert!(c.cache_miss_d > 0);
        assert!(c.ib_requests > 1000);
    }

    #[test]
    fn context_switches_happen() {
        let params = small_profile();
        let mut m = build_machine(&params);
        let mut sink = NullSink;
        // Run long enough for several timer ticks.
        m.run_instructions(60_000, &mut sink).expect("runs");
        assert!(
            m.interrupts_posted() > 3,
            "interrupts posted: {}",
            m.interrupts_posted()
        );
        // TB process flushes (from LDPCTX) leave their mark as misses.
        assert!(m.cpu.mem().counters().tb_misses() > 10);
    }

    #[test]
    fn build_is_deterministic() {
        let params = small_profile();
        let run = || {
            let mut m = build_machine(&params);
            let mut sink = NullSink;
            m.run_instructions(5_000, &mut sink).unwrap();
            (m.cpu.now(), m.cpu.pc())
        };
        assert_eq!(run(), run());
    }
}
