//! Process image construction: initialized data regions and PCBs.

use crate::codegen::DataLayout;
use crate::mix::ProfileParams;
use rand::rngs::StdRng;
use rand::Rng;
use vax_mem::AddressSpace;

/// Fractions of 2³² used as compare thresholds (mean ≈ 0.5 so the
/// simple-conditional taken rate lands near Table 2's 56 % including the
/// always-taken BRB/BRW).
pub(crate) const THRESHOLDS: [f64; 8] = [0.20, 0.35, 0.50, 0.50, 0.65, 0.80, 0.30, 0.70];

/// Probability a branch-bias longword has bit 0 set (`BLBS` taken rate,
/// Table 2 low-bit tests: 41 %).
const LOWBIT_P: f64 = 0.41;

/// Probability a flag-byte bit is set (bit-branch taken rate, Table 2:
/// 44 %).
const FLAGBIT_P: f64 = 0.38;

/// Build the initialized data region for one process.
pub fn build_data_image(
    layout: &DataLayout,
    params: &ProfileParams,
    rng: &mut StdRng,
    functions: &[u32],
) -> Vec<u8> {
    let mut data = vec![0u8; layout.total_len as usize];
    let put32 = |data: &mut Vec<u8>, off: u32, v: u32| {
        data[off as usize..off as usize + 4].copy_from_slice(&v.to_le_bytes());
    };

    // Threshold slots.
    for (i, &f) in THRESHOLDS.iter().enumerate() {
        let v = (f * 4_294_967_296.0) as u64 as u32;
        put32(&mut data, layout.thresholds_off + 4 * i as u32, v);
    }
    // Scalar area: small integers (bounded so arithmetic stays tame).
    let scalar_start = layout.thresholds_off + layout.threshold_count * 4;
    let mut off = scalar_start;
    while off + 4 <= layout.scalar_off + layout.scalar_len {
        put32(&mut data, off, rng.random_range(0..4096u32));
        off += 4;
    }
    // Flag bytes.
    for i in 0..layout.flags_len {
        let mut b = 0u8;
        for bit in 0..8 {
            if rng.random::<f64>() < FLAGBIT_P {
                b |= 1 << bit;
            }
        }
        data[(layout.flags_off + i) as usize] = b;
    }
    // Walker arenas: random bytes.
    for i in 0..layout.walker_len {
        data[(layout.walk_up_off + i) as usize] = rng.random();
        data[(layout.walk_down_off + i) as usize] = rng.random();
    }
    // String arena A: text with spaces (LOCC finds one quickly enough to
    // be realistic but not trivially).
    for i in 0..layout.string_len {
        let c = if rng.random::<f64>() < 0.15 {
            b' '
        } else {
            b'a' + (rng.random_range(0..26u32) as u8)
        };
        data[(layout.string_a_off + i) as usize] = c;
    }
    // Decimal slots: valid packed decimals.
    for s in 0..layout.decimal_slots {
        let digits = layout.decimal_digits;
        let cap = 10i128.saturating_pow(digits.min(27));
        let value = i128::from(rng.random_range(0..u64::MAX)) % (cap / 2).max(1);
        let value = if rng.random::<bool>() { value } else { -value };
        let bytes = encode_packed(value, digits);
        let base = (layout.decimal_off + 16 * s) as usize;
        data[base..base + bytes.len()].copy_from_slice(&bytes);
    }
    // Queue head: self-linked.
    let qhead_va = layout.base + layout.queue_off;
    put32(&mut data, layout.queue_off, qhead_va);
    put32(&mut data, layout.queue_off + 4, qhead_va);
    // Pointer table: addresses of aligned scalar longwords, concentrated
    // in the first 16 KB (pointer-chasing has locality too).
    for i in 0..layout.ptr_entries {
        let window = (16 * 1024).min(layout.scalar_len - layout.threshold_count * 4 - 4);
        let slot = rng.random_range(0..(window / 4).max(1));
        let va = layout.base + scalar_start + 4 * slot;
        put32(&mut data, layout.ptr_table_off + 4 * i, va);
    }
    // Function table.
    for (i, &f) in functions.iter().enumerate() {
        put32(&mut data, layout.func_table_off + 4 * i as u32, f);
    }
    // Branch-bias stream: uniform longwords with a biased low bit.
    let mut i = 0;
    while i + 4 <= layout.bias_len {
        let mut v: u32 = rng.random();
        v &= !1;
        if rng.random::<f64>() < LOWBIT_P {
            v |= 1;
        }
        put32(&mut data, layout.bias_off + i, v);
        i += 4;
    }
    let _ = params;
    data
}

/// Encode `value` as a VAX packed decimal of `digits` digits (matches the
/// CPU model's layout: MSD-first nibble pairs, sign in the last byte's
/// low nibble, 12 = plus / 13 = minus).
pub fn encode_packed(value: i128, digits: u32) -> Vec<u8> {
    let bytes = digits / 2 + 1;
    let total_digits = (bytes - 1) * 2 + 1;
    let negative = value < 0;
    let mut mag = value.unsigned_abs() % 10u128.saturating_pow(total_digits.min(38));
    let mut digs = vec![0u8; total_digits as usize];
    for d in digs.iter_mut() {
        *d = (mag % 10) as u8;
        mag /= 10;
    }
    let mut out = Vec::with_capacity(bytes as usize);
    for i in 0..bytes {
        if i == bytes - 1 {
            let sign = if negative { 13 } else { 12 };
            out.push((digs[0] << 4) | sign);
        } else {
            let hi = digs[(total_digits - 2 * i - 1) as usize];
            let lo = digs[(total_digits - 2 * i - 2) as usize];
            out.push((hi << 4) | lo);
        }
    }
    out
}

/// PCB field image (matches `vax-cpu`'s SVPCTX/LDPCTX layout).
pub fn build_pcb(space: &AddressSpace, ksp: u32, usp: u32) -> [u8; 88] {
    let mut pcb = [0u8; 88];
    let mut put = |off: usize, v: u32| {
        pcb[off..off + 4].copy_from_slice(&v.to_le_bytes());
    };
    put(0, ksp); // KSP
    put(4, usp); // USP
    put(56, usp); // AP
    put(60, usp); // FP
    put(72, space.p0br);
    put(76, space.p0lr);
    put(80, space.p1br);
    put(84, space.p1lr);
    pcb
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::DataLayout;
    use crate::profiles::{profile, WorkloadKind};
    use rand::SeedableRng;

    #[test]
    fn packed_encoding_matches_expected_nibbles() {
        // 123 in 3 digits: bytes [0x12, 0x3C].
        assert_eq!(encode_packed(123, 3), vec![0x12, 0x3C]);
        // -45 in 3 digits: [0x04, 0x5D].
        assert_eq!(encode_packed(-45, 3), vec![0x04, 0x5D]);
    }

    #[test]
    fn data_image_has_expected_structure() {
        let params = profile(WorkloadKind::TimesharingLight);
        let layout = DataLayout::for_profile(&params, 0x10000);
        let mut rng = StdRng::seed_from_u64(3);
        let funcs = [0x400u32, 0x500, 0x600];
        let img = build_data_image(&layout, &params, &mut rng, &funcs);
        assert_eq!(img.len(), layout.total_len as usize);
        // Queue head self-linked.
        let q = layout.queue_off as usize;
        let flink = u32::from_le_bytes(img[q..q + 4].try_into().unwrap());
        assert_eq!(flink, 0x10000 + layout.queue_off);
        // Function table entries.
        let f = layout.func_table_off as usize;
        let f0 = u32::from_le_bytes(img[f..f + 4].try_into().unwrap());
        assert_eq!(f0, 0x400);
        // Bias low-bit density is near 0.41.
        let mut set = 0u32;
        let mut n = 0u32;
        let mut i = layout.bias_off as usize;
        while i + 4 <= (layout.bias_off + layout.bias_len) as usize {
            set += u32::from(img[i] & 1);
            n += 1;
            i += 4;
        }
        let p = f64::from(set) / f64::from(n);
        assert!((0.36..0.46).contains(&p), "low-bit density {p}");
    }

    #[test]
    fn pcb_layout_round_trips() {
        let space = AddressSpace {
            p0br: 0x8000_1000,
            p0lr: 100,
            p1br: 0x8000_2000,
            p1lr: 40,
        };
        let pcb = build_pcb(&space, 0x4000_4FF8, 0x4000_4000);
        assert_eq!(
            u32::from_le_bytes(pcb[0..4].try_into().unwrap()),
            0x4000_4FF8
        );
        assert_eq!(u32::from_le_bytes(pcb[76..80].try_into().unwrap()), 100);
    }
}
