//! The five measured workloads (paper §2.2) plus the composite.

use crate::mix::{MixWeights, ModeWeights, ProfileParams};

/// Which of the paper's workloads to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// Research-group machine: general timesharing, ≈15 users, lightly
    /// loaded (text editing, program development, mail).
    TimesharingLight,
    /// CPU-development machine: ≈30 users plus circuit simulation and
    /// microcode development.
    TimesharingHeavy,
    /// RTE: educational environment, 40 simulated users doing program
    /// development and file manipulation.
    Educational,
    /// RTE: scientific/engineering, 40 users of scientific computation
    /// and program development.
    SciEng,
    /// RTE: commercial transaction processing, 32 users of database
    /// inquiries and updates.
    Commercial,
}

impl WorkloadKind {
    /// All five, in the paper's order.
    pub const ALL: [WorkloadKind; 5] = [
        WorkloadKind::TimesharingLight,
        WorkloadKind::TimesharingHeavy,
        WorkloadKind::Educational,
        WorkloadKind::SciEng,
        WorkloadKind::Commercial,
    ];

    /// Report label.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::TimesharingLight => "timesharing-light",
            WorkloadKind::TimesharingHeavy => "timesharing-heavy",
            WorkloadKind::Educational => "educational",
            WorkloadKind::SciEng => "sci-eng",
            WorkloadKind::Commercial => "commercial",
        }
    }

    /// Look a workload up by its [`name`](WorkloadKind::name) (the label
    /// CLI flags pass around).
    pub fn parse(name: &str) -> Option<WorkloadKind> {
        WorkloadKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// Build the parameter set for a workload.
pub fn profile(kind: WorkloadKind) -> ProfileParams {
    let base = ProfileParams {
        name: kind.name(),
        seed: 0x780_0000 + kind_index(kind),
        processes: 6,
        user_mix: MixWeights::timesharing(),
        modes: ModeWeights::composite(),
        functions_per_process: 16,
        slots_per_function: 30,
        loop_mean_iters: 14,
        string_mean_len: 72,
        decimal_mean_digits: 12,
        call_mask_regs: 4,
        scalar_bytes: 64 * 1024,
        timer_period: 64_000,
        terminal_users: 15,
        think_mean_cycles: 760_000,
        burst_mean_keys: 6,
        key_gap_cycles: 18_000,
        service_count: 6,
        service_slots: 40,
        ast_probability: 0.13,
        dma_period: 120,
        dma_burst: 16,
    };
    match kind {
        WorkloadKind::TimesharingLight => base,
        WorkloadKind::TimesharingHeavy => ProfileParams {
            processes: 10,
            terminal_users: 30,
            think_mean_cycles: 2_000_000,
            // Circuit simulation and microcode development: more float
            // and field work.
            user_mix: MixWeights {
                float_ops: 14.0,
                field_ops: 12.0,
                muldiv: 2.2,
                ..base.user_mix
            },
            scalar_bytes: 112 * 1024,
            ..base
        },
        WorkloadKind::Educational => ProfileParams {
            processes: 8,
            terminal_users: 40,
            think_mean_cycles: 2_600_000,
            // Program development: compiler-ish — calls, fields, strings.
            user_mix: MixWeights {
                calls_proc: 3.8,
                jsb_leaf: 9.0,
                field_ops: 11.0,
                char_ops: 0.7,
                float_ops: 3.0,
                ..base.user_mix
            },
            ..base
        },
        WorkloadKind::SciEng => ProfileParams {
            processes: 8,
            terminal_users: 40,
            think_mean_cycles: 2_600_000,
            user_mix: MixWeights {
                float_ops: 18.0,
                muldiv: 2.8,
                loop_construct: 1.2,
                char_ops: 0.25,
                decimal_ops: 0.0,
                ..base.user_mix
            },
            scalar_bytes: 96 * 1024,
            ..base
        },
        WorkloadKind::Commercial => ProfileParams {
            processes: 8,
            terminal_users: 32,
            think_mean_cycles: 2_100_000,
            // Transaction processing: decimal, strings, services, queues.
            user_mix: MixWeights {
                decimal_ops: 0.22,
                char_ops: 0.9,
                syscall: 1.6,
                queue_ops: 0.6,
                float_ops: 4.0,
                ..base.user_mix
            },
            service_slots: 55,
            ..base
        },
    }
}

fn kind_index(kind: WorkloadKind) -> u64 {
    WorkloadKind::ALL
        .iter()
        .position(|&k| k == kind)
        .expect("kind in ALL") as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_validate_and_are_distinct() {
        let mut seeds = std::collections::HashSet::new();
        for kind in WorkloadKind::ALL {
            let p = profile(kind);
            p.validate();
            assert!(seeds.insert(p.seed), "seeds must differ");
            assert_eq!(p.name, kind.name());
        }
    }

    #[test]
    fn scieng_leans_float_commercial_leans_decimal() {
        let sci = profile(WorkloadKind::SciEng);
        let com = profile(WorkloadKind::Commercial);
        assert!(sci.user_mix.float_ops > com.user_mix.float_ops);
        assert!(com.user_mix.decimal_ops > sci.user_mix.decimal_ops);
    }
}
