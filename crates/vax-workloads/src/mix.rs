//! Workload mix specifications: the calibration inputs.
//!
//! These distributions are *properties of the measured workloads*, taken
//! from the paper's Tables 1/2/4 and §3 prose (see DESIGN.md's
//! calibration policy). The simulator's *outputs* — Tables 3, 5, 6, 8, 9
//! and every stall/miss number — are never set here; they emerge.

use rand::rngs::StdRng;
use rand::Rng;

/// Relative weights for the code generator's instruction emitters.
///
/// Weights need not sum to anything in particular; they are normalized at
/// sampling time. Each emitter produces one "slot" — usually a single
/// instruction, sometimes a short idiom (push/pop pair, compare+branch).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixWeights {
    /// Data moves (`MOVx`, `CLRx`, `MOVZxx`, `PUSHL`, `MOVAL`).
    pub moves: f64,
    /// Simple integer arithmetic (`ADD/SUB/INC/DEC/ADWC`).
    pub arith: f64,
    /// Booleans and tests (`BIS/BIC/XOR/BIT/TST/CMP` without branch).
    pub logic: f64,
    /// Compare + conditional branch idiom (SimpleCond class).
    pub cond_branch: f64,
    /// Low-bit test branches (`BLBS`/`BLBC`).
    pub lowbit_branch: f64,
    /// A counted loop construct (the body is sampled recursively).
    pub loop_construct: f64,
    /// `CASEx` dispatch.
    pub case_dispatch: f64,
    /// Computed unconditional `JMP`.
    pub jmp_uncond: f64,
    /// `BSBx`/`JSB` to a local leaf + `RSB`.
    pub jsb_leaf: f64,
    /// `CALLS` through the function table (plus eventual `RET`).
    pub calls_proc: f64,
    /// `PUSHR`/`POPR` pair.
    pub pushr_popr: f64,
    /// Bit-field operations (`EXTZV/EXTV/INSV/FFS/CMPZV`).
    pub field_ops: f64,
    /// Bit branches (`BBS/BBC/BBSS/BBCC`).
    pub bit_branch: f64,
    /// F/D floating arithmetic.
    pub float_ops: f64,
    /// Integer multiply/divide (`MULL/DIVL/EMUL`).
    pub muldiv: f64,
    /// Character-string instruction.
    pub char_ops: f64,
    /// Packed-decimal instruction.
    pub decimal_ops: f64,
    /// Queue manipulation (`INSQUE`/`REMQUE` pair).
    pub queue_ops: f64,
    /// `CHMK` system-service request.
    pub syscall: f64,
}

impl MixWeights {
    /// A general-timesharing baseline (program development, editing,
    /// mail), tuned toward the composite Table 1.
    pub fn timesharing() -> MixWeights {
        MixWeights {
            moves: 30.0,
            arith: 15.0,
            logic: 5.5,
            cond_branch: 26.0,
            lowbit_branch: 6.0,
            loop_construct: 0.33,
            case_dispatch: 2.6,
            jmp_uncond: 1.0,
            jsb_leaf: 7.5,
            calls_proc: 3.6,
            pushr_popr: 0.80,
            field_ops: 10.0,
            bit_branch: 14.0,
            float_ops: 14.0,
            muldiv: 2.0,
            char_ops: 0.80,
            decimal_ops: 0.15,
            queue_ops: 2.60,
            syscall: 0.50,
        }
    }
}

/// Addressing-mode weights for operand sampling (Table 4 shape).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeWeights {
    /// Register mode.
    pub register: f64,
    /// Short literal (read operands only).
    pub literal: f64,
    /// Immediate.
    pub immediate: f64,
    /// Byte/word displacement off a base register.
    pub displacement: f64,
    /// Register deferred.
    pub reg_deferred: f64,
    /// Displacement deferred.
    pub disp_deferred: f64,
    /// Autoincrement (walker registers).
    pub autoincrement: f64,
    /// Autodecrement.
    pub autodecrement: f64,
    /// Autoincrement deferred (pointer-table walk).
    pub autoinc_deferred: f64,
    /// Absolute.
    pub absolute: f64,
    /// Probability that a memory operand is indexed.
    pub indexed: f64,
}

impl ModeWeights {
    /// The composite Table 4 shape.
    pub fn composite() -> ModeWeights {
        // These weights apply only to the *sampled* operands of generic
        // move/arithmetic slots; the many fixed register/literal operands
        // of the other emitters dilute them, so the memory modes are
        // overweighted here to land the overall Table 4 shape.
        ModeWeights {
            register: 20.0,
            literal: 3.0,
            immediate: 2.5,
            displacement: 24.0,
            reg_deferred: 52.0,
            disp_deferred: 5.5,
            autoincrement: 0.6,
            autodecrement: 1.8,
            autoinc_deferred: 1.1,
            absolute: 1.2,
            indexed: 0.70,
        }
    }
}

/// Everything the session builder needs to construct one workload.
#[derive(Debug, Clone)]
pub struct ProfileParams {
    /// Human-readable name (report labels).
    pub name: &'static str,
    /// RNG seed (whole build is deterministic in this).
    pub seed: u64,
    /// Number of timesharing processes.
    pub processes: u32,
    /// Instruction-mix weights for user code.
    pub user_mix: MixWeights,
    /// Addressing-mode weights.
    pub modes: ModeWeights,
    /// Functions per process program.
    pub functions_per_process: u32,
    /// Body slots per function (mean; sampled ±50 %).
    pub slots_per_function: u32,
    /// Mean loop iteration count ("about 10", Table 2 discussion).
    pub loop_mean_iters: u32,
    /// Mean character-string length in bytes (§5: 36–44).
    pub string_mean_len: u32,
    /// Mean packed-decimal digit count.
    pub decimal_mean_digits: u32,
    /// Mean registers saved by a procedure entry mask (§5: ≈8 pushes
    /// per CALL including linkage).
    pub call_mask_regs: u32,
    /// Scalar data area bytes per process (D-stream working set knob).
    pub scalar_bytes: u32,
    /// Interval-timer period in cycles (drives scheduling, Table 7).
    pub timer_period: u64,
    /// Simulated terminal users (RTE scripts).
    pub terminal_users: u32,
    /// Mean think time between keystroke bursts, in cycles.
    pub think_mean_cycles: u64,
    /// Keystrokes per burst (mean).
    pub burst_mean_keys: u32,
    /// Cycles between keystrokes within a burst.
    pub key_gap_cycles: u64,
    /// `CHMK` service codes available (kernel generates this many).
    pub service_count: u32,
    /// Mean slots in a kernel service body.
    pub service_slots: u32,
    /// Probability a terminal ISR posts a level-2 software interrupt.
    pub ast_probability: f64,
    /// Cycles between background DMA transactions on the SBI (disk and
    /// terminal controllers of a live system); 0 disables.
    pub dma_period: u64,
    /// SBI cycles one DMA transaction occupies.
    pub dma_burst: u64,
}

impl ProfileParams {
    /// Sanity checks; panics on nonsense parameters.
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("{e}");
        }
    }
}

/// Sample a geometric-ish count with the given mean (at least 1, capped).
pub(crate) fn sample_count(rng: &mut StdRng, mean: u32, cap: u32) -> u32 {
    let mean = mean.max(1) as f64;
    let u: f64 = rng.random::<f64>().max(1e-9);
    let v = (-u.ln() * mean).round() as u32;
    v.clamp(1, cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sample_count_respects_bounds_and_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mean_target = 10;
        let mut sum = 0u64;
        for _ in 0..n {
            let v = sample_count(&mut rng, mean_target, 64);
            assert!((1..=64).contains(&v));
            sum += u64::from(v);
        }
        let mean = sum as f64 / n as f64;
        assert!(
            (6.0..14.0).contains(&mean),
            "empirical mean {mean} near target"
        );
    }

    #[test]
    fn default_params_validate() {
        crate::profiles::profile(crate::profiles::WorkloadKind::TimesharingLight).validate();
    }
}
