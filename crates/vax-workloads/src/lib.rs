//! Synthetic VAX timesharing workloads for the characterization study.
//!
//! The paper measured five workloads — two live timesharing systems and
//! three Remote-Terminal-Emulator-driven synthetic environments
//! (educational, scientific/engineering, commercial) — all under VMS with
//! the Null process excluded (§2.2). This crate builds the moral
//! equivalent as *real machine images*:
//!
//! * [`codegen`] emits genuine VAX machine code per workload profile:
//!   function/loop/call structure, data-driven conditional branches,
//!   string/decimal/floating work, with instruction-mix and
//!   addressing-mode distributions as the calibration inputs;
//! * [`kernel`] builds a miniature VMS: SCB, interrupt service routines,
//!   a software-interrupt scheduler doing real `SVPCTX`/`LDPCTX` context
//!   switches, and `CHMK` system services;
//! * [`rte`] models the remote terminal emulator: scripted users whose
//!   keystrokes arrive as terminal interrupts;
//! * [`session`] assembles it all into a runnable [`Machine`].
//!
//! Everything is deterministic given the profile's seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codegen;
pub mod error;
pub mod kernel;
pub mod mix;
pub mod process;
pub mod profiles;
pub mod rte;
pub mod session;

pub use error::WorkloadError;
pub use mix::{MixWeights, ModeWeights, ProfileParams};
pub use profiles::{profile, WorkloadKind};
pub use rte::{RteConfig, RteSource};
pub use session::{
    build_machine, build_machine_with_config, plan_processes, try_build_machine,
    try_build_machine_with_config, Machine, ProcessImage, USER_STACK_BYTES, USER_STACK_PAGES,
};
