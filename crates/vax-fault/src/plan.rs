//! Fault plans: what to inject, and when.
//!
//! A plan is an ordered list of scheduled faults. Triggers are either a
//! cycle count (relative to the moment the engine is armed, so the same
//! plan injects at the same point of the *measured* region regardless of
//! warm-up length) or a µPC address hit count (the fault fires when the
//! machine has issued from that micro-address N times after arming).
//!
//! Plans have a stable text form so campaigns can store them next to
//! their histograms:
//!
//! ```text
//! fault-plan v1
//! cache-parity @cycle 1000
//! sbi-timeout @upc 0x100 hits 50
//! ```

use crate::FaultClass;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::fmt;

/// When a scheduled fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTrigger {
    /// After this many cycles have elapsed since the engine was armed.
    AtCycle(u64),
    /// When the micro-address has been issued from `hits` times since
    /// the engine was armed.
    AtMicroPc {
        /// The micro-address to watch.
        addr: u16,
        /// Number of issues from `addr` before firing (1 = first issue).
        hits: u32,
    },
}

/// One fault in a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledFault {
    /// What to inject.
    pub class: FaultClass,
    /// When to inject it.
    pub trigger: FaultTrigger,
}

/// Error parsing a fault-plan text.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlanError {
    /// Missing or wrong `fault-plan v1` header.
    BadHeader,
    /// A fault line did not parse.
    BadLine {
        /// 1-based line number.
        line: usize,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::BadHeader => write!(f, "missing `fault-plan v1` header"),
            PlanError::BadLine { line } => write!(f, "malformed fault at line {line}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// An ordered list of scheduled faults.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// The scheduled faults, in declaration order.
    pub faults: Vec<ScheduledFault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedule `fault` and return the plan (builder style).
    #[must_use]
    pub fn with(mut self, class: FaultClass, trigger: FaultTrigger) -> FaultPlan {
        self.faults.push(ScheduledFault { class, trigger });
        self
    }

    /// Is there anything to inject?
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// A seed-deterministic plan: `per_class` faults of each listed
    /// class, at cycle offsets drawn uniformly from `[window/10, window)`.
    /// The same `(classes, seed, per_class, window)` always builds the
    /// same plan — this is what `vax780 inject --faults ... --seed N`
    /// uses.
    pub fn seeded(classes: &[FaultClass], seed: u64, per_class: u32, window: u64) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let window = window.max(10);
        let mut plan = FaultPlan::new();
        for &class in classes {
            for _ in 0..per_class {
                let cycle = rng.random_range(window / 10..window);
                plan = plan.with(class, FaultTrigger::AtCycle(cycle));
            }
        }
        plan
    }

    /// Serialize to the `fault-plan v1` text form.
    pub fn render(&self) -> String {
        let mut out = String::from("fault-plan v1\n");
        for f in &self.faults {
            match f.trigger {
                FaultTrigger::AtCycle(c) => {
                    out.push_str(&format!("{} @cycle {}\n", f.class.name(), c));
                }
                FaultTrigger::AtMicroPc { addr, hits } => {
                    out.push_str(&format!(
                        "{} @upc {:#x} hits {}\n",
                        f.class.name(),
                        addr,
                        hits
                    ));
                }
            }
        }
        out
    }

    /// Parse the text form.
    ///
    /// # Errors
    ///
    /// [`PlanError`] on a missing header or malformed fault line.
    pub fn parse(text: &str) -> Result<FaultPlan, PlanError> {
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some("fault-plan v1") {
            return Err(PlanError::BadHeader);
        }
        let mut plan = FaultPlan::new();
        for (i, raw) in lines.enumerate() {
            let line = i + 2;
            let raw = raw.trim();
            if raw.is_empty() || raw.starts_with('#') {
                continue;
            }
            let mut parts = raw.split_ascii_whitespace();
            let bad = || PlanError::BadLine { line };
            let class = parts.next().and_then(FaultClass::parse).ok_or_else(bad)?;
            let trigger = match parts.next().ok_or_else(bad)? {
                "@cycle" => {
                    let c = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                    FaultTrigger::AtCycle(c)
                }
                "@upc" => {
                    let a = parts.next().ok_or_else(bad)?;
                    let a = a.strip_prefix("0x").unwrap_or(a);
                    let addr = u16::from_str_radix(a, 16).map_err(|_| bad())?;
                    if parts.next() != Some("hits") {
                        return Err(bad());
                    }
                    let hits: u32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                    if hits == 0 {
                        return Err(bad());
                    }
                    FaultTrigger::AtMicroPc { addr, hits }
                }
                _ => return Err(bad()),
            };
            if parts.next().is_some() {
                return Err(bad());
            }
            plan = plan.with(class, trigger);
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_text_round_trips() {
        let plan = FaultPlan::new()
            .with(FaultClass::CacheParity, FaultTrigger::AtCycle(1000))
            .with(
                FaultClass::SbiTimeout,
                FaultTrigger::AtMicroPc {
                    addr: 0x100,
                    hits: 50,
                },
            );
        let text = plan.render();
        assert_eq!(FaultPlan::parse(&text).unwrap(), plan);
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let classes = [FaultClass::CacheParity, FaultClass::TbCorrupt];
        let a = FaultPlan::seeded(&classes, 780, 3, 10_000);
        let b = FaultPlan::seeded(&classes, 780, 3, 10_000);
        assert_eq!(a, b);
        assert_eq!(a.faults.len(), 6);
        let c = FaultPlan::seeded(&classes, 781, 3, 10_000);
        assert_ne!(a, c, "different seeds place faults differently");
    }

    #[test]
    fn parse_rejects_malformed_plans() {
        assert_eq!(FaultPlan::parse("nope"), Err(PlanError::BadHeader));
        assert_eq!(
            FaultPlan::parse("fault-plan v1\nbogus @cycle 5"),
            Err(PlanError::BadLine { line: 2 })
        );
        assert_eq!(
            FaultPlan::parse("fault-plan v1\ncache-parity @when 5"),
            Err(PlanError::BadLine { line: 2 })
        );
        assert_eq!(
            FaultPlan::parse("fault-plan v1\ncache-parity @upc 0x10 hits 0"),
            Err(PlanError::BadLine { line: 2 })
        );
    }

    #[test]
    fn parse_tolerates_comments_and_blanks() {
        let plan = FaultPlan::parse("fault-plan v1\n# comment\n\ntb-corrupt @cycle 7\n").unwrap();
        assert_eq!(plan.faults.len(), 1);
    }
}
