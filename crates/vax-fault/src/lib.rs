//! Deterministic fault injection for the VAX-11/780 model.
//!
//! The real 780 did not only execute the happy path: cache parity errors,
//! SBI timeouts, and translation-buffer corruption all trapped to
//! machine-check microcode, and those recovery cycles were part of the
//! cycle budget Emer & Clark's monitor attributed. This crate supplies
//! the *injection* half of reproducing that behavior: a [`FaultPlan`] of
//! scheduled faults — keyed to cycle counts or µPC addresses — and a
//! [`FaultEngine`] that the memory subsystem polls through the
//! [`FaultHook`] trait. The CPU model owns the *recovery* half (the
//! machine-check microcode paths); the split keeps this crate a leaf with
//! no simulator dependencies.
//!
//! Everything here is deterministic: the same plan (or the same seed)
//! produces the same fault schedule, so an injected campaign is exactly
//! reproducible and its instruments reconcile bit-for-bit across runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod plan;

pub use engine::{FaultEngine, FaultHook, FiredFault};
pub use plan::{FaultPlan, FaultTrigger, PlanError, ScheduledFault};

use std::fmt;

/// The modeled 780 fault classes. Each corresponds to a hardware error
/// the real machine survived through machine-check microcode; the
/// recovery cycle costs are the model's stand-ins for the per-class
/// microroutine lengths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultClass {
    /// Cache tag/data parity error: the block cannot be trusted, the
    /// recovery microcode flushes the cache and re-fetches from memory.
    CacheParity,
    /// Translation-buffer entry corruption: recovery invalidates the TB
    /// and lets the miss microcode rebuild it.
    TbCorrupt,
    /// SBI read timeout: a transfer never completed; the SBI is held
    /// busy while the recovery microcode retries the transaction.
    SbiTimeout,
    /// Write-buffer error: the buffered longword is suspect; recovery
    /// forces the buffer to drain before accepting new writes.
    WriteBufferError,
    /// Control-store bit flip: a microword failed parity; recovery
    /// re-reads the backup copy (pure cycle burn, no memory effect).
    ControlStoreBitFlip,
}

impl FaultClass {
    /// All fault classes, in taxonomy order.
    pub const ALL: [FaultClass; 5] = [
        FaultClass::CacheParity,
        FaultClass::TbCorrupt,
        FaultClass::SbiTimeout,
        FaultClass::WriteBufferError,
        FaultClass::ControlStoreBitFlip,
    ];

    /// Stable index 0–4.
    pub const fn index(self) -> usize {
        match self {
            FaultClass::CacheParity => 0,
            FaultClass::TbCorrupt => 1,
            FaultClass::SbiTimeout => 2,
            FaultClass::WriteBufferError => 3,
            FaultClass::ControlStoreBitFlip => 4,
        }
    }

    /// Canonical name (used in plans, reports, and the CLI).
    pub const fn name(self) -> &'static str {
        match self {
            FaultClass::CacheParity => "cache-parity",
            FaultClass::TbCorrupt => "tb-corrupt",
            FaultClass::SbiTimeout => "sbi-timeout",
            FaultClass::WriteBufferError => "write-buffer",
            FaultClass::ControlStoreBitFlip => "cs-bit-flip",
        }
    }

    /// Parse a class name. Accepts the canonical names plus the short
    /// aliases the CLI documents (`parity`, `tb`, `sbi`, `wbuf`, `cs`).
    pub fn parse(s: &str) -> Option<FaultClass> {
        match s {
            "cache-parity" | "parity" => Some(FaultClass::CacheParity),
            "tb-corrupt" | "tb" => Some(FaultClass::TbCorrupt),
            "sbi-timeout" | "sbi" => Some(FaultClass::SbiTimeout),
            "write-buffer" | "wbuf" => Some(FaultClass::WriteBufferError),
            "cs-bit-flip" | "cs" => Some(FaultClass::ControlStoreBitFlip),
            _ => None,
        }
    }

    /// Compute cycles the machine-check recovery microroutine burns for
    /// this class (the body length; the entry and abort cycles are
    /// charged separately by the CPU model). The values are scaled to
    /// the model's other service routines: comparable to an interrupt
    /// service (30 body cycles) and longer than a TB miss fill.
    pub const fn recovery_body_cycles(self) -> u32 {
        match self {
            FaultClass::CacheParity => 18,
            FaultClass::TbCorrupt => 14,
            FaultClass::SbiTimeout => 25,
            FaultClass::WriteBufferError => 12,
            FaultClass::ControlStoreBitFlip => 30,
        }
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_indices_are_stable_and_names_round_trip() {
        for (i, &c) in FaultClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(FaultClass::parse(c.name()), Some(c));
            assert!(c.recovery_body_cycles() > 0);
        }
        assert_eq!(FaultClass::parse("parity"), Some(FaultClass::CacheParity));
        assert_eq!(FaultClass::parse("bogus"), None);
    }
}
