//! The fault engine: arms a plan and decides, cycle by cycle, when a
//! scheduled fault becomes pending.

use crate::{FaultClass, FaultPlan, FaultTrigger};
use std::collections::VecDeque;

/// The hook the memory subsystem owns and the CPU polls. Object-safe so
/// the simulator does not depend on the engine type (tests can supply
/// their own schedules). `Send` because campaign workers build machines
/// inside pool threads; `Debug` so the owning subsystem stays derivable.
pub trait FaultHook: Send + std::fmt::Debug {
    /// Start (or restart) the schedule: triggers are interpreted
    /// relative to `now` from here on. Called at the measurement
    /// boundary so `@cycle` offsets land inside the measured region.
    fn arm(&mut self, now: u64);

    /// Observe one µPC issue (drives `@upc` triggers). Called from the
    /// CPU's microcycle loop only while a hook is installed.
    fn observe_issue(&mut self, upc: u16);

    /// Has any trigger matured by cycle `now`? Returns at most one
    /// fault per call; the CPU polls at instruction boundaries, so a
    /// matured fault is latched here until the machine can take it.
    fn poll(&mut self, now: u64) -> Option<FaultClass>;

    /// The log of faults actually taken (class, cycle the CPU accepted
    /// it at). [`FaultHook::record_taken`] appends to this.
    fn fired(&self) -> Vec<FiredFault>;

    /// The CPU reports back the cycle at which it accepted a polled
    /// fault (the machine-check entry cycle).
    fn record_taken(&mut self, class: FaultClass, at_cycle: u64);
}

/// One fault the machine actually took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FiredFault {
    /// The injected class.
    pub class: FaultClass,
    /// Cycle at which the machine-check microcode was entered.
    pub at_cycle: u64,
}

#[derive(Debug, Clone)]
struct Armed {
    class: FaultClass,
    trigger: FaultTrigger,
    /// For `@upc` triggers: issues from the address seen so far.
    seen: u32,
    spent: bool,
}

/// The standard [`FaultHook`]: executes a [`FaultPlan`] deterministically.
#[derive(Debug, Clone, Default)]
pub struct FaultEngine {
    scheduled: Vec<Armed>,
    pending: VecDeque<FaultClass>,
    fired: Vec<FiredFault>,
    base_cycle: u64,
    armed: bool,
}

impl FaultEngine {
    /// An engine that will execute `plan` once armed.
    pub fn new(plan: &FaultPlan) -> FaultEngine {
        FaultEngine {
            scheduled: plan
                .faults
                .iter()
                .map(|f| Armed {
                    class: f.class,
                    trigger: f.trigger,
                    seen: 0,
                    spent: false,
                })
                .collect(),
            pending: VecDeque::new(),
            fired: Vec::new(),
            base_cycle: 0,
            armed: false,
        }
    }

    /// Faults scheduled but not yet matured.
    pub fn remaining(&self) -> usize {
        self.scheduled.iter().filter(|a| !a.spent).count()
    }
}

impl FaultHook for FaultEngine {
    fn arm(&mut self, now: u64) {
        self.base_cycle = now;
        self.armed = true;
        for a in &mut self.scheduled {
            a.seen = 0;
            a.spent = false;
        }
        self.pending.clear();
        self.fired.clear();
    }

    fn observe_issue(&mut self, upc: u16) {
        if !self.armed {
            return;
        }
        for a in &mut self.scheduled {
            if a.spent {
                continue;
            }
            if let FaultTrigger::AtMicroPc { addr, hits } = a.trigger {
                if addr == upc {
                    a.seen += 1;
                    if a.seen >= hits {
                        a.spent = true;
                        self.pending.push_back(a.class);
                    }
                }
            }
        }
    }

    fn poll(&mut self, now: u64) -> Option<FaultClass> {
        if !self.armed {
            return None;
        }
        let elapsed = now.saturating_sub(self.base_cycle);
        for a in &mut self.scheduled {
            if a.spent {
                continue;
            }
            if let FaultTrigger::AtCycle(c) = a.trigger {
                if elapsed >= c {
                    a.spent = true;
                    self.pending.push_back(a.class);
                }
            }
        }
        self.pending.pop_front()
    }

    fn fired(&self) -> Vec<FiredFault> {
        self.fired.clone()
    }

    fn record_taken(&mut self, class: FaultClass, at_cycle: u64) {
        self.fired.push(FiredFault { class, at_cycle });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_triggers_mature_in_order() {
        let plan = FaultPlan::new()
            .with(FaultClass::CacheParity, FaultTrigger::AtCycle(100))
            .with(FaultClass::SbiTimeout, FaultTrigger::AtCycle(50));
        let mut e = FaultEngine::new(&plan);
        e.arm(1_000);
        assert_eq!(e.poll(1_010), None, "nothing matured yet");
        // Both matured by 1_200; plan order within a single poll batch.
        assert_eq!(e.poll(1_200), Some(FaultClass::CacheParity));
        assert_eq!(e.poll(1_200), Some(FaultClass::SbiTimeout));
        assert_eq!(e.poll(2_000), None, "each fault fires once");
        assert_eq!(e.remaining(), 0);
    }

    #[test]
    fn upc_triggers_count_hits() {
        let plan = FaultPlan::new().with(
            FaultClass::TbCorrupt,
            FaultTrigger::AtMicroPc {
                addr: 0x42,
                hits: 3,
            },
        );
        let mut e = FaultEngine::new(&plan);
        e.arm(0);
        e.observe_issue(0x42);
        e.observe_issue(0x41);
        e.observe_issue(0x42);
        assert_eq!(e.poll(10), None, "two hits of three");
        e.observe_issue(0x42);
        assert_eq!(e.poll(11), Some(FaultClass::TbCorrupt));
    }

    #[test]
    fn unarmed_engine_is_inert_and_rearm_resets() {
        let plan = FaultPlan::new().with(FaultClass::CacheParity, FaultTrigger::AtCycle(0));
        let mut e = FaultEngine::new(&plan);
        assert_eq!(e.poll(u64::MAX), None, "not armed");
        e.observe_issue(0x0);
        e.arm(500);
        assert_eq!(e.poll(500), Some(FaultClass::CacheParity));
        e.record_taken(FaultClass::CacheParity, 501);
        assert_eq!(e.fired().len(), 1);
        e.arm(600);
        assert_eq!(e.fired().len(), 0, "re-arming clears the log");
        assert_eq!(e.poll(600), Some(FaultClass::CacheParity), "schedule reset");
    }
}
