//! Bake build provenance into the binary for the host stamp: rustc
//! version, git revision, cargo profile and opt-level. Every probe and
//! bench artifact carries these so two artifacts are comparable only
//! when their toolchains are.

use std::process::Command;

fn run(cmd: &str, args: &[&str]) -> Option<String> {
    let out = Command::new(cmd).args(args).output().ok()?;
    if !out.status.success() {
        return None;
    }
    let s = String::from_utf8(out.stdout).ok()?;
    let s = s.trim().to_string();
    if s.is_empty() {
        None
    } else {
        Some(s)
    }
}

fn main() {
    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".to_string());
    let version = run(&rustc, &["--version"]).unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=VAX_RUSTC_VERSION={version}");

    let rev =
        run("git", &["rev-parse", "--short=12", "HEAD"]).unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=VAX_GIT_REV={rev}");

    let profile = std::env::var("PROFILE").unwrap_or_else(|_| "unknown".to_string());
    println!("cargo:rustc-env=VAX_BUILD_PROFILE={profile}");
    let opt = std::env::var("OPT_LEVEL").unwrap_or_else(|_| "unknown".to_string());
    println!("cargo:rustc-env=VAX_OPT_LEVEL={opt}");

    // Re-stamp when the checked-out revision moves.
    println!("cargo:rerun-if-changed=../../.git/HEAD");
}
