//! Fixed-capacity event storage.
//!
//! The trace must never grow without bound — a long run at one event per
//! cycle would exhaust memory — so events land in a ring: once full, the
//! oldest record is overwritten and a drop counter increments. Aggregate
//! counters (in [`crate::counters`]) are unaffected by drops; only the
//! per-event record is lossy.

use crate::event::TraceEvent;

/// Ring buffer over [`TraceEvent`], oldest-first iteration.
#[derive(Debug, Clone)]
pub struct RingBuffer {
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Index of the oldest element once the ring has wrapped.
    head: usize,
    dropped: u64,
}

impl RingBuffer {
    /// An empty ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> RingBuffer {
        let capacity = capacity.max(1);
        RingBuffer {
            buf: Vec::with_capacity(capacity.min(1 << 16)),
            capacity,
            head: 0,
            dropped: 0,
        }
    }

    /// Append an event, overwriting the oldest if full.
    #[inline]
    pub fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head += 1;
            if self.head == self.capacity {
                self.head = 0;
            }
            self.dropped += 1;
        }
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Capacity the ring was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many events were overwritten (0 means the record is complete).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }

    /// Drop all retained events (the drop counter resets too).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{TraceEvent, TraceEventKind};
    use vax_ucode::MicroAddr;

    fn ev(n: u64) -> TraceEvent {
        TraceEvent {
            now: n,
            kind: TraceEventKind::MicroIssue {
                addr: MicroAddr::new((n % 100) as u16),
            },
        }
    }

    #[test]
    fn fills_then_wraps_oldest_first() {
        let mut r = RingBuffer::new(4);
        for n in 0..6 {
            r.push(ev(n));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 2);
        let order: Vec<u64> = r.iter().map(|e| e.now).collect();
        assert_eq!(order, vec![2, 3, 4, 5]);
    }

    #[test]
    fn below_capacity_keeps_everything() {
        let mut r = RingBuffer::new(10);
        for n in 0..7 {
            r.push(ev(n));
        }
        assert_eq!(r.dropped(), 0);
        let order: Vec<u64> = r.iter().map(|e| e.now).collect();
        assert_eq!(order, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn wrap_twice() {
        let mut r = RingBuffer::new(3);
        for n in 0..9 {
            r.push(ev(n));
        }
        assert_eq!(r.dropped(), 6);
        let order: Vec<u64> = r.iter().map(|e| e.now).collect();
        assert_eq!(order, vec![6, 7, 8]);
    }

    #[test]
    fn clear_resets() {
        let mut r = RingBuffer::new(2);
        for n in 0..5 {
            r.push(ev(n));
        }
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
        r.push(ev(9));
        assert_eq!(r.iter().map(|e| e.now).collect::<Vec<_>>(), vec![9]);
    }
}
