//! Host-side self-metrics: where does the *simulator* spend time?
//!
//! The paper measured a real machine; we measure a model of it, and as
//! workloads scale the model's own speed becomes an engineering
//! quantity. [`SelfMetrics`] aggregates wall time per workload phase
//! together with the simulated cycles and retired instructions in that
//! phase, yielding simulated-cycles-per-second and
//! instructions-per-second. [`SpanSet`] is a lighter companion for
//! ad-hoc named spans (e.g. per-crate costs: run loop vs analysis vs
//! export).

use std::fmt;
use std::time::{Duration, Instant};

/// Wall-time and simulated-work totals for one named phase.
#[derive(Debug, Clone)]
pub struct PhaseMetrics {
    /// Phase name (e.g. "warmup", "measure", "export").
    pub name: String,
    /// Host wall time spent in the phase.
    pub wall: Duration,
    /// Simulated cycles elapsed during the phase.
    pub cycles: u64,
    /// Instructions retired during the phase.
    pub instructions: u64,
}

impl PhaseMetrics {
    /// Simulated cycles per host second (0 if no time elapsed).
    pub fn cycles_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.cycles as f64 / secs
        } else {
            0.0
        }
    }

    /// Instructions retired per host second (0 if no time elapsed).
    pub fn instructions_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.instructions as f64 / secs
        } else {
            0.0
        }
    }

    /// One JSON object: `{"name":…,"wall_us":…,"cycles":…,
    /// "instructions":…}`. Rates are derivable and host-dependent, so
    /// only the raw totals are exported.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"wall_us\":{},\"cycles\":{},\"instructions\":{}}}",
            json_escape(&self.name),
            self.wall.as_micros(),
            self.cycles,
            self.instructions
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Collected self-metrics for a whole run.
#[derive(Debug, Clone, Default)]
pub struct SelfMetrics {
    phases: Vec<PhaseMetrics>,
    open: Option<(String, Instant, u64, u64)>,
}

impl SelfMetrics {
    /// An empty recorder.
    pub fn new() -> SelfMetrics {
        SelfMetrics::default()
    }

    /// Begin a phase. `cycles` / `instructions` are the machine's
    /// running totals at entry; the phase records the deltas. An
    /// unfinished previous phase is closed first.
    pub fn begin_phase(&mut self, name: &str, cycles: u64, instructions: u64) {
        if self.open.is_some() {
            self.end_phase(cycles, instructions);
        }
        self.open = Some((name.to_string(), Instant::now(), cycles, instructions));
    }

    /// End the open phase given the machine's running totals at exit.
    pub fn end_phase(&mut self, cycles: u64, instructions: u64) {
        if let Some((name, start, c0, i0)) = self.open.take() {
            self.phases.push(PhaseMetrics {
                name,
                wall: start.elapsed(),
                cycles: cycles.saturating_sub(c0),
                instructions: instructions.saturating_sub(i0),
            });
        }
    }

    /// Completed phases, in order.
    pub fn phases(&self) -> &[PhaseMetrics] {
        &self.phases
    }

    /// Total wall time across completed phases.
    pub fn total_wall(&self) -> Duration {
        self.phases.iter().map(|p| p.wall).sum()
    }

    /// Total simulated cycles across completed phases.
    pub fn total_cycles(&self) -> u64 {
        self.phases.iter().map(|p| p.cycles).sum()
    }

    /// One JSON object with the completed phases:
    /// `{"total_wall_us":…,"phases":[…]}` — for streaming a worker's
    /// self-metrics over a wire protocol.
    pub fn to_json(&self) -> String {
        let phases: Vec<String> = self.phases.iter().map(PhaseMetrics::to_json).collect();
        format!(
            "{{\"total_wall_us\":{},\"phases\":[{}]}}",
            self.total_wall().as_micros(),
            phases.join(",")
        )
    }
}

impl fmt::Display for SelfMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<16} {:>12} {:>12} {:>12} {:>14} {:>14}",
            "phase", "wall", "cycles", "instrs", "cyc/s", "instr/s"
        )?;
        for p in &self.phases {
            writeln!(
                f,
                "{:<16} {:>12.3?} {:>12} {:>12} {:>14.0} {:>14.0}",
                p.name,
                p.wall,
                p.cycles,
                p.instructions,
                p.cycles_per_sec(),
                p.instructions_per_sec()
            )?;
        }
        write!(f, "total wall {:.3?}", self.total_wall())
    }
}

/// Accumulating named span timer: `let _g = spans.enter("export");`
/// charges the guard's lifetime to the "export" bucket.
#[derive(Debug, Default)]
pub struct SpanSet {
    totals: Vec<(String, Duration, u64)>,
}

impl SpanSet {
    /// An empty span set.
    pub fn new() -> SpanSet {
        SpanSet::default()
    }

    /// Start a span; time accrues until the guard drops.
    pub fn enter(&mut self, name: &'static str) -> SpanGuard<'_> {
        SpanGuard {
            set: self,
            name,
            start: Instant::now(),
        }
    }

    /// Directly add an observed duration to a bucket.
    pub fn add(&mut self, name: &str, elapsed: Duration) {
        if let Some(slot) = self.totals.iter_mut().find(|(n, _, _)| n == name) {
            slot.1 += elapsed;
            slot.2 += 1;
        } else {
            self.totals.push((name.to_string(), elapsed, 1));
        }
    }

    /// `(name, total elapsed, enter count)` per bucket, insertion order.
    pub fn totals(&self) -> &[(String, Duration, u64)] {
        &self.totals
    }
}

impl fmt::Display for SpanSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<24} {:>12} {:>8}", "span", "total", "count")?;
        for (name, total, count) in &self.totals {
            writeln!(f, "{name:<24} {total:>12.3?} {count:>8}")?;
        }
        Ok(())
    }
}

/// RAII guard from [`SpanSet::enter`].
#[derive(Debug)]
pub struct SpanGuard<'a> {
    set: &'a mut SpanSet,
    name: &'static str,
    start: Instant,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        self.set.add(self.name, elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_record_deltas() {
        let mut m = SelfMetrics::new();
        m.begin_phase("warmup", 0, 0);
        m.end_phase(1_000, 100);
        m.begin_phase("measure", 1_000, 100);
        m.end_phase(11_000, 1_100);
        let phases = m.phases();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].cycles, 1_000);
        assert_eq!(phases[1].cycles, 10_000);
        assert_eq!(phases[1].instructions, 1_000);
        assert_eq!(m.total_cycles(), 11_000);
    }

    #[test]
    fn reopening_closes_previous_phase() {
        let mut m = SelfMetrics::new();
        m.begin_phase("a", 0, 0);
        m.begin_phase("b", 500, 50);
        m.end_phase(700, 60);
        assert_eq!(m.phases().len(), 2);
        assert_eq!(m.phases()[0].name, "a");
        assert_eq!(m.phases()[0].cycles, 500);
        assert_eq!(m.phases()[1].cycles, 200);
    }

    #[test]
    fn rates_are_finite_and_positive() {
        let p = PhaseMetrics {
            name: "x".into(),
            wall: Duration::from_millis(10),
            cycles: 50_000,
            instructions: 5_000,
        };
        assert!(p.cycles_per_sec() > 0.0);
        assert!(p.instructions_per_sec() > 0.0);
        let display = format!(
            "{}",
            SelfMetrics {
                phases: vec![p],
                open: None
            }
        );
        assert!(display.contains("cyc/s"));
    }

    #[test]
    fn metrics_export_valid_json() {
        let mut m = SelfMetrics::new();
        m.begin_phase("job \"a\"", 0, 0);
        m.end_phase(1_000, 100);
        let json = m.to_json();
        assert!(json.starts_with("{\"total_wall_us\":"));
        assert!(json.contains("\\\"a\\\""), "{json}");
        assert!(json.contains("\"cycles\":1000"), "{json}");
        assert!(json.contains("\"instructions\":100"), "{json}");
    }

    #[test]
    fn span_guard_accumulates() {
        let mut spans = SpanSet::new();
        {
            let _g = spans.enter("work");
        }
        {
            let _g = spans.enter("work");
        }
        {
            let _g = spans.enter("other");
        }
        let totals = spans.totals();
        assert_eq!(totals.len(), 2);
        assert_eq!(totals[0].0, "work");
        assert_eq!(totals[0].2, 2);
        assert_eq!(totals[1].2, 1);
        assert!(format!("{spans}").contains("work"));
    }
}
