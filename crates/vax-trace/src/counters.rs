//! Lossless aggregate counts.
//!
//! The ring buffer may drop old events; these counters never do. They
//! are the quantities the reconciliation checker compares against the
//! histogram board and `HwCounters` — in particular `issues` and
//! `stall_cycles`, whose sum is the tracer's derived cycle clock.

use upc_monitor::events::{MachineEvent, MemStream, StallCause};

/// Aggregated event totals for one traced run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCounters {
    /// Microinstructions issued (one cycle each).
    pub issues: u64,
    /// Stall cycles charged (all causes).
    pub stall_cycles: u64,
    /// Stall cycles by cause: operand reads.
    pub read_stall_cycles: u64,
    /// Stall cycles by cause: writes into a full buffer.
    pub write_stall_cycles: u64,
    /// Stall cycles by cause: instruction buffer empty.
    pub ib_stall_cycles: u64,
    /// Opcode bytes decoded (IRD1 entries).
    pub decodes: u64,
    /// Instructions retired.
    pub retires: u64,
    /// Operand specifiers evaluated (summed over retires).
    pub specifiers: u64,
    /// Cache hits, I-stream.
    pub cache_hit_i: u64,
    /// Cache misses, I-stream.
    pub cache_miss_i: u64,
    /// Cache hits, D-stream.
    pub cache_hit_d: u64,
    /// Cache misses, D-stream.
    pub cache_miss_d: u64,
    /// TB misses, I-stream.
    pub tb_miss_i: u64,
    /// TB misses, D-stream.
    pub tb_miss_d: u64,
    /// TB misses that also missed on the system PTE (double misses).
    pub tb_double_misses: u64,
    /// Writes accepted into the write buffer.
    pub writes_buffered: u64,
    /// Highest write-buffer occupancy observed.
    pub write_buffer_peak: u8,
    /// SBI read (block-fill) transactions.
    pub sbi_reads: u64,
    /// SBI write transactions.
    pub sbi_writes: u64,
    /// Interrupts taken.
    pub interrupts: u64,
    /// Exceptions dispatched.
    pub exceptions: u64,
    /// LDPCTX context switches.
    pub context_switches: u64,
    /// Machine checks taken (injected faults).
    pub machine_checks: u64,
}

impl TraceCounters {
    /// The field names reported by [`to_pairs`](TraceCounters::to_pairs),
    /// in order, as a static list (for taxonomy audits).
    pub const FIELD_NAMES: &'static [&'static str] = &[
        "issues",
        "stall_cycles",
        "read_stall_cycles",
        "write_stall_cycles",
        "ib_stall_cycles",
        "decodes",
        "retires",
        "specifiers",
        "cache_hit_i",
        "cache_miss_i",
        "cache_hit_d",
        "cache_miss_d",
        "tb_miss_i",
        "tb_miss_d",
        "tb_double_misses",
        "writes_buffered",
        "write_buffer_peak",
        "sbi_reads",
        "sbi_writes",
        "interrupts",
        "exceptions",
        "context_switches",
        "machine_checks",
    ];

    /// Total cycles implied by the aggregates: `issues + stall_cycles`.
    /// This must equal the histogram board's `total_cycles()` when both
    /// instruments watch the same run — the paper's two-instrument
    /// agreement, as an equation.
    pub fn total_cycles(&self) -> u64 {
        self.issues + self.stall_cycles
    }

    /// Fold one typed machine event into the aggregates.
    #[inline]
    pub fn apply(&mut self, event: MachineEvent) {
        match event {
            MachineEvent::Decode { .. } => self.decodes += 1,
            MachineEvent::Retire { specifiers, .. } => {
                self.retires += 1;
                self.specifiers += u64::from(specifiers);
            }
            MachineEvent::Stall { cause, cycles } => match cause {
                StallCause::Read => self.read_stall_cycles += u64::from(cycles),
                StallCause::Write => self.write_stall_cycles += u64::from(cycles),
                StallCause::Ib(_) => self.ib_stall_cycles += u64::from(cycles),
            },
            MachineEvent::CacheAccess { stream, hit } => {
                let slot = match (stream, hit) {
                    (MemStream::IFetch, true) => &mut self.cache_hit_i,
                    (MemStream::IFetch, false) => &mut self.cache_miss_i,
                    (MemStream::Data, true) => &mut self.cache_hit_d,
                    (MemStream::Data, false) => &mut self.cache_miss_d,
                };
                *slot += 1;
            }
            MachineEvent::TbMiss { stream, double } => {
                match stream {
                    MemStream::IFetch => self.tb_miss_i += 1,
                    MemStream::Data => self.tb_miss_d += 1,
                }
                if double {
                    self.tb_double_misses += 1;
                }
            }
            MachineEvent::WriteBuffer { occupancy } => {
                self.writes_buffered += 1;
                self.write_buffer_peak = self.write_buffer_peak.max(occupancy);
            }
            MachineEvent::Sbi { read } => {
                if read {
                    self.sbi_reads += 1;
                } else {
                    self.sbi_writes += 1;
                }
            }
            MachineEvent::InterruptEntry { .. } => self.interrupts += 1,
            MachineEvent::ExceptionEntry => self.exceptions += 1,
            MachineEvent::ContextSwitch { .. } => self.context_switches += 1,
            MachineEvent::MachineCheck { .. } => self.machine_checks += 1,
        }
    }

    /// `(name, value)` pairs for reporting, in a stable order.
    pub fn to_pairs(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("issues", self.issues),
            ("stall_cycles", self.stall_cycles),
            ("read_stall_cycles", self.read_stall_cycles),
            ("write_stall_cycles", self.write_stall_cycles),
            ("ib_stall_cycles", self.ib_stall_cycles),
            ("decodes", self.decodes),
            ("retires", self.retires),
            ("specifiers", self.specifiers),
            ("cache_hit_i", self.cache_hit_i),
            ("cache_miss_i", self.cache_miss_i),
            ("cache_hit_d", self.cache_hit_d),
            ("cache_miss_d", self.cache_miss_d),
            ("tb_miss_i", self.tb_miss_i),
            ("tb_miss_d", self.tb_miss_d),
            ("tb_double_misses", self.tb_double_misses),
            ("writes_buffered", self.writes_buffered),
            ("write_buffer_peak", u64::from(self.write_buffer_peak)),
            ("sbi_reads", self.sbi_reads),
            ("sbi_writes", self.sbi_writes),
            ("interrupts", self.interrupts),
            ("exceptions", self.exceptions),
            ("context_switches", self.context_switches),
            ("machine_checks", self.machine_checks),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vax_ucode::StallPoint;

    #[test]
    fn stall_causes_partition() {
        let mut c = TraceCounters::default();
        c.apply(MachineEvent::Stall {
            cause: StallCause::Read,
            cycles: 3,
        });
        c.apply(MachineEvent::Stall {
            cause: StallCause::Write,
            cycles: 2,
        });
        c.apply(MachineEvent::Stall {
            cause: StallCause::Ib(StallPoint::Decode),
            cycles: 5,
        });
        assert_eq!(c.read_stall_cycles, 3);
        assert_eq!(c.write_stall_cycles, 2);
        assert_eq!(c.ib_stall_cycles, 5);
    }

    #[test]
    fn cache_events_split_by_stream_and_outcome() {
        let mut c = TraceCounters::default();
        for (stream, hit, n) in [
            (MemStream::IFetch, true, 4),
            (MemStream::IFetch, false, 3),
            (MemStream::Data, true, 2),
            (MemStream::Data, false, 1),
        ] {
            for _ in 0..n {
                c.apply(MachineEvent::CacheAccess { stream, hit });
            }
        }
        assert_eq!(
            (c.cache_hit_i, c.cache_miss_i, c.cache_hit_d, c.cache_miss_d),
            (4, 3, 2, 1)
        );
    }

    #[test]
    fn write_buffer_peak_tracks_max() {
        let mut c = TraceCounters::default();
        for occ in [1u8, 3, 2] {
            c.apply(MachineEvent::WriteBuffer { occupancy: occ });
        }
        assert_eq!(c.writes_buffered, 3);
        assert_eq!(c.write_buffer_peak, 3);
    }

    #[test]
    fn field_names_match_to_pairs() {
        let names: Vec<&str> = TraceCounters::default()
            .to_pairs()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, TraceCounters::FIELD_NAMES);
    }

    #[test]
    fn pairs_cover_every_field() {
        // A reminder to extend to_pairs when adding fields: the struct
        // currently has 23 counters (the peak is reported as u64).
        assert_eq!(TraceCounters::default().to_pairs().len(), 23);
    }
}
