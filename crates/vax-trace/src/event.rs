//! Timestamped trace records.

use upc_monitor::MachineEvent;
use vax_ucode::MicroAddr;

/// What happened (without the timestamp).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A microinstruction issued at this µPC (one cycle).
    MicroIssue {
        /// Control-store address.
        addr: MicroAddr,
    },
    /// Stall cycles charged to the microinstruction at this µPC.
    MicroStall {
        /// Control-store address being stalled.
        addr: MicroAddr,
        /// Cycles lost.
        cycles: u32,
    },
    /// A typed machine event from the emission points (decode, retire,
    /// cache access, TB miss, SBI transaction, …).
    Machine(MachineEvent),
    /// A named phase boundary; the name lives in the tracer's intern
    /// table (see [`crate::Tracer::phase_name`]).
    Phase {
        /// Index into the tracer's phase-name table.
        name: u16,
        /// `true` at phase start, `false` at phase end.
        begin: bool,
    },
}

/// One record in the ring buffer: an event stamped with the derived
/// cycle clock at which it occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle number (tracer-derived clock).
    pub now: u64,
    /// The event.
    pub kind: TraceEventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_stays_compact() {
        // The ring holds hundreds of thousands of these.
        assert!(std::mem::size_of::<TraceEvent>() <= 32);
    }

    #[test]
    fn kinds_compare() {
        let a = TraceEventKind::MicroIssue {
            addr: MicroAddr::new(1),
        };
        let b = TraceEventKind::MicroIssue {
            addr: MicroAddr::new(1),
        };
        assert_eq!(a, b);
    }
}
