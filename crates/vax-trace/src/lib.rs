//! vax-trace: the simulator's second instrument.
//!
//! Emer & Clark attached **two** instruments to the 11/780: the µPC
//! histogram board (what `upc-monitor` reproduces) and a separate set of
//! hardware event counters for the cache/TB study. Their methodology
//! only worked because the instruments could be reconciled — total
//! cycles seen by one had to equal total cycles seen by the other. This
//! crate is that second instrument for the *simulator*: a typed,
//! low-overhead event tracer that attaches to the machine exactly like
//! the board does (a [`CycleSink`] driven from the cycle loop) and
//! records what the histogram cannot: opcodes, stall causes, cache and
//! TB outcomes per stream, write-buffer occupancy, SBI traffic, context
//! switches.
//!
//! Structure:
//!
//! - [`event`] — the timestamped record stored per event;
//! - [`ring`] — fixed-capacity ring buffer (oldest events drop first);
//! - [`counters`] — aggregation that never drops, whatever the ring does;
//! - [`Tracer`] — the [`CycleSink`] implementation tying them together,
//!   with its own derived cycle clock (`+1` per issue, `+n` per stall) —
//!   the clock *is* the reconciliation invariant: it must land exactly on
//!   the histogram's `issues + stalls`;
//! - [`export`] — JSONL and Chrome `trace_event` (Perfetto-loadable)
//!   writers, no external dependencies;
//! - [`metrics`] — host-side self-metrics (wall time per phase,
//!   simulated cycles/sec, instructions/sec, named span timings).
//!
//! Attaching both instruments at once uses the fan-out sink:
//!
//! ```
//! use upc_monitor::{CycleSink, HistogramBoard, Command};
//! use vax_trace::Tracer;
//! use vax_ucode::MicroAddr;
//!
//! let mut board = HistogramBoard::new();
//! board.execute(Command::Start);
//! let mut tracer = Tracer::with_capacity(1024);
//! {
//!     let mut tee = (&mut board, &mut tracer);
//!     tee.record_issue(MicroAddr::new(7));
//!     tee.record_stall(MicroAddr::new(7), 3);
//! }
//! assert_eq!(tracer.now(), u64::from(board.snapshot().total_cycles()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counters;
pub mod event;
pub mod export;
pub mod host;
pub mod metrics;
pub mod ring;
mod tracer;

pub use counters::TraceCounters;
pub use event::{TraceEvent, TraceEventKind};
pub use host::HostStamp;
pub use metrics::{PhaseMetrics, SelfMetrics, SpanSet};
pub use ring::RingBuffer;
pub use tracer::{Tracer, DEFAULT_CAPACITY};
