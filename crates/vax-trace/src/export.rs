//! Trace export: JSONL and Chrome `trace_event` JSON.
//!
//! Both writers are dependency-free (JSON is emitted by hand — the
//! workspace builds offline). The Chrome format loads directly in
//! Perfetto / `chrome://tracing`; one simulated cycle is mapped to one
//! microsecond of trace time.

use crate::event::TraceEventKind;
use crate::tracer::Tracer;
use std::io::{self, Write};
use upc_monitor::events::{MachineEvent, MemStream, StallCause};

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn stream_name(s: MemStream) -> &'static str {
    match s {
        MemStream::IFetch => "i",
        MemStream::Data => "d",
    }
}

/// Render one machine event's JSONL payload (everything after `"t"`).
fn machine_fields(ev: &MachineEvent, line: &mut String) {
    match *ev {
        MachineEvent::Decode { opcode } => {
            line.push_str(&format!(
                "\"ev\":\"decode\",\"opcode\":\"{}\"",
                opcode.mnemonic()
            ));
        }
        MachineEvent::Retire {
            opcode,
            pc,
            specifiers,
        } => {
            line.push_str(&format!(
                "\"ev\":\"retire\",\"opcode\":\"{}\",\"pc\":{pc},\"specs\":{specifiers}",
                opcode.mnemonic()
            ));
        }
        MachineEvent::Stall { cause, cycles } => {
            let cause_str = match cause {
                StallCause::Read => "read".to_string(),
                StallCause::Write => "write".to_string(),
                StallCause::Ib(point) => format!("ib:{point:?}"),
            };
            line.push_str(&format!(
                "\"ev\":\"stall\",\"cause\":\"{cause_str}\",\"cycles\":{cycles}"
            ));
        }
        MachineEvent::CacheAccess { stream, hit } => {
            line.push_str(&format!(
                "\"ev\":\"cache\",\"stream\":\"{}\",\"hit\":{hit}",
                stream_name(stream)
            ));
        }
        MachineEvent::TbMiss { stream, double } => {
            line.push_str(&format!(
                "\"ev\":\"tb_miss\",\"stream\":\"{}\",\"double\":{double}",
                stream_name(stream)
            ));
        }
        MachineEvent::WriteBuffer { occupancy } => {
            line.push_str(&format!(
                "\"ev\":\"write_buffer\",\"occupancy\":{occupancy}"
            ));
        }
        MachineEvent::Sbi { read } => {
            line.push_str(&format!(
                "\"ev\":\"sbi\",\"op\":\"{}\"",
                if read { "read" } else { "write" }
            ));
        }
        MachineEvent::InterruptEntry { ipl } => {
            line.push_str(&format!("\"ev\":\"interrupt\",\"ipl\":{ipl}"));
        }
        MachineEvent::ExceptionEntry => {
            line.push_str("\"ev\":\"exception\"");
        }
        MachineEvent::ContextSwitch { new_space } => {
            line.push_str(&format!("\"ev\":\"context_switch\",\"space\":{new_space}"));
        }
        MachineEvent::MachineCheck { class } => {
            line.push_str(&format!("\"ev\":\"machine_check\",\"class\":\"{class}\""));
        }
    }
}

/// Write the trace as JSON Lines: one event object per line, newest
/// last, then one `"summary"` object carrying the lossless counters.
pub fn write_jsonl<W: Write>(tracer: &Tracer, w: &mut W) -> io::Result<()> {
    let mut line = String::with_capacity(128);
    for event in tracer.events() {
        line.clear();
        line.push_str(&format!("{{\"t\":{},", event.now));
        match event.kind {
            TraceEventKind::MicroIssue { addr } => {
                line.push_str(&format!("\"ev\":\"issue\",\"upc\":{}", addr.value()));
            }
            TraceEventKind::MicroStall { addr, cycles } => {
                line.push_str(&format!(
                    "\"ev\":\"ustall\",\"upc\":{},\"cycles\":{cycles}",
                    addr.value()
                ));
            }
            TraceEventKind::Machine(ref ev) => machine_fields(ev, &mut line),
            TraceEventKind::Phase { name, begin } => {
                let mut escaped = String::new();
                escape_json(tracer.phase_name(name), &mut escaped);
                line.push_str(&format!(
                    "\"ev\":\"phase\",\"name\":\"{escaped}\",\"begin\":{begin}"
                ));
            }
        }
        line.push('}');
        writeln!(w, "{line}")?;
    }
    let mut summary = format!("{{\"ev\":\"summary\",\"dropped\":{}", tracer.dropped());
    for (name, value) in tracer.counters().to_pairs() {
        summary.push_str(&format!(",\"{name}\":{value}"));
    }
    summary.push('}');
    writeln!(w, "{summary}")
}

/// Write the trace in Chrome `trace_event` format (Perfetto-loadable).
///
/// Mapping: phases → `B`/`E` duration events on the "phases" track;
/// microinstruction issues → 1-cycle `X` slices and stalls → `X` slices
/// with their duration on the "ucode" track; retires and memory events →
/// instants on their own tracks; write-buffer occupancy → a `C` counter
/// series.
pub fn write_chrome_trace<W: Write>(tracer: &Tracer, w: &mut W) -> io::Result<()> {
    const PID: u32 = 1;
    const TID_PHASES: u32 = 1;
    const TID_UCODE: u32 = 2;
    const TID_INSN: u32 = 3;
    const TID_MEM: u32 = 4;

    writeln!(w, "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
    // Name the tracks.
    for (tid, name) in [
        (TID_PHASES, "phases"),
        (TID_UCODE, "ucode"),
        (TID_INSN, "instructions"),
        (TID_MEM, "memory"),
    ] {
        writeln!(
            w,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":{tid},\
             \"args\":{{\"name\":\"{name}\"}}}},"
        )?;
    }

    let mut first = true;
    let mut entry = String::with_capacity(160);
    for event in tracer.events() {
        entry.clear();
        let ts = event.now;
        match event.kind {
            TraceEventKind::MicroIssue { addr } => {
                entry.push_str(&format!(
                    "{{\"name\":\"{addr}\",\"ph\":\"X\",\"ts\":{ts},\"dur\":1,\
                     \"pid\":{PID},\"tid\":{TID_UCODE}}}"
                ));
            }
            TraceEventKind::MicroStall { addr, cycles } => {
                entry.push_str(&format!(
                    "{{\"name\":\"stall@{addr}\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{cycles},\
                     \"pid\":{PID},\"tid\":{TID_UCODE},\"cat\":\"stall\"}}"
                ));
            }
            TraceEventKind::Machine(ref ev) => match *ev {
                MachineEvent::Retire {
                    opcode,
                    pc,
                    specifiers,
                } => {
                    entry.push_str(&format!(
                        "{{\"name\":\"{}\",\"ph\":\"i\",\"ts\":{ts},\"s\":\"t\",\
                         \"pid\":{PID},\"tid\":{TID_INSN},\
                         \"args\":{{\"pc\":{pc},\"specs\":{specifiers}}}}}",
                        opcode.mnemonic()
                    ));
                }
                MachineEvent::WriteBuffer { occupancy } => {
                    entry.push_str(&format!(
                        "{{\"name\":\"write_buffer\",\"ph\":\"C\",\"ts\":{ts},\
                         \"pid\":{PID},\"args\":{{\"occupancy\":{occupancy}}}}}"
                    ));
                }
                MachineEvent::CacheAccess { stream, hit } => {
                    entry.push_str(&format!(
                        "{{\"name\":\"cache_{}_{}\",\"ph\":\"i\",\"ts\":{ts},\"s\":\"t\",\
                         \"pid\":{PID},\"tid\":{TID_MEM},\"cat\":\"cache\"}}",
                        stream_name(stream),
                        if hit { "hit" } else { "miss" }
                    ));
                }
                MachineEvent::TbMiss { stream, double } => {
                    entry.push_str(&format!(
                        "{{\"name\":\"tb_miss_{}\",\"ph\":\"i\",\"ts\":{ts},\"s\":\"t\",\
                         \"pid\":{PID},\"tid\":{TID_MEM},\"cat\":\"tb\",\
                         \"args\":{{\"double\":{double}}}}}",
                        stream_name(stream)
                    ));
                }
                MachineEvent::Sbi { read } => {
                    entry.push_str(&format!(
                        "{{\"name\":\"sbi_{}\",\"ph\":\"i\",\"ts\":{ts},\"s\":\"t\",\
                         \"pid\":{PID},\"tid\":{TID_MEM},\"cat\":\"sbi\"}}",
                        if read { "read" } else { "write" }
                    ));
                }
                MachineEvent::InterruptEntry { ipl } => {
                    entry.push_str(&format!(
                        "{{\"name\":\"interrupt\",\"ph\":\"i\",\"ts\":{ts},\"s\":\"p\",\
                         \"pid\":{PID},\"tid\":{TID_INSN},\"args\":{{\"ipl\":{ipl}}}}}"
                    ));
                }
                MachineEvent::ExceptionEntry => {
                    entry.push_str(&format!(
                        "{{\"name\":\"exception\",\"ph\":\"i\",\"ts\":{ts},\"s\":\"p\",\
                         \"pid\":{PID},\"tid\":{TID_INSN}}}"
                    ));
                }
                MachineEvent::ContextSwitch { new_space } => {
                    entry.push_str(&format!(
                        "{{\"name\":\"context_switch\",\"ph\":\"i\",\"ts\":{ts},\"s\":\"p\",\
                         \"pid\":{PID},\"tid\":{TID_PHASES},\
                         \"args\":{{\"space\":{new_space}}}}}"
                    ));
                }
                MachineEvent::MachineCheck { class } => {
                    entry.push_str(&format!(
                        "{{\"name\":\"machine_check\",\"ph\":\"i\",\"ts\":{ts},\"s\":\"p\",\
                         \"pid\":{PID},\"tid\":{TID_INSN},\
                         \"args\":{{\"class\":\"{class}\"}}}}"
                    ));
                }
                // Decode and cause-tagged stalls duplicate information
                // already visible on the ucode track; keep the Chrome
                // view uncluttered.
                MachineEvent::Decode { .. } | MachineEvent::Stall { .. } => continue,
            },
            TraceEventKind::Phase { name, begin } => {
                let mut escaped = String::new();
                escape_json(tracer.phase_name(name), &mut escaped);
                entry.push_str(&format!(
                    "{{\"name\":\"{escaped}\",\"ph\":\"{}\",\"ts\":{ts},\
                     \"pid\":{PID},\"tid\":{TID_PHASES}}}",
                    if begin { "B" } else { "E" }
                ));
            }
        }
        if !first {
            writeln!(w, ",")?;
        }
        w.write_all(entry.as_bytes())?;
        first = false;
    }
    writeln!(w, "\n]}}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use upc_monitor::CycleSink;
    use vax_arch::Opcode;
    use vax_ucode::MicroAddr;

    fn sample_tracer() -> Tracer {
        let mut t = Tracer::with_capacity(64);
        t.trace_phase("measure", true);
        t.record_issue(MicroAddr::new(0x10));
        t.trace_event(MachineEvent::Decode {
            opcode: Opcode::Movl,
        });
        t.record_stall(MicroAddr::new(0x10), 3);
        t.trace_event(MachineEvent::Stall {
            cause: StallCause::Read,
            cycles: 3,
        });
        t.trace_event(MachineEvent::CacheAccess {
            stream: MemStream::Data,
            hit: false,
        });
        t.trace_event(MachineEvent::Sbi { read: true });
        t.trace_event(MachineEvent::WriteBuffer { occupancy: 1 });
        t.trace_event(MachineEvent::Retire {
            opcode: Opcode::Movl,
            pc: 0x200,
            specifiers: 2,
        });
        t.trace_phase("measure", false);
        t
    }

    /// A deliberately small JSON validator: enough to prove the writers
    /// emit well-formed JSON without an external parser.
    fn check_json(s: &str) {
        let mut depth: i32 = 0;
        let mut in_str = false;
        let mut escaped = false;
        for c in s.chars() {
            if in_str {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => {
                    depth -= 1;
                    assert!(depth >= 0, "unbalanced braces in {s}");
                }
                _ => {}
            }
        }
        assert_eq!(depth, 0, "unbalanced JSON: {s}");
        assert!(!in_str, "unterminated string: {s}");
    }

    #[test]
    fn jsonl_lines_are_well_formed_objects() {
        let t = sample_tracer();
        let mut out = Vec::new();
        write_jsonl(&t, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // Every recorded event plus the summary line.
        assert_eq!(lines.len(), t.len() + 1);
        for line in &lines {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "not an object: {line}"
            );
            check_json(line);
        }
        assert!(lines.last().unwrap().contains("\"ev\":\"summary\""));
        assert!(text.contains("\"ev\":\"retire\",\"opcode\":\"movl\""));
        assert!(text.contains("\"cause\":\"read\""));
    }

    #[test]
    fn chrome_trace_is_one_json_document() {
        let t = sample_tracer();
        let mut out = Vec::new();
        write_chrome_trace(&t, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        check_json(&text);
        assert!(text.contains("\"traceEvents\""));
        assert!(text.contains("\"ph\":\"B\""));
        assert!(text.contains("\"ph\":\"E\""));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"ph\":\"C\""));
    }

    #[test]
    fn escaping_handles_hostile_phase_names() {
        let mut t = Tracer::with_capacity(8);
        t.trace_phase("weird \"name\"\nwith\\stuff", true);
        let mut out = Vec::new();
        write_jsonl(&t, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        for line in text.lines() {
            check_json(line);
        }
    }
}
