//! Host and build provenance for measurement artifacts.
//!
//! A benchmark or probe artifact without its environment is not
//! reproducible evidence: sim-MIPS depend on the host CPU, and inferred
//! latency tables depend on the exact simulator revision. [`HostStamp`]
//! collects what's knowable — host CPU model, rustc version, git
//! revision, cargo profile and opt-level (the last four baked in by the
//! build script) — with `unknown` for anything the environment refuses
//! to reveal, never an error: stamping must not make measurement flaky.

/// Provenance of the binary and the host it runs on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostStamp {
    /// Host CPU model (from `/proc/cpuinfo`).
    pub cpu_model: String,
    /// `rustc --version` of the compiler that built this binary.
    pub rustc: String,
    /// Git revision (short) of the built tree.
    pub git_rev: String,
    /// Cargo build profile (`debug` / `release`).
    pub profile: String,
    /// Optimization level the profile compiled with.
    pub opt_level: String,
}

impl HostStamp {
    /// Collect the stamp. Build-time fields are compile-time constants;
    /// the CPU model is read at call time.
    pub fn collect() -> HostStamp {
        HostStamp {
            cpu_model: cpu_model(),
            rustc: env!("VAX_RUSTC_VERSION").to_string(),
            git_rev: env!("VAX_GIT_REV").to_string(),
            profile: env!("VAX_BUILD_PROFILE").to_string(),
            opt_level: env!("VAX_OPT_LEVEL").to_string(),
        }
    }

    /// The stamp as ordered (key, value) pairs, the shape artifact
    /// codecs store (`meta <key> <value>` lines).
    pub fn lines(&self) -> Vec<(&'static str, &str)> {
        vec![
            ("cpu-model", self.cpu_model.as_str()),
            ("rustc", self.rustc.as_str()),
            ("git-rev", self.git_rev.as_str()),
            ("profile", self.profile.as_str()),
            ("opt-level", self.opt_level.as_str()),
        ]
    }

    /// The stamp as a JSON object (for `BENCH_*.json`).
    pub fn to_json(&self) -> String {
        let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        format!(
            "{{\"cpu_model\": \"{}\", \"rustc\": \"{}\", \"git_rev\": \"{}\", \
             \"profile\": \"{}\", \"opt_level\": \"{}\"}}",
            esc(&self.cpu_model),
            esc(&self.rustc),
            esc(&self.git_rev),
            esc(&self.profile),
            esc(&self.opt_level)
        )
    }
}

/// First `model name` line of `/proc/cpuinfo`, or `unknown`.
fn cpu_model() -> String {
    let Ok(text) = std::fs::read_to_string("/proc/cpuinfo") else {
        return "unknown".to_string();
    };
    for line in text.lines() {
        if let Some((key, value)) = line.split_once(':') {
            if key.trim() == "model name" {
                return value.trim().to_string();
            }
        }
    }
    "unknown".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_fields_are_nonempty() {
        let s = HostStamp::collect();
        for (key, value) in s.lines() {
            assert!(!value.is_empty(), "{key} empty");
        }
        assert!(
            s.rustc.contains("rustc") || s.rustc == "unknown",
            "{}",
            s.rustc
        );
    }

    #[test]
    fn json_escapes_and_parses_shapewise() {
        let s = HostStamp {
            cpu_model: "Weird \"CPU\"".to_string(),
            rustc: "rustc 1.0".to_string(),
            git_rev: "abc123".to_string(),
            profile: "debug".to_string(),
            opt_level: "0".to_string(),
        };
        let json = s.to_json();
        assert!(json.contains("Weird \\\"CPU\\\""), "{json}");
        assert!(json.starts_with('{') && json.ends_with('}'));
    }
}
