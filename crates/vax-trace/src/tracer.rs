//! The tracer: a [`CycleSink`] with its own clock.

use crate::counters::TraceCounters;
use crate::event::{TraceEvent, TraceEventKind};
use crate::ring::RingBuffer;
use upc_monitor::{CycleSink, MachineEvent};
use vax_ucode::MicroAddr;

/// Default ring capacity (events), roughly a quarter-second of traced
/// machine time at one event per 200 ns cycle.
pub const DEFAULT_CAPACITY: usize = 1 << 20;

/// The second instrument: records typed events into a bounded ring and
/// aggregates counters that never drop.
///
/// The tracer carries no wall clock and asks the CPU for nothing: its
/// notion of time is *derived* from the sink feed itself — `+1` per
/// issue, `+n` per `n`-cycle stall. If the derived clock disagrees with
/// the µPC board's `issues + stalls` after a shared run, one of the two
/// instruments (or an emission point) is wrong; `vax-analysis` turns
/// that comparison into an executable check.
#[derive(Debug, Clone)]
pub struct Tracer {
    ring: RingBuffer,
    counters: TraceCounters,
    now: u64,
    phase_names: Vec<String>,
}

impl Tracer {
    /// A tracer with the default ring capacity.
    pub fn new() -> Tracer {
        Tracer::with_capacity(DEFAULT_CAPACITY)
    }

    /// A tracer retaining at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Tracer {
        Tracer {
            ring: RingBuffer::new(capacity),
            counters: TraceCounters::default(),
            now: 0,
            phase_names: Vec::new(),
        }
    }

    /// The derived cycle clock (total cycles observed so far).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Lossless aggregates.
    pub fn counters(&self) -> &TraceCounters {
        &self.counters
    }

    /// Retained events, oldest → newest.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty() && self.now == 0
    }

    /// Events overwritten by ring wrap-around (0 = complete record).
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// Resolve an interned phase-name index from a [`TraceEventKind::Phase`].
    pub fn phase_name(&self, index: u16) -> &str {
        &self.phase_names[usize::from(index)]
    }

    /// All phase names seen, in intern order.
    pub fn phase_names(&self) -> &[String] {
        &self.phase_names
    }

    /// Forget recorded events and counts (capacity and interned phase
    /// names are kept).
    pub fn clear(&mut self) {
        self.ring.clear();
        self.counters = TraceCounters::default();
        self.now = 0;
    }

    /// Recompute aggregate counters from the retained events alone.
    ///
    /// When [`Tracer::dropped`] is zero the result must equal
    /// [`Tracer::counters`] exactly — the consistency-checker uses this
    /// to prove the per-event record and the aggregates tell the same
    /// story. With drops, the replay only covers the retained suffix.
    pub fn replay(&self) -> TraceCounters {
        let mut counters = TraceCounters::default();
        for event in self.events() {
            match event.kind {
                TraceEventKind::MicroIssue { .. } => counters.issues += 1,
                TraceEventKind::MicroStall { cycles, .. } => {
                    counters.stall_cycles += u64::from(cycles);
                }
                TraceEventKind::Machine(e) => counters.apply(e),
                TraceEventKind::Phase { .. } => {}
            }
        }
        counters
    }

    #[inline]
    fn push(&mut self, kind: TraceEventKind) {
        self.ring.push(TraceEvent {
            now: self.now,
            kind,
        });
    }

    fn intern_phase(&mut self, name: &str) -> u16 {
        if let Some(i) = self.phase_names.iter().position(|n| n == name) {
            return i as u16;
        }
        assert!(
            self.phase_names.len() < usize::from(u16::MAX),
            "phase name table full"
        );
        self.phase_names.push(name.to_string());
        (self.phase_names.len() - 1) as u16
    }
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new()
    }
}

impl CycleSink for Tracer {
    #[inline]
    fn record_issue(&mut self, addr: MicroAddr) {
        self.push(TraceEventKind::MicroIssue { addr });
        self.counters.issues += 1;
        self.now += 1;
    }

    #[inline]
    fn record_stall(&mut self, addr: MicroAddr, cycles: u32) {
        self.push(TraceEventKind::MicroStall { addr, cycles });
        self.counters.stall_cycles += u64::from(cycles);
        self.now += u64::from(cycles);
    }

    #[inline]
    fn trace_event(&mut self, event: MachineEvent) {
        self.push(TraceEventKind::Machine(event));
        self.counters.apply(event);
    }

    fn trace_phase(&mut self, name: &str, begin: bool) {
        let idx = self.intern_phase(name);
        self.push(TraceEventKind::Phase { name: idx, begin });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upc_monitor::events::{MemStream, StallCause};
    use vax_ucode::StallPoint;

    #[test]
    fn clock_counts_issues_and_stalls() {
        let mut t = Tracer::with_capacity(16);
        t.record_issue(MicroAddr::new(1));
        t.record_stall(MicroAddr::new(1), 4);
        t.record_issue(MicroAddr::new(2));
        assert_eq!(t.now(), 6);
        assert_eq!(t.counters().total_cycles(), 6);
    }

    #[test]
    fn machine_events_do_not_advance_the_clock() {
        let mut t = Tracer::with_capacity(16);
        t.record_issue(MicroAddr::new(1));
        t.trace_event(MachineEvent::CacheAccess {
            stream: MemStream::Data,
            hit: true,
        });
        t.trace_event(MachineEvent::Stall {
            cause: StallCause::Ib(StallPoint::Decode),
            cycles: 2,
        });
        assert_eq!(t.now(), 1);
        assert_eq!(t.counters().cache_hit_d, 1);
        assert_eq!(t.counters().ib_stall_cycles, 2);
    }

    #[test]
    fn phase_names_intern_once() {
        let mut t = Tracer::with_capacity(16);
        t.trace_phase("warmup", true);
        t.trace_phase("warmup", false);
        t.trace_phase("measure", true);
        assert_eq!(
            t.phase_names(),
            &["warmup".to_string(), "measure".to_string()]
        );
        let phases: Vec<(u16, bool)> = t
            .events()
            .filter_map(|e| match e.kind {
                TraceEventKind::Phase { name, begin } => Some((name, begin)),
                _ => None,
            })
            .collect();
        assert_eq!(phases, vec![(0, true), (0, false), (1, true)]);
        assert_eq!(t.phase_name(1), "measure");
    }

    #[test]
    fn ring_drop_preserves_counters() {
        let mut t = Tracer::with_capacity(4);
        for i in 0..100 {
            t.record_issue(MicroAddr::new(i));
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 96);
        assert_eq!(t.counters().issues, 100);
        assert_eq!(t.now(), 100);
    }

    #[test]
    fn replay_matches_live_counters_without_drops() {
        let mut t = Tracer::with_capacity(64);
        t.record_issue(MicroAddr::new(3));
        t.record_stall(MicroAddr::new(3), 5);
        t.trace_event(MachineEvent::CacheAccess {
            stream: MemStream::Data,
            hit: false,
        });
        t.trace_event(MachineEvent::Sbi { read: true });
        t.trace_phase("measure", true);
        assert_eq!(t.dropped(), 0);
        assert_eq!(t.replay(), *t.counters());
    }

    #[test]
    fn clear_keeps_interned_names() {
        let mut t = Tracer::with_capacity(8);
        t.trace_phase("measure", true);
        t.record_issue(MicroAddr::new(0));
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.phase_names().len(), 1);
    }
}
