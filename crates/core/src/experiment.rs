//! A single measurement experiment on one workload.

use upc_monitor::{Command, Histogram, HistogramBoard, NullSink};
use vax_analysis::Analysis;
use vax_cpu::CpuConfig;
use vax_fault::{FaultEngine, FaultPlan};
use vax_mem::{HwCounters, MemConfig};
use vax_ucode::ControlStore;
use vax_workloads::{build_machine_with_config, profile, ProfileParams, WorkloadKind};

/// One workload measurement: build, warm up, measure.
#[derive(Debug, Clone)]
pub struct Experiment {
    params: ProfileParams,
    cpu_config: CpuConfig,
    mem_config: MemConfig,
    warmup_instructions: u64,
    instructions: u64,
    fault_plan: Option<FaultPlan>,
}

impl Experiment {
    /// An experiment on one of the paper's five workloads, with default
    /// lengths suitable for tests and quick runs.
    pub fn new(kind: WorkloadKind) -> Experiment {
        Experiment::with_params(profile(kind))
    }

    /// An experiment on custom profile parameters.
    pub fn with_params(params: ProfileParams) -> Experiment {
        Experiment {
            params,
            cpu_config: CpuConfig::default(),
            mem_config: MemConfig::default(),
            warmup_instructions: 30_000,
            instructions: 200_000,
            fault_plan: None,
        }
    }

    /// Set the measured instruction count.
    pub fn instructions(mut self, n: u64) -> Experiment {
        self.instructions = n;
        self
    }

    /// Set the warm-up length (cache/TB steady state before measuring).
    pub fn warmup(mut self, n: u64) -> Experiment {
        self.warmup_instructions = n;
        self
    }

    /// Override the CPU configuration (ablations).
    pub fn cpu_config(mut self, config: CpuConfig) -> Experiment {
        self.cpu_config = config;
        self
    }

    /// Override the memory configuration (ablations).
    pub fn mem_config(mut self, config: MemConfig) -> Experiment {
        self.mem_config = config;
        self
    }

    /// Install a fault-injection plan. The engine is armed at the
    /// measurement boundary, so `@cycle` trigger offsets count from the
    /// first measured cycle — warmup never takes faults.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Experiment {
        self.fault_plan = Some(plan);
        self
    }

    /// Run the measurement.
    ///
    /// # Panics
    ///
    /// Panics if the machine halts or faults unrecoverably — generated
    /// workloads never do; such a panic is a model bug.
    pub fn run(&self) -> MeasuredWorkload {
        // Debug builds refuse structurally broken workloads up front;
        // release campaigns skip the analysis cost. The gate memoizes
        // per (profile, seed), so sweeps pay it once.
        #[cfg(debug_assertions)]
        vax_lint::debug_gate(&self.params);
        let mut machine = build_machine_with_config(&self.params, self.cpu_config, self.mem_config);
        let mut null = NullSink;
        // Warm-up: caches, TB, scheduler all reach steady state.
        machine
            .run_instructions(self.warmup_instructions, &mut null)
            .expect("warmup runs");
        if let Some(plan) = &self.fault_plan {
            machine
                .cpu
                .mem_mut()
                .set_fault_hook(Box::new(FaultEngine::new(plan)));
        }
        measure(&mut machine, self.instructions)
    }
}

/// Measure `instructions` retired instructions on an already-warmed
/// machine: clear the second instrument at the measurement boundary,
/// attach the µPC board, and step with the Null-process exclusion.
///
/// Both instruments observe the same cycles: while the idle loop runs,
/// the histogram board is bypassed (§2.2) AND the hardware counters are
/// rolled back over the step, so counter-derived per-instruction rates
/// stay commensurate with the histogram instead of being inflated by
/// idle cache/TB/SBI traffic the board never saw.
///
/// # Panics
///
/// Panics if the machine halts or faults unrecoverably (a model bug).
pub fn measure(machine: &mut vax_workloads::Machine, instructions: u64) -> MeasuredWorkload {
    let mut null = NullSink;
    // Measurement boundary: clear the second instrument too, and arm
    // any installed fault hook so trigger offsets count from here.
    machine.cpu.mem_mut().counters_mut().clear();
    let insns_before = machine.cpu.instructions();
    let cycles_before = machine.cpu.now();
    machine.cpu.mem_mut().arm_fault_hook(cycles_before);

    let mut board = HistogramBoard::new();
    board.execute(Command::Start);
    while machine.cpu.instructions() - insns_before < instructions {
        if machine.at_idle() {
            // One step at a time: the idle exclusion is re-evaluated at
            // every instruction boundary. (The idle loop's `BRB` is
            // PC-changing, so the block tier would not batch it anyway.)
            let suspended = *machine.cpu.mem().counters();
            machine.step(&mut null).expect("workload runs");
            *machine.cpu.mem_mut().counters_mut() = suspended;
        } else {
            // Busy: let the block tier retire a straight-line run, but
            // never past the measurement target. Mid-run PCs can never
            // be the idle PC — the idle loop is only entered by a taken
            // branch, which ends any block — so the exclusion stays
            // exact.
            let remaining = instructions - (machine.cpu.instructions() - insns_before);
            machine
                .step_budgeted(remaining, &mut board)
                .expect("workload runs");
        }
    }
    board.execute(Command::Stop);

    MeasuredWorkload {
        name: machine.name,
        histogram: board.into_histogram(),
        counters: *machine.cpu.mem().counters(),
        instructions: machine.cpu.instructions() - insns_before,
        cycles: machine.cpu.now() - cycles_before,
    }
}

/// The outcome of one measured workload.
#[derive(Debug, Clone)]
pub struct MeasuredWorkload {
    /// Workload name.
    pub name: &'static str,
    /// The raw µPC histogram.
    pub histogram: Histogram,
    /// The second instrument's counters.
    pub counters: HwCounters,
    /// Instructions retired while measuring.
    pub instructions: u64,
    /// Cycles elapsed while measuring.
    pub cycles: u64,
}

impl MeasuredWorkload {
    /// Digest with the standard microcode listing.
    pub fn analysis(&self) -> Analysis {
        let cs = ControlStore::build();
        Analysis::new(&self.histogram, &cs, &self.counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_produces_consistent_measurement() {
        let m = Experiment::new(WorkloadKind::TimesharingLight)
            .warmup(5_000)
            .instructions(20_000)
            .run();
        let a = m.analysis();
        // The histogram's own instruction count is close to the retired
        // count (interrupt services execute instructions too, so the
        // exec-entry count can exceed the boundary by a few).
        let ratio = a.instructions() as f64 / m.instructions as f64;
        assert!((0.95..1.05).contains(&ratio), "ratio {ratio}");
        // Every cycle classified.
        assert!(a.total_cycles() > 0);
        let cpi = a.cpi();
        assert!((3.0..25.0).contains(&cpi), "CPI {cpi}");
    }
}
