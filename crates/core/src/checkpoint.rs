//! Campaign checkpoint/resume.
//!
//! A checkpoint file records every completed job of a composite
//! campaign — label, lengths, and the full measurement (histogram plus
//! hardware counters, via the `upc-monitor` text codec). The file is
//! append-only: the header is written once, and each finished job adds
//! one self-contained section, so a campaign killed mid-flight loses at
//! most the jobs that were still running. Resuming replays completed
//! jobs from the file byte-for-byte and runs only the missing ones; the
//! final merged result is bit-identical to an uninterrupted campaign.

use crate::MeasuredWorkload;
use std::fmt;
use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};
use upc_monitor::codec;
use vax_workloads::WorkloadKind;

const HEADER: &str = "vax-campaign-checkpoint v1";

/// Why a checkpoint could not be loaded, created, or extended.
#[derive(Debug)]
#[non_exhaustive]
pub enum CheckpointError {
    /// The file could not be read or written.
    Io {
        /// The checkpoint path.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The file's contents did not parse.
    Corrupt {
        /// The checkpoint path.
        path: PathBuf,
        /// What was wrong, with a line number where available.
        detail: String,
    },
    /// The checkpoint was written by a campaign with different lengths;
    /// resuming it would silently mix incompatible measurements.
    ConfigMismatch {
        /// The checkpoint path.
        path: PathBuf,
        /// `(instructions, warmup)` recorded in the file.
        found: (u64, u64),
        /// `(instructions, warmup)` of the resuming campaign.
        expected: (u64, u64),
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, source } => {
                write!(f, "checkpoint {}: {source}", path.display())
            }
            CheckpointError::Corrupt { path, detail } => {
                write!(f, "checkpoint {} is corrupt: {detail}", path.display())
            }
            CheckpointError::ConfigMismatch {
                path,
                found,
                expected,
            } => write!(
                f,
                "checkpoint {} was written by a campaign with instructions={} warmup={} \
                 (this campaign has instructions={} warmup={})",
                path.display(),
                found.0,
                found.1,
                expected.0,
                expected.1
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// A loaded (or freshly created) campaign checkpoint.
#[derive(Debug)]
pub struct Checkpoint {
    path: PathBuf,
    instructions_each: u64,
    warmup_each: u64,
    jobs: Vec<(String, MeasuredWorkload)>,
    warnings: Vec<String>,
}

impl Checkpoint {
    /// Open `path` for a campaign with the given lengths. A missing file
    /// is created with just the header; an existing one is parsed and
    /// its recorded config verified against the campaign's.
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] on I/O failure, unparseable contents, or a
    /// config mismatch.
    pub fn open(
        path: &Path,
        instructions_each: u64,
        warmup_each: u64,
    ) -> Result<Checkpoint, CheckpointError> {
        let io_err = |source| CheckpointError::Io {
            path: path.to_path_buf(),
            source,
        };
        match std::fs::read_to_string(path) {
            Ok(text) => {
                let (cp, torn_at) = Checkpoint::parse(path, &text)?;
                if (cp.instructions_each, cp.warmup_each) != (instructions_each, warmup_each) {
                    return Err(CheckpointError::ConfigMismatch {
                        path: path.to_path_buf(),
                        found: (cp.instructions_each, cp.warmup_each),
                        expected: (instructions_each, warmup_each),
                    });
                }
                if let Some(good) = torn_at {
                    // Drop the torn tail on disk too, so the next
                    // `record` appends after the last good record
                    // instead of splicing onto a partial line.
                    for w in &cp.warnings {
                        eprintln!("checkpoint {}: {w}", path.display());
                    }
                    std::fs::write(path, &text[..good]).map_err(io_err)?;
                }
                Ok(cp)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                std::fs::write(
                    path,
                    format!(
                        "{HEADER}\nconfig instructions {instructions_each} warmup {warmup_each}\n"
                    ),
                )
                .map_err(io_err)?;
                Ok(Checkpoint {
                    path: path.to_path_buf(),
                    instructions_each,
                    warmup_each,
                    jobs: Vec::new(),
                    warnings: Vec::new(),
                })
            }
            Err(e) => Err(io_err(e)),
        }
    }

    /// Parse the checkpoint text. On success the second element is
    /// `Some(byte_offset)` when a torn trailing record (a partial
    /// append left by a mid-write kill) was detected and dropped: the
    /// offset is the end of the last good record, and a warning is
    /// recorded on the returned checkpoint. Corruption *before* the
    /// trailing record — or any fully terminated record that fails to
    /// parse — is still a hard [`CheckpointError::Corrupt`].
    fn parse(path: &Path, text: &str) -> Result<(Checkpoint, Option<usize>), CheckpointError> {
        let corrupt = |detail: String| CheckpointError::Corrupt {
            path: path.to_path_buf(),
            detail,
        };
        // Manual line walk with byte offsets: `(line, terminated)`.
        // A final line without its newline is an incomplete append.
        let take_line = |pos: &mut usize| -> Option<(&str, bool)> {
            if *pos >= text.len() {
                return None;
            }
            match text[*pos..].find('\n') {
                Some(i) => {
                    let line = &text[*pos..*pos + i];
                    *pos += i + 1;
                    Some((line, true))
                }
                None => {
                    let line = &text[*pos..];
                    *pos = text.len();
                    Some((line, false))
                }
            }
        };
        let mut pos = 0usize;
        match take_line(&mut pos) {
            Some((l, true)) if l.trim() == HEADER => {}
            _ => return Err(corrupt(format!("missing `{HEADER}` header"))),
        }
        let config = match take_line(&mut pos) {
            Some((l, true)) => l.trim().to_string(),
            _ => String::new(),
        };
        let parts: Vec<&str> = config.split_ascii_whitespace().collect();
        let (instructions_each, warmup_each) = match parts.as_slice() {
            ["config", "instructions", i, "warmup", w] => (
                i.parse()
                    .map_err(|_| corrupt(format!("bad config line `{config}`")))?,
                w.parse()
                    .map_err(|_| corrupt(format!("bad config line `{config}`")))?,
            ),
            _ => return Err(corrupt(format!("bad config line `{config}`"))),
        };

        // Is the remainder after a parse failure a torn tail (forgive)
        // or mid-file corruption (hard error)? Appends are sequential,
        // so a torn write leaves a *prefix* of one record: no fully
        // terminated `end` line and no further record-start line can
        // follow the failure point. If one does, the damage is not a
        // simple truncation and we refuse to guess.
        let tail_is_torn = |record_start: usize| -> bool {
            let mut p = record_start;
            let mut first = true;
            while let Some((line, terminated)) = take_line(&mut p) {
                let t = line.trim();
                if !first && terminated && (t == "end" || t.starts_with("job ")) {
                    return false;
                }
                first = false;
            }
            true
        };

        let mut jobs: Vec<(String, MeasuredWorkload)> = Vec::new();
        let mut good = pos;
        let mut torn: Option<(usize, String)> = None;
        'records: loop {
            let record_start = pos;
            let (raw, terminated) = match take_line(&mut pos) {
                None => break,
                Some(x) => x,
            };
            let trimmed = raw.trim();
            if trimmed.is_empty() && terminated {
                good = pos;
                continue;
            }
            let fail = |detail: String| -> Result<Option<(usize, String)>, CheckpointError> {
                if tail_is_torn(record_start) {
                    Ok(Some((record_start, detail)))
                } else {
                    Err(corrupt(detail))
                }
            };
            let head: Vec<&str> = trimmed.split_ascii_whitespace().collect();
            let parsed = match head.as_slice() {
                ["job", label, "instructions", i, "cycles", c] if terminated => {
                    match (i.parse::<u64>(), c.parse::<u64>()) {
                        (Ok(i), Ok(c)) => Some(((*label).to_string(), i, c)),
                        _ => None,
                    }
                }
                _ => None,
            };
            let Some((label, instructions, cycles)) = parsed else {
                torn = fail(format!("unparseable record head `{trimmed}`"))?;
                break;
            };
            let mut body = String::new();
            let mut closed = false;
            while let Some((l, terminated)) = take_line(&mut pos) {
                if l.trim() == "end" && terminated {
                    closed = true;
                    break;
                }
                if !terminated {
                    break;
                }
                body.push_str(l);
                body.push('\n');
            }
            if !closed {
                torn = fail(format!("job '{label}' has no `end` line"))?;
                break 'records;
            }
            // The section is fully terminated: anything wrong inside it
            // is real corruption, not a torn append.
            let (histogram, counter_pairs) = codec::from_text_with_counters(&body)
                .map_err(|e| corrupt(format!("job '{label}': {e}")))?;
            let counters = vax_mem::HwCounters::from_pairs(
                counter_pairs.iter().map(|(n, v)| (n.as_str(), *v)),
            );
            let Some(kind) = WorkloadKind::ALL.iter().find(|k| k.name() == label) else {
                return Err(corrupt(format!("job '{label}' is not a known workload")));
            };
            jobs.push((
                label,
                MeasuredWorkload {
                    name: kind.name(),
                    histogram,
                    counters,
                    instructions,
                    cycles,
                },
            ));
            good = pos;
        }
        let mut warnings = Vec::new();
        let torn_at = torn.map(|(at, detail)| {
            warnings.push(format!(
                "dropped torn trailing record ({} byte(s) after the last complete \
                 record): {detail}; the job will be re-run",
                text.len() - at
            ));
            good
        });
        Ok((
            Checkpoint {
                path: path.to_path_buf(),
                instructions_each,
                warmup_each,
                jobs,
                warnings,
            },
            torn_at,
        ))
    }

    /// Warnings produced while opening (e.g. a torn trailing record
    /// dropped after a mid-append kill).
    pub fn warnings(&self) -> &[String] {
        &self.warnings
    }

    /// Labels of the jobs already completed, file order.
    pub fn completed(&self) -> Vec<&str> {
        self.jobs.iter().map(|(l, _)| l.as_str()).collect()
    }

    /// Is this job already recorded?
    pub fn contains(&self, label: &str) -> bool {
        self.jobs.iter().any(|(l, _)| l == label)
    }

    /// The recorded measurement for a job.
    pub fn get(&self, label: &str) -> Option<&MeasuredWorkload> {
        self.jobs.iter().find(|(l, _)| l == label).map(|(_, m)| m)
    }

    /// Append one completed job to the file and to the in-memory set.
    /// Called under the pool's completion lock, so sections never
    /// interleave even when workers finish concurrently.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] if the append fails.
    pub fn record(
        &mut self,
        label: &str,
        result: &MeasuredWorkload,
    ) -> Result<(), CheckpointError> {
        let mut section = format!(
            "job {label} instructions {} cycles {}\n",
            result.instructions, result.cycles
        );
        let pairs = result.counters.to_pairs();
        section.push_str(&codec::to_text_with_counters(&result.histogram, &pairs));
        section.push_str("end\n");
        let io_err = |source| CheckpointError::Io {
            path: self.path.clone(),
            source,
        };
        let mut file = OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(io_err)?;
        file.write_all(section.as_bytes()).map_err(io_err)?;
        file.flush().map_err(io_err)?;
        self.jobs.push((label.to_string(), result.clone()));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upc_monitor::Histogram;
    use vax_mem::HwCounters;
    use vax_ucode::MicroAddr;

    fn sample(kind: WorkloadKind) -> MeasuredWorkload {
        let mut h = Histogram::new();
        h.bump_issue(MicroAddr::new(0x10));
        h.bump_stall(MicroAddr::new(0x10), 3);
        let mut c = HwCounters::new();
        c.sbi_reads = 7;
        c.machine_checks = 1;
        MeasuredWorkload {
            name: kind.name(),
            histogram: h,
            counters: c,
            instructions: 1000,
            cycles: 4200,
        }
    }

    #[test]
    fn checkpoint_round_trips_jobs() {
        let dir = std::env::temp_dir().join("vax-ckpt-test-roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.ckpt");
        let mut cp = Checkpoint::open(&path, 1000, 100).unwrap();
        let kind = WorkloadKind::ALL[0];
        let m = sample(kind);
        cp.record(kind.name(), &m).unwrap();

        let back = Checkpoint::open(&path, 1000, 100).unwrap();
        assert!(back.contains(kind.name()));
        let r = back.get(kind.name()).unwrap();
        assert_eq!(r.histogram, m.histogram);
        assert_eq!(r.counters, m.counters);
        assert_eq!(r.instructions, 1000);
        assert_eq!(r.cycles, 4200);
        assert_eq!(back.completed(), vec![kind.name()]);
    }

    #[test]
    fn config_mismatch_is_refused() {
        let dir = std::env::temp_dir().join("vax-ckpt-test-mismatch");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.ckpt");
        Checkpoint::open(&path, 1000, 100).unwrap();
        let err = Checkpoint::open(&path, 2000, 100).unwrap_err();
        assert!(
            matches!(err, CheckpointError::ConfigMismatch { .. }),
            "{err}"
        );
    }

    #[test]
    fn corrupt_files_are_reported_not_panicked() {
        let dir = std::env::temp_dir().join("vax-ckpt-test-corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.ckpt");
        std::fs::write(&path, "not a checkpoint\n").unwrap();
        let err = Checkpoint::open(&path, 1000, 100).unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt { .. }), "{err}");
        // A fully terminated record with a bad body is real corruption
        // (not a torn append), and so is damage with records after it.
        std::fs::write(
            &path,
            "vax-campaign-checkpoint v1\nconfig instructions 1000 warmup 100\n\
             job timesharing-light instructions 1 cycles 2\nnot a histogram\nend\n",
        )
        .unwrap();
        let err = Checkpoint::open(&path, 1000, 100).unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt { .. }), "{err}");
        std::fs::write(
            &path,
            "vax-campaign-checkpoint v1\nconfig instructions 1000 warmup 100\n\
             garbage line\njob timesharing-light instructions 1 cycles 2\n\
             upc-histogram v1\nend\n",
        )
        .unwrap();
        let err = Checkpoint::open(&path, 1000, 100).unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn torn_trailing_record_is_dropped_with_warning() {
        // A `kill -9` mid-append leaves a prefix of the last record.
        // Opening must drop exactly that record (warning, file truncated
        // back to the last good record), never fail the whole resume.
        let dir = std::env::temp_dir().join("vax-ckpt-test-torn");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.ckpt");
        let mut cp = Checkpoint::open(&path, 1000, 100).unwrap();
        cp.record(WorkloadKind::ALL[0].name(), &sample(WorkloadKind::ALL[0]))
            .unwrap();
        let good_text = std::fs::read_to_string(&path).unwrap();
        let good_len = good_text.len();
        let mut cp = Checkpoint::open(&path, 1000, 100).unwrap();
        cp.record(WorkloadKind::ALL[1].name(), &sample(WorkloadKind::ALL[1]))
            .unwrap();
        let full_text = std::fs::read_to_string(&path).unwrap();

        // Truncate at every byte offset inside the last record: every
        // cut must recover to exactly the first job.
        for cut in good_len..full_text.len() {
            std::fs::write(&path, &full_text[..cut]).unwrap();
            let cp = Checkpoint::open(&path, 1000, 100)
                .unwrap_or_else(|e| panic!("cut at byte {cut}: {e}"));
            assert_eq!(
                cp.completed(),
                vec![WorkloadKind::ALL[0].name()],
                "cut at byte {cut}"
            );
            if cut == good_len {
                assert!(cp.warnings().is_empty(), "clean boundary cut at {cut}");
            } else {
                assert_eq!(cp.warnings().len(), 1, "cut at byte {cut}");
                assert!(cp.warnings()[0].contains("torn"), "{}", cp.warnings()[0]);
                // The file was truncated back to the last good record...
                assert_eq!(std::fs::read_to_string(&path).unwrap(), good_text);
            }
        }
        // ...and appending after recovery produces a clean two-job file.
        std::fs::write(&path, &full_text[..full_text.len() - 7]).unwrap();
        let mut cp = Checkpoint::open(&path, 1000, 100).unwrap();
        cp.record(WorkloadKind::ALL[1].name(), &sample(WorkloadKind::ALL[1]))
            .unwrap();
        let back = Checkpoint::open(&path, 1000, 100).unwrap();
        assert!(back.warnings().is_empty());
        assert_eq!(
            back.completed(),
            vec![WorkloadKind::ALL[0].name(), WorkloadKind::ALL[1].name()]
        );
        // An untouched file still opens with no warnings.
        std::fs::write(&path, &full_text).unwrap();
        let cp = Checkpoint::open(&path, 1000, 100).unwrap();
        assert!(cp.warnings().is_empty());
        assert_eq!(cp.completed().len(), 2);
    }
}
