//! The composite study: all five workloads, summed.

use crate::{Experiment, MeasuredWorkload};
use upc_monitor::Histogram;
use vax_analysis::Analysis;
use vax_mem::HwCounters;
use vax_ucode::ControlStore;
use vax_workloads::WorkloadKind;

/// The paper's full experimental campaign: five workloads, one composite.
#[derive(Debug, Clone)]
pub struct CompositeStudy {
    instructions_each: u64,
    warmup_each: u64,
    kinds: Vec<WorkloadKind>,
}

impl CompositeStudy {
    /// All five workloads at the given per-workload measurement length.
    pub fn new(instructions_each: u64) -> CompositeStudy {
        CompositeStudy {
            instructions_each,
            warmup_each: 30_000,
            kinds: WorkloadKind::ALL.to_vec(),
        }
    }

    /// Restrict to a subset of workloads (tests, quick runs).
    pub fn with_kinds(mut self, kinds: &[WorkloadKind]) -> CompositeStudy {
        self.kinds = kinds.to_vec();
        self
    }

    /// Set the per-workload warmup.
    pub fn warmup(mut self, n: u64) -> CompositeStudy {
        self.warmup_each = n;
        self
    }

    /// Run every workload and return (per-workload results, composite
    /// analysis) — "the sum of the five µPC histograms" (§2.2).
    pub fn run(&self) -> (Vec<MeasuredWorkload>, Analysis) {
        let results: Vec<MeasuredWorkload> = self
            .kinds
            .iter()
            .map(|&kind| {
                Experiment::new(kind)
                    .warmup(self.warmup_each)
                    .instructions(self.instructions_each)
                    .run()
            })
            .collect();
        let mut histogram = Histogram::new();
        let mut counters = HwCounters::new();
        for r in &results {
            histogram.merge(&r.histogram);
            counters.merge(&r.counters);
        }
        let cs = ControlStore::build();
        let analysis = Analysis::new(&histogram, &cs, &counters);
        (results, analysis)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composite_merges_workloads() {
        let (results, analysis) = CompositeStudy::new(8_000)
            .warmup(3_000)
            .with_kinds(&[WorkloadKind::TimesharingLight, WorkloadKind::SciEng])
            .run();
        assert_eq!(results.len(), 2);
        let per_sum: u64 = results.iter().map(|r| r.analysis().instructions()).sum();
        assert_eq!(analysis.instructions(), per_sum);
        assert!(analysis.cpi() > 2.0);
    }
}
