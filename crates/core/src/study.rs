//! The composite study: all five workloads, summed.
//!
//! Each workload experiment owns its machine, RNG seed, and sinks, so
//! the campaign is embarrassingly parallel: [`CompositeStudy::run`]
//! fans the workloads across a bounded scoped-thread pool and merges
//! the results in workload order, which makes the merged histogram and
//! counters bit-identical to a serial run regardless of which worker
//! finished first.

use crate::{Experiment, MeasuredWorkload};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use upc_monitor::Histogram;
use vax_analysis::Analysis;
use vax_cpu::CpuConfig;
use vax_mem::{HwCounters, MemConfig};
use vax_trace::SelfMetrics;
use vax_ucode::ControlStore;
use vax_workloads::WorkloadKind;

/// Worker count when none is requested: one per host core, capped by the
/// number of jobs to run.
pub fn default_workers(jobs: usize) -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .clamp(1, jobs.max(1))
}

/// Host-side metrics for one parallel campaign: what each worker did and
/// how long the whole fan-out took.
#[derive(Debug, Clone, Default)]
pub struct CampaignMetrics {
    /// Per-worker phase metrics (one phase per job the worker ran).
    pub workers: Vec<SelfMetrics>,
    /// Wall-clock for the whole campaign (fan-out to join).
    pub wall: Duration,
}

impl CampaignMetrics {
    /// Sum of busy wall time across workers.
    pub fn busy(&self) -> Duration {
        self.workers.iter().map(SelfMetrics::total_wall).sum()
    }

    /// Aggregate parallel speedup: total busy time / elapsed wall time.
    /// 1.0 means no overlap (serial); N means N workers were saturated.
    pub fn speedup(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall > 0.0 {
            self.busy().as_secs_f64() / wall
        } else {
            1.0
        }
    }

    /// Total simulated instructions across all workers.
    pub fn instructions(&self) -> u64 {
        self.workers
            .iter()
            .flat_map(|w| w.phases())
            .map(|p| p.instructions)
            .sum()
    }

    /// Aggregate simulated MIPS (instructions per host second of wall
    /// time, in millions).
    pub fn aggregate_mips(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall > 0.0 {
            self.instructions() as f64 / wall / 1e6
        } else {
            0.0
        }
    }
}

impl std::fmt::Display for CampaignMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, w) in self.workers.iter().enumerate() {
            for p in w.phases() {
                writeln!(
                    f,
                    "worker {i}: {:<20} {:>10.3?}  {:>10} instrs  {:>8.3} sim-MIPS",
                    p.name,
                    p.wall,
                    p.instructions,
                    p.instructions_per_sec() / 1e6
                )?;
            }
        }
        write!(
            f,
            "wall {:.3?}   busy {:.3?}   speedup {:.2}x   aggregate {:.3} sim-MIPS",
            self.wall,
            self.busy(),
            self.speedup(),
            self.aggregate_mips()
        )
    }
}

/// The paper's full experimental campaign: five workloads, one composite.
#[derive(Debug, Clone)]
pub struct CompositeStudy {
    instructions_each: u64,
    warmup_each: u64,
    kinds: Vec<WorkloadKind>,
    cpu_config: CpuConfig,
    mem_config: MemConfig,
    workers: Option<usize>,
}

impl CompositeStudy {
    /// All five workloads at the given per-workload measurement length.
    pub fn new(instructions_each: u64) -> CompositeStudy {
        CompositeStudy {
            instructions_each,
            warmup_each: 30_000,
            kinds: WorkloadKind::ALL.to_vec(),
            cpu_config: CpuConfig::default(),
            mem_config: MemConfig::default(),
            workers: None,
        }
    }

    /// Restrict to a subset of workloads (tests, quick runs).
    pub fn with_kinds(mut self, kinds: &[WorkloadKind]) -> CompositeStudy {
        self.kinds = kinds.to_vec();
        self
    }

    /// Set the per-workload warmup.
    pub fn warmup(mut self, n: u64) -> CompositeStudy {
        self.warmup_each = n;
        self
    }

    /// Override the CPU configuration for every workload (ablations).
    pub fn cpu_config(mut self, config: CpuConfig) -> CompositeStudy {
        self.cpu_config = config;
        self
    }

    /// Override the memory configuration for every workload (ablations).
    pub fn mem_config(mut self, config: MemConfig) -> CompositeStudy {
        self.mem_config = config;
        self
    }

    /// Cap the worker pool (default: one worker per host core, at most
    /// one per workload). `1` forces the serial path.
    pub fn max_workers(mut self, n: usize) -> CompositeStudy {
        self.workers = Some(n.max(1));
        self
    }

    fn experiment(&self, kind: WorkloadKind) -> Experiment {
        Experiment::new(kind)
            .warmup(self.warmup_each)
            .instructions(self.instructions_each)
            .cpu_config(self.cpu_config)
            .mem_config(self.mem_config)
    }

    /// Run every workload and return (per-workload results, composite
    /// analysis) — "the sum of the five µPC histograms" (§2.2).
    /// Workloads run concurrently when more than one worker is available;
    /// the merge is performed in workload order, so the result is
    /// bit-identical to [`CompositeStudy::run_serial`].
    pub fn run(&self) -> (Vec<MeasuredWorkload>, Analysis) {
        let (results, analysis, _) = self.run_with_metrics();
        (results, analysis)
    }

    /// As [`CompositeStudy::run`], forcing the single-threaded path.
    pub fn run_serial(&self) -> (Vec<MeasuredWorkload>, Analysis) {
        let results: Vec<MeasuredWorkload> = self
            .kinds
            .iter()
            .map(|&k| self.experiment(k).run())
            .collect();
        let analysis = merge_results(&results);
        (results, analysis)
    }

    /// Run the campaign and also report host-side self-metrics: per-worker
    /// wall time and simulated MIPS, plus the aggregate speedup.
    pub fn run_with_metrics(&self) -> (Vec<MeasuredWorkload>, Analysis, CampaignMetrics) {
        let workers = self
            .workers
            .unwrap_or_else(|| default_workers(self.kinds.len()))
            .clamp(1, self.kinds.len().max(1));
        let started = Instant::now();
        let (results, worker_metrics) = run_jobs(
            workers,
            self.kinds.len(),
            |i| self.kinds[i].name().to_string(),
            |i| self.experiment(self.kinds[i]).run(),
        );
        let metrics = CampaignMetrics {
            workers: worker_metrics,
            wall: started.elapsed(),
        };
        let analysis = merge_results(&results);
        (results, analysis, metrics)
    }
}

/// Merge per-workload measurements into the composite analysis, in the
/// order given (deterministic regardless of execution order).
fn merge_results(results: &[MeasuredWorkload]) -> Analysis {
    let mut histogram = Histogram::new();
    let mut counters = HwCounters::new();
    for r in results {
        histogram.merge(&r.histogram);
        counters.merge(&r.counters);
    }
    let cs = ControlStore::build();
    Analysis::new(&histogram, &cs, &counters)
}

/// Run `jobs` closures across a bounded scoped-thread pool and return
/// the results in job order plus per-worker [`SelfMetrics`] (one phase
/// per job, named by `label(i)`, charged with its simulated work).
///
/// The pool is a simple atomic work queue: workers claim the next job
/// index until none remain. Results land in per-index slots, so the
/// output order never depends on scheduling. A panicking job propagates
/// out of the scope (a model bug, exactly as in the serial path).
pub(crate) fn run_jobs<T, L, F>(
    workers: usize,
    jobs: usize,
    label: L,
    job: F,
) -> (Vec<T>, Vec<SelfMetrics>)
where
    T: Send + HasSimWork,
    L: Fn(usize) -> String + Sync,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.clamp(1, jobs.max(1));
    if workers <= 1 {
        // Serial fast path: no threads, same slot discipline.
        let mut metrics = SelfMetrics::new();
        let mut out = Vec::with_capacity(jobs);
        for i in 0..jobs {
            metrics.begin_phase(&label(i), 0, 0);
            let value = job(i);
            let (cycles, instructions) = value.sim_work();
            metrics.end_phase(cycles, instructions);
            out.push(value);
        }
        return (out, vec![metrics]);
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    let mut worker_metrics: Vec<SelfMetrics> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut metrics = SelfMetrics::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs {
                            break;
                        }
                        metrics.begin_phase(&label(i), 0, 0);
                        let value = job(i);
                        let (cycles, instructions) = value.sim_work();
                        metrics.end_phase(cycles, instructions);
                        *slots[i].lock().expect("slot lock") = Some(value);
                    }
                    metrics
                })
            })
            .collect();
        for h in handles {
            worker_metrics.push(h.join().expect("worker thread"));
        }
    });
    let out = slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot lock")
                .expect("every job slot filled")
        })
        .collect();
    (out, worker_metrics)
}

/// Simulated work carried by a job result, for worker self-metrics.
pub(crate) trait HasSimWork {
    /// `(simulated cycles, simulated instructions)` this result cost.
    fn sim_work(&self) -> (u64, u64);
}

impl HasSimWork for MeasuredWorkload {
    fn sim_work(&self) -> (u64, u64) {
        (self.cycles, self.instructions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composite_merges_workloads() {
        let (results, analysis) = CompositeStudy::new(8_000)
            .warmup(3_000)
            .with_kinds(&[WorkloadKind::TimesharingLight, WorkloadKind::SciEng])
            .run();
        assert_eq!(results.len(), 2);
        let per_sum: u64 = results.iter().map(|r| r.analysis().instructions()).sum();
        assert_eq!(analysis.instructions(), per_sum);
        assert!(analysis.cpi() > 2.0);
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let study = CompositeStudy::new(6_000)
            .warmup(2_000)
            .with_kinds(&[WorkloadKind::TimesharingLight, WorkloadKind::Educational]);
        let (serial, serial_analysis) = study.run_serial();
        let (parallel, parallel_analysis, metrics) =
            study.clone().max_workers(2).run_with_metrics();
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.name, p.name);
            assert_eq!(s.histogram, p.histogram);
            assert_eq!(s.counters, p.counters);
            assert_eq!(s.instructions, p.instructions);
            assert_eq!(s.cycles, p.cycles);
        }
        assert_eq!(
            serial_analysis.instructions(),
            parallel_analysis.instructions()
        );
        assert_eq!(
            serial_analysis.total_cycles(),
            parallel_analysis.total_cycles()
        );
        // Two jobs ran, between them covering all simulated work.
        let phases: usize = metrics.workers.iter().map(|w| w.phases().len()).sum();
        assert_eq!(phases, 2);
        assert!(metrics.speedup() > 0.0);
    }
}
