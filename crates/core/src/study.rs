//! The composite study: all five workloads, summed.
//!
//! Each workload experiment owns its machine, RNG seed, and sinks, so
//! the campaign is embarrassingly parallel: [`CompositeStudy::run`]
//! fans the workloads across a bounded scoped-thread pool and merges
//! the results in workload order, which makes the merged histogram and
//! counters bit-identical to a serial run regardless of which worker
//! finished first.
//!
//! The pool is a crash-hardened supervisor: each job runs under
//! `catch_unwind`, a panicking job is retried a bounded number of times
//! with a deterministic backoff and then quarantined as a structured
//! [`JobFailure`] — the other workers keep draining the queue, so one
//! poisoned workload cannot abort a campaign.

use crate::{Experiment, MeasuredWorkload};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use upc_monitor::Histogram;
use vax_analysis::Analysis;
use vax_cpu::CpuConfig;
use vax_mem::{HwCounters, MemConfig};
use vax_trace::SelfMetrics;
use vax_ucode::ControlStore;
use vax_workloads::WorkloadKind;

/// Worker count when none is requested: one per host core, capped by the
/// number of jobs to run.
pub fn default_workers(jobs: usize) -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .clamp(1, jobs.max(1))
}

/// How many times the supervisor attempts a job before quarantining it
/// (the [`RetryPolicy::default`] attempt bound).
pub const MAX_JOB_ATTEMPTS: u32 = 2;

/// How the supervisor retries a failing job: at most `max_attempts`
/// tries, sleeping `attempt * backoff` between them. The schedule is
/// deterministic — a fixed linear ramp, not a randomized one — so
/// reruns of the same campaign behave identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per job (first try included); at least 1.
    pub max_attempts: u32,
    /// Base backoff; attempt `k` sleeps `k * backoff` before retrying.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: MAX_JOB_ATTEMPTS,
            backoff: Duration::from_millis(10),
        }
    }
}

impl RetryPolicy {
    /// Policy from CLI-style knobs: `retries` extra attempts after the
    /// first, with the given base backoff in milliseconds.
    pub fn from_retries(retries: u32, backoff_ms: u64) -> RetryPolicy {
        RetryPolicy {
            max_attempts: retries.saturating_add(1).max(1),
            backoff: Duration::from_millis(backoff_ms),
        }
    }
}

/// A job the supervisor gave up on: every attempt panicked. The
/// campaign keeps the failure as data instead of unwinding the pool.
#[derive(Debug, Clone)]
pub struct JobFailure {
    /// Job index in submission order.
    pub index: usize,
    /// Job label (the workload or sweep-point name).
    pub label: String,
    /// Attempts made (the supervising [`RetryPolicy`]'s bound).
    pub attempts: u32,
    /// The final attempt's panic message.
    pub message: String,
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "job '{}' (#{}) failed after {} attempt(s): {}",
            self.label, self.index, self.attempts, self.message
        )
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Host-side metrics for one parallel campaign: what each worker did and
/// how long the whole fan-out took.
#[derive(Debug, Clone, Default)]
pub struct CampaignMetrics {
    /// Per-worker phase metrics (one phase per job the worker ran).
    pub workers: Vec<SelfMetrics>,
    /// Wall-clock for the whole campaign (fan-out to join).
    pub wall: Duration,
}

impl CampaignMetrics {
    /// Sum of busy wall time across workers.
    pub fn busy(&self) -> Duration {
        self.workers.iter().map(SelfMetrics::total_wall).sum()
    }

    /// Aggregate parallel speedup: total busy time / elapsed wall time.
    /// 1.0 means no overlap (serial); N means N workers were saturated.
    /// A zero-duration wall clock (sub-millisecond campaigns on fast
    /// hosts) yields a defined 1.0, never `inf`/NaN.
    pub fn speedup(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall > 0.0 {
            let s = self.busy().as_secs_f64() / wall;
            if s.is_finite() {
                return s;
            }
        }
        1.0
    }

    /// Total simulated instructions across all workers.
    pub fn instructions(&self) -> u64 {
        self.workers
            .iter()
            .flat_map(|w| w.phases())
            .map(|p| p.instructions)
            .sum()
    }

    /// Aggregate simulated MIPS (instructions per host second of wall
    /// time, in millions). A zero-duration wall clock yields a defined
    /// 0.0, never `inf`/NaN.
    pub fn aggregate_mips(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall > 0.0 {
            let m = self.instructions() as f64 / wall / 1e6;
            if m.is_finite() {
                return m;
            }
        }
        0.0
    }
}

impl std::fmt::Display for CampaignMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, w) in self.workers.iter().enumerate() {
            for p in w.phases() {
                writeln!(
                    f,
                    "worker {i}: {:<20} {:>10.3?}  {:>10} instrs  {:>8.3} sim-MIPS",
                    p.name,
                    p.wall,
                    p.instructions,
                    p.instructions_per_sec() / 1e6
                )?;
            }
        }
        write!(
            f,
            "wall {:.3?}   busy {:.3?}   speedup {:.2}x   aggregate {:.3} sim-MIPS",
            self.wall,
            self.busy(),
            self.speedup(),
            self.aggregate_mips()
        )
    }
}

/// The paper's full experimental campaign: five workloads, one composite.
#[derive(Debug, Clone)]
pub struct CompositeStudy {
    instructions_each: u64,
    warmup_each: u64,
    kinds: Vec<WorkloadKind>,
    cpu_config: CpuConfig,
    mem_config: MemConfig,
    workers: Option<usize>,
    retry: RetryPolicy,
}

impl CompositeStudy {
    /// All five workloads at the given per-workload measurement length.
    pub fn new(instructions_each: u64) -> CompositeStudy {
        CompositeStudy {
            instructions_each,
            warmup_each: 30_000,
            kinds: WorkloadKind::ALL.to_vec(),
            cpu_config: CpuConfig::default(),
            mem_config: MemConfig::default(),
            workers: None,
            retry: RetryPolicy::default(),
        }
    }

    /// Restrict to a subset of workloads (tests, quick runs).
    pub fn with_kinds(mut self, kinds: &[WorkloadKind]) -> CompositeStudy {
        self.kinds = kinds.to_vec();
        self
    }

    /// Set the per-workload warmup.
    pub fn warmup(mut self, n: u64) -> CompositeStudy {
        self.warmup_each = n;
        self
    }

    /// Override the CPU configuration for every workload (ablations).
    pub fn cpu_config(mut self, config: CpuConfig) -> CompositeStudy {
        self.cpu_config = config;
        self
    }

    /// Override the memory configuration for every workload (ablations).
    pub fn mem_config(mut self, config: MemConfig) -> CompositeStudy {
        self.mem_config = config;
        self
    }

    /// Cap the worker pool (default: one worker per host core, at most
    /// one per workload). `1` forces the serial path.
    pub fn max_workers(mut self, n: usize) -> CompositeStudy {
        self.workers = Some(n.max(1));
        self
    }

    /// Override the supervisor's retry policy (attempt bound and
    /// backoff) for quarantined jobs.
    pub fn retry(mut self, policy: RetryPolicy) -> CompositeStudy {
        self.retry = policy;
        self
    }

    fn experiment(&self, kind: WorkloadKind) -> Experiment {
        Experiment::new(kind)
            .warmup(self.warmup_each)
            .instructions(self.instructions_each)
            .cpu_config(self.cpu_config)
            .mem_config(self.mem_config)
    }

    /// Run every workload and return (per-workload results, composite
    /// analysis) — "the sum of the five µPC histograms" (§2.2).
    /// Workloads run concurrently when more than one worker is available;
    /// the merge is performed in workload order, so the result is
    /// bit-identical to [`CompositeStudy::run_serial`].
    pub fn run(&self) -> (Vec<MeasuredWorkload>, Analysis) {
        let (results, analysis, _) = self.run_with_metrics();
        (results, analysis)
    }

    /// As [`CompositeStudy::run`], forcing the single-threaded path.
    pub fn run_serial(&self) -> (Vec<MeasuredWorkload>, Analysis) {
        let results: Vec<MeasuredWorkload> = self
            .kinds
            .iter()
            .map(|&k| self.experiment(k).run())
            .collect();
        let analysis = merge_results(&results);
        (results, analysis)
    }

    /// Run the campaign and also report host-side self-metrics: per-worker
    /// wall time and simulated MIPS, plus the aggregate speedup.
    ///
    /// # Panics
    ///
    /// Panics if any job was quarantined (a model bug, as in the serial
    /// path) — use [`CompositeStudy::run_supervised`] to keep failures
    /// as data instead.
    pub fn run_with_metrics(&self) -> (Vec<MeasuredWorkload>, Analysis, CampaignMetrics) {
        let outcome = self.run_supervised();
        if let Some(failure) = outcome.failures.first() {
            panic!("{failure}");
        }
        (outcome.results, outcome.analysis, outcome.metrics)
    }

    /// Run the campaign under the quarantine supervisor: a panicking
    /// workload is retried and, failing that, reported as a
    /// [`JobFailure`] while the rest of the campaign completes. The
    /// composite analysis merges the successful jobs in workload order.
    pub fn run_supervised(&self) -> CampaignOutcome {
        self.run_internal(None, None)
            .expect("no checkpoint I/O on the unsupervised path")
    }

    /// As [`CompositeStudy::run_supervised`], with checkpoint/resume:
    /// jobs already recorded in `checkpoint` are restored instead of
    /// re-run, and each fresh completion is appended to the file before
    /// the campaign moves on. `halt_after` stops the campaign after that
    /// many *fresh* jobs (deterministic stand-in for a mid-campaign
    /// kill, used by the resume tests).
    ///
    /// # Errors
    ///
    /// [`crate::CheckpointError`] if appending a completed job to the
    /// checkpoint file fails.
    pub fn run_checkpointed(
        &self,
        checkpoint: &mut crate::Checkpoint,
        halt_after: Option<usize>,
    ) -> Result<CampaignOutcome, crate::CheckpointError> {
        self.run_internal(Some(checkpoint), halt_after)
    }

    fn run_internal(
        &self,
        checkpoint: Option<&mut crate::Checkpoint>,
        halt_after: Option<usize>,
    ) -> Result<CampaignOutcome, crate::CheckpointError> {
        let started = Instant::now();
        let restored: Vec<Option<MeasuredWorkload>> = self
            .kinds
            .iter()
            .map(|&k| checkpoint.as_ref().and_then(|cp| cp.get(k.name())).cloned())
            .collect();
        let resumed = restored.iter().flatten().count();
        let mut missing: Vec<usize> = (0..self.kinds.len())
            .filter(|&i| restored[i].is_none())
            .collect();
        let halted: Vec<usize> = match halt_after {
            Some(n) if n < missing.len() => missing.split_off(n),
            _ => Vec::new(),
        };
        let workers = self
            .workers
            .unwrap_or_else(|| default_workers(missing.len()))
            .clamp(1, missing.len().max(1));
        let checkpoint = checkpoint.map(Mutex::new);
        let append_error: Mutex<Option<crate::CheckpointError>> = Mutex::new(None);
        let (outcomes, worker_metrics) = run_jobs_with(
            workers,
            missing.len(),
            self.retry,
            |j| self.kinds[missing[j]].name().to_string(),
            |j| self.experiment(self.kinds[missing[j]]).run(),
            |j, result: &MeasuredWorkload| {
                if let Some(cp) = &checkpoint {
                    let label = self.kinds[missing[j]].name();
                    if let Err(e) = cp.lock().expect("checkpoint lock").record(label, result) {
                        append_error.lock().expect("error slot").get_or_insert(e);
                    }
                }
            },
        );
        if let Some(e) = append_error.into_inner().expect("error slot") {
            return Err(e);
        }
        let metrics = CampaignMetrics {
            workers: worker_metrics,
            wall: started.elapsed(),
        };
        // Reassemble in workload order: restored, fresh, failed, halted.
        let mut results: Vec<MeasuredWorkload> = restored.into_iter().flatten().collect();
        let mut failures = Vec::new();
        for (j, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                Ok(r) => results.push(r),
                Err(f) => failures.push(JobFailure {
                    index: missing[j],
                    ..f
                }),
            }
        }
        results.sort_by_key(|r| {
            self.kinds
                .iter()
                .position(|k| k.name() == r.name)
                .unwrap_or(usize::MAX)
        });
        let pending = halted
            .into_iter()
            .map(|i| self.kinds[i].name().to_string())
            .collect();
        let analysis = merge_results(&results);
        Ok(CampaignOutcome {
            results,
            failures,
            pending,
            analysis,
            metrics,
            resumed,
        })
    }
}

/// What a supervised (and possibly checkpointed) campaign produced.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// Completed measurements, workload order (restored + fresh).
    pub results: Vec<MeasuredWorkload>,
    /// Jobs the supervisor quarantined.
    pub failures: Vec<JobFailure>,
    /// Labels of jobs not attempted (campaign halted by `halt_after`).
    pub pending: Vec<String>,
    /// Composite analysis over the completed measurements.
    pub analysis: Analysis,
    /// Host-side self-metrics for the fresh jobs.
    pub metrics: CampaignMetrics,
    /// How many results were restored from the checkpoint.
    pub resumed: usize,
}

impl CampaignOutcome {
    /// Did every workload complete?
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty() && self.pending.is_empty()
    }
}

/// Merge per-workload measurements into the composite analysis, in the
/// order given (deterministic regardless of execution order).
fn merge_results(results: &[MeasuredWorkload]) -> Analysis {
    let mut histogram = Histogram::new();
    let mut counters = HwCounters::new();
    for r in results {
        histogram.merge(&r.histogram);
        counters.merge(&r.counters);
    }
    let cs = ControlStore::build();
    Analysis::new(&histogram, &cs, &counters)
}

/// Run one job under the supervisor's quarantine discipline: panics are
/// caught, the job is retried up to the policy's attempt bound with the
/// policy's deterministic linear backoff, and a job that never succeeds
/// becomes an `Err(JobFailure)` instead of unwinding the pool.
fn attempt_job<T, F>(i: usize, label: &str, policy: RetryPolicy, job: &F) -> Result<T, JobFailure>
where
    F: Fn(usize) -> T + Sync,
{
    let attempts = policy.max_attempts.max(1);
    let mut last = String::new();
    for attempt in 1..=attempts {
        match catch_unwind(AssertUnwindSafe(|| job(i))) {
            Ok(value) => return Ok(value),
            Err(payload) => {
                last = panic_message(payload);
                if attempt < attempts {
                    // Deterministic backoff: a fixed schedule, not a
                    // randomized one, so reruns behave identically.
                    std::thread::sleep(policy.backoff * attempt);
                }
            }
        }
    }
    Err(JobFailure {
        index: i,
        label: label.to_string(),
        attempts,
        message: last,
    })
}

/// Run `jobs` closures across a bounded scoped-thread pool and return
/// the per-job outcomes in job order plus per-worker [`SelfMetrics`]
/// (one phase per job, named by `label(i)`, charged with its simulated
/// work).
///
/// The pool is a simple atomic work queue: workers claim the next job
/// index until none remain. Results land in per-index slots, so the
/// output order never depends on scheduling. A panicking job is
/// quarantined (see [`JobFailure`]); `on_complete` is invoked for each
/// success, serialized under a lock so implementations may append to a
/// shared checkpoint file.
pub(crate) fn run_jobs_with<T, L, F, C>(
    workers: usize,
    jobs: usize,
    policy: RetryPolicy,
    label: L,
    job: F,
    on_complete: C,
) -> (Vec<Result<T, JobFailure>>, Vec<SelfMetrics>)
where
    T: Send + HasSimWork,
    L: Fn(usize) -> String + Sync,
    F: Fn(usize) -> T + Sync,
    C: Fn(usize, &T) + Sync,
{
    let workers = workers.clamp(1, jobs.max(1));
    let completion_lock = Mutex::new(());
    let complete = |i: usize, value: &T| {
        let _guard = completion_lock.lock().expect("completion lock");
        on_complete(i, value);
    };
    if workers <= 1 {
        // Serial fast path: no threads, same slot discipline.
        let mut metrics = SelfMetrics::new();
        let mut out = Vec::with_capacity(jobs);
        for i in 0..jobs {
            let name = label(i);
            metrics.begin_phase(&name, 0, 0);
            let outcome = attempt_job(i, &name, policy, &job);
            let (cycles, instructions) = outcome.as_ref().map_or((0, 0), HasSimWork::sim_work);
            metrics.end_phase(cycles, instructions);
            if let Ok(value) = &outcome {
                complete(i, value);
            }
            out.push(outcome);
        }
        return (out, vec![metrics]);
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<T, JobFailure>>>> =
        (0..jobs).map(|_| Mutex::new(None)).collect();
    let mut worker_metrics: Vec<SelfMetrics> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut metrics = SelfMetrics::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs {
                            break;
                        }
                        let name = label(i);
                        metrics.begin_phase(&name, 0, 0);
                        let outcome = attempt_job(i, &name, policy, &job);
                        let (cycles, instructions) =
                            outcome.as_ref().map_or((0, 0), HasSimWork::sim_work);
                        metrics.end_phase(cycles, instructions);
                        if let Ok(value) = &outcome {
                            complete(i, value);
                        }
                        *slots[i].lock().expect("slot lock") = Some(outcome);
                    }
                    metrics
                })
            })
            .collect();
        for h in handles {
            worker_metrics.push(h.join().expect("worker thread"));
        }
    });
    let out = slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot lock")
                .expect("every job slot filled")
        })
        .collect();
    (out, worker_metrics)
}

/// [`run_jobs_with`] without a completion hook, unwrapping quarantined
/// failures into a panic on the *caller's* thread — the pool itself
/// still drains every job first, so a poisoned job cannot strand its
/// siblings mid-flight.
pub(crate) fn run_jobs<T, L, F>(
    workers: usize,
    jobs: usize,
    policy: RetryPolicy,
    label: L,
    job: F,
) -> (Vec<T>, Vec<SelfMetrics>)
where
    T: Send + HasSimWork,
    L: Fn(usize) -> String + Sync,
    F: Fn(usize) -> T + Sync,
{
    let (outcomes, metrics) = run_jobs_with(workers, jobs, policy, label, job, |_, _| {});
    let out = outcomes
        .into_iter()
        .map(|o| o.unwrap_or_else(|failure| panic!("{failure}")))
        .collect();
    (out, metrics)
}

/// Simulated work carried by a job result, for worker self-metrics.
pub(crate) trait HasSimWork {
    /// `(simulated cycles, simulated instructions)` this result cost.
    fn sim_work(&self) -> (u64, u64);
}

impl HasSimWork for MeasuredWorkload {
    fn sim_work(&self) -> (u64, u64) {
        (self.cycles, self.instructions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composite_merges_workloads() {
        let (results, analysis) = CompositeStudy::new(8_000)
            .warmup(3_000)
            .with_kinds(&[WorkloadKind::TimesharingLight, WorkloadKind::SciEng])
            .run();
        assert_eq!(results.len(), 2);
        let per_sum: u64 = results.iter().map(|r| r.analysis().instructions()).sum();
        assert_eq!(analysis.instructions(), per_sum);
        assert!(analysis.cpi() > 2.0);
    }

    #[derive(Debug)]
    struct Tiny(u64);
    impl HasSimWork for Tiny {
        fn sim_work(&self) -> (u64, u64) {
            (self.0, self.0)
        }
    }

    #[test]
    fn poisoned_job_is_quarantined_not_fatal() {
        // One job out of four panics on every attempt; its siblings must
        // still complete and the failure must carry the job's label.
        let (outcomes, _) = run_jobs_with(
            2,
            4,
            RetryPolicy::default(),
            |i| format!("job-{i}"),
            |i| {
                assert!(i != 1, "poisoned workload");
                Tiny(i as u64)
            },
            |_, _| {},
        );
        assert_eq!(outcomes.len(), 4);
        for (i, o) in outcomes.iter().enumerate() {
            if i == 1 {
                let f = o.as_ref().unwrap_err();
                assert_eq!(f.label, "job-1");
                assert_eq!(f.index, 1);
                assert_eq!(f.attempts, MAX_JOB_ATTEMPTS);
                assert!(f.message.contains("poisoned workload"), "{}", f.message);
            } else {
                assert!(o.is_ok(), "sibling job {i} should have completed");
            }
        }
    }

    #[test]
    fn multiple_poisoned_jobs_all_quarantined_in_one_drain() {
        // Two of five jobs panic on every attempt in the same pool
        // drain-out: every failure is quarantined independently, every
        // sibling completes, and the pool never strands a job slot.
        let poisoned = [1usize, 3];
        let (outcomes, _) = run_jobs_with(
            3,
            5,
            RetryPolicy {
                max_attempts: 2,
                backoff: Duration::from_millis(0),
            },
            |i| format!("job-{i}"),
            |i| {
                assert!(!poisoned.contains(&i), "poisoned workload {i}");
                Tiny(i as u64)
            },
            |_, _| {},
        );
        assert_eq!(outcomes.len(), 5);
        for (i, o) in outcomes.iter().enumerate() {
            if poisoned.contains(&i) {
                let f = o.as_ref().unwrap_err();
                assert_eq!(f.index, i);
                assert_eq!(f.label, format!("job-{i}"));
                assert_eq!(f.attempts, 2);
            } else {
                assert!(o.is_ok(), "sibling job {i} should have completed");
            }
        }
    }

    #[test]
    fn retry_exhaustion_is_one_failure_per_job_not_per_attempt() {
        // A 4-attempt policy on two always-panicking jobs: exactly two
        // JobFailures come back (one per job), each reporting the full
        // attempt count, and the attempt counter proves every retry ran.
        let attempts = std::sync::atomic::AtomicUsize::new(0);
        let policy = RetryPolicy::from_retries(3, 0);
        assert_eq!(policy.max_attempts, 4);
        let (outcomes, _) = run_jobs_with(
            2,
            2,
            policy,
            |i| format!("job-{i}"),
            |_| -> Tiny {
                attempts.fetch_add(1, Ordering::SeqCst);
                panic!("always fails");
            },
            |_, _| {},
        );
        let failures: Vec<&JobFailure> = outcomes.iter().filter_map(|o| o.as_ref().err()).collect();
        assert_eq!(failures.len(), 2, "one JobFailure per job");
        for f in &failures {
            assert_eq!(f.attempts, 4);
            assert!(f.message.contains("always fails"));
        }
        assert_eq!(attempts.load(Ordering::SeqCst), 8, "2 jobs x 4 attempts");
    }

    #[test]
    fn zero_wall_metrics_are_defined() {
        // A sub-millisecond campaign can observe a zero-duration wall
        // clock; speedup and aggregate MIPS must stay defined (no
        // inf/NaN leaking into JSONL exports).
        let mut worker = SelfMetrics::new();
        worker.begin_phase("job", 0, 0);
        worker.end_phase(5_000, 1_000);
        let m = CampaignMetrics {
            workers: vec![worker],
            wall: Duration::ZERO,
        };
        assert!(m.busy() >= Duration::ZERO);
        assert!(m.speedup().is_finite());
        assert!(m.aggregate_mips().is_finite());
        assert_eq!(m.aggregate_mips(), 0.0);
        let empty = CampaignMetrics::default();
        assert_eq!(empty.speedup(), 1.0);
        assert_eq!(empty.aggregate_mips(), 0.0);
    }

    #[test]
    fn supervised_campaign_completes() {
        let outcome = CompositeStudy::new(5_000)
            .warmup(2_000)
            .with_kinds(&[WorkloadKind::TimesharingLight])
            .run_supervised();
        assert!(outcome.is_complete());
        assert_eq!(outcome.results.len(), 1);
        assert_eq!(outcome.resumed, 0);
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let study = CompositeStudy::new(6_000)
            .warmup(2_000)
            .with_kinds(&[WorkloadKind::TimesharingLight, WorkloadKind::Educational]);
        let (serial, serial_analysis) = study.run_serial();
        let (parallel, parallel_analysis, metrics) =
            study.clone().max_workers(2).run_with_metrics();
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.name, p.name);
            assert_eq!(s.histogram, p.histogram);
            assert_eq!(s.counters, p.counters);
            assert_eq!(s.instructions, p.instructions);
            assert_eq!(s.cycles, p.cycles);
        }
        assert_eq!(
            serial_analysis.instructions(),
            parallel_analysis.instructions()
        );
        assert_eq!(
            serial_analysis.total_cycles(),
            parallel_analysis.total_cycles()
        );
        // Two jobs ran, between them covering all simulated work.
        let phases: usize = metrics.workers.iter().map(|w| w.phases().len()).sum();
        assert_eq!(phases, 2);
        assert!(metrics.speedup() > 0.0);
    }
}
