//! Configuration sweep engine: the §6 what-if analyses, re-simulated.
//!
//! The paper asks "what if the cache were bigger / the TB unified / the
//! write buffer deeper / decode overlapped?" and answers by arithmetic
//! on Table 8. Here we answer by *measurement*: a [`SweepGrid`] fans a
//! set of [`CpuConfig`]/[`MemConfig`] ablations into [`SweepPoint`]s, a
//! [`Sweep`] runs each point's workload composite across a bounded
//! worker pool (every point owns its machines, seeds, and sinks — the
//! fan-out is embarrassingly parallel), and the results reduce to
//! [`vax_analysis::sweep::SweepRow`]s for the table/CSV/JSONL reports.
//!
//! Determinism: points are generated in a fixed order, every experiment
//! is seeded, and results land in per-point slots — repeated runs of the
//! same grid produce identical rows (host wall-time fields aside).

use crate::study::{default_workers, run_jobs, CampaignMetrics, HasSimWork, RetryPolicy};
use crate::{CompositeStudy, MeasuredWorkload};
use std::time::Instant;
use vax_analysis::sweep::SweepRow;
use vax_analysis::Analysis;
use vax_cpu::CpuConfig;
use vax_mem::{HwCounters, MemConfig};
use vax_workloads::WorkloadKind;

/// One ablation axis of the sweep grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepAxis {
    /// Data-cache total size (11/780: 8 KB).
    CacheSize,
    /// Data-cache associativity (11/780: 2-way).
    CacheWays,
    /// Translation-buffer entries (11/780: 128).
    TbEntries,
    /// Unified vs split TB (11/780: split system/process halves).
    TbSplit,
    /// Write-buffer depth (11/780: 1 entry).
    WriteBuffer,
    /// 11/750-style decode overlap (11/780: off).
    DecodeOverlap,
}

impl SweepAxis {
    /// Every axis, grid order.
    pub const ALL: [SweepAxis; 6] = [
        SweepAxis::CacheSize,
        SweepAxis::CacheWays,
        SweepAxis::TbEntries,
        SweepAxis::TbSplit,
        SweepAxis::WriteBuffer,
        SweepAxis::DecodeOverlap,
    ];

    /// CLI name of the axis.
    pub const fn name(self) -> &'static str {
        match self {
            SweepAxis::CacheSize => "cache-size",
            SweepAxis::CacheWays => "cache-ways",
            SweepAxis::TbEntries => "tb-entries",
            SweepAxis::TbSplit => "tb-split",
            SweepAxis::WriteBuffer => "write-buffer",
            SweepAxis::DecodeOverlap => "decode-overlap",
        }
    }

    /// Parse a CLI axis name.
    pub fn parse(s: &str) -> Option<SweepAxis> {
        SweepAxis::ALL.into_iter().find(|a| a.name() == s)
    }

    /// The ablated points this axis contributes (baseline excluded).
    fn points(self) -> Vec<SweepPoint> {
        let base_cpu = CpuConfig::default();
        let base_mem = MemConfig::default();
        let mut out = Vec::new();
        match self {
            SweepAxis::CacheSize => {
                for kb in [2u32, 4, 16, 32] {
                    let mut mem = base_mem;
                    mem.cache.size_bytes = kb * 1024;
                    out.push(SweepPoint::new(
                        format!("cache-size={kb}KB"),
                        self,
                        base_cpu,
                        mem,
                    ));
                }
            }
            SweepAxis::CacheWays => {
                for ways in [1u32, 4] {
                    let mut mem = base_mem;
                    mem.cache.ways = ways;
                    out.push(SweepPoint::new(
                        format!("cache-ways={ways}"),
                        self,
                        base_cpu,
                        mem,
                    ));
                }
            }
            SweepAxis::TbEntries => {
                for entries in [64u32, 256] {
                    let mut mem = base_mem;
                    mem.tb.entries = entries;
                    out.push(SweepPoint::new(
                        format!("tb-entries={entries}"),
                        self,
                        base_cpu,
                        mem,
                    ));
                }
            }
            SweepAxis::TbSplit => {
                let mut mem = base_mem;
                mem.tb.split = false;
                out.push(SweepPoint::new(
                    "tb-unified".to_string(),
                    self,
                    base_cpu,
                    mem,
                ));
            }
            SweepAxis::WriteBuffer => {
                for depth in [2u32, 4, 8] {
                    let mut mem = base_mem;
                    mem.write_buffer_entries = depth;
                    out.push(SweepPoint::new(
                        format!("write-buffer={depth}"),
                        self,
                        base_cpu,
                        mem,
                    ));
                }
            }
            SweepAxis::DecodeOverlap => {
                out.push(SweepPoint::new(
                    "decode-overlap".to_string(),
                    self,
                    CpuConfig::with_decode_overlap(),
                    base_mem,
                ));
            }
        }
        out
    }
}

/// One configuration to measure.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Human/machine label, e.g. `cache-size=4KB`.
    pub label: String,
    /// Axis name (`baseline` for the reference point).
    pub axis: &'static str,
    /// CPU configuration for this point.
    pub cpu: CpuConfig,
    /// Memory configuration for this point.
    pub mem: MemConfig,
}

impl SweepPoint {
    fn new(label: String, axis: SweepAxis, cpu: CpuConfig, mem: MemConfig) -> SweepPoint {
        SweepPoint {
            label,
            axis: axis.name(),
            cpu,
            mem,
        }
    }

    /// The unmodified 11/780.
    pub fn baseline() -> SweepPoint {
        SweepPoint {
            label: "baseline".to_string(),
            axis: "baseline",
            cpu: CpuConfig::default(),
            mem: MemConfig::default(),
        }
    }
}

/// A grid of sweep points: the baseline plus one-factor-at-a-time
/// ablations along the selected axes.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    points: Vec<SweepPoint>,
}

impl SweepGrid {
    /// The full grid: baseline + every axis.
    pub fn all() -> SweepGrid {
        SweepGrid::with_axes(&SweepAxis::ALL)
    }

    /// Baseline + the given axes, in the given order.
    pub fn with_axes(axes: &[SweepAxis]) -> SweepGrid {
        let mut points = vec![SweepPoint::baseline()];
        for axis in axes {
            points.extend(axis.points());
        }
        SweepGrid { points }
    }

    /// The points, baseline first.
    pub fn points(&self) -> &[SweepPoint] {
        &self.points
    }

    /// Number of points (baseline included).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// A grid is never empty (the baseline is always present).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// The sweep runner: a grid, the workloads to measure at each point, and
/// the worker budget.
#[derive(Debug, Clone)]
pub struct Sweep {
    grid: SweepGrid,
    kinds: Vec<WorkloadKind>,
    instructions_each: u64,
    warmup_each: u64,
    workers: Option<usize>,
    retry: RetryPolicy,
}

impl Sweep {
    /// Sweep the grid measuring all five workloads per point.
    pub fn new(grid: SweepGrid, instructions_each: u64) -> Sweep {
        Sweep {
            grid,
            kinds: WorkloadKind::ALL.to_vec(),
            instructions_each,
            warmup_each: 30_000,
            workers: None,
            retry: RetryPolicy::default(),
        }
    }

    /// Restrict the per-point composite to a subset of workloads.
    pub fn with_kinds(mut self, kinds: &[WorkloadKind]) -> Sweep {
        self.kinds = kinds.to_vec();
        self
    }

    /// Set the per-workload warmup at each point.
    pub fn warmup(mut self, n: u64) -> Sweep {
        self.warmup_each = n;
        self
    }

    /// Cap the worker pool (default: one worker per host core, at most
    /// one per point). `1` forces the serial path.
    pub fn max_workers(mut self, n: usize) -> Sweep {
        self.workers = Some(n.max(1));
        self
    }

    /// Override the supervisor's retry policy for quarantined points.
    pub fn retry(mut self, policy: RetryPolicy) -> Sweep {
        self.retry = policy;
        self
    }

    /// Run every point and reduce. Points fan across the worker pool;
    /// within a point the workloads run serially (the grid, not the
    /// composite, is the parallel axis — sweeps have far more points
    /// than a composite has workloads).
    pub fn run(&self) -> SweepOutcome {
        let n = self.grid.len();
        let workers = self
            .workers
            .unwrap_or_else(|| default_workers(n))
            .clamp(1, n.max(1));
        let started = Instant::now();
        let (points, worker_metrics) = run_jobs(
            workers,
            n,
            self.retry,
            |i| self.grid.points[i].label.clone(),
            |i| self.run_point(&self.grid.points[i]),
        );
        let metrics = CampaignMetrics {
            workers: worker_metrics,
            wall: started.elapsed(),
        };
        let rows = points
            .iter()
            .map(|p| {
                SweepRow::from_analysis(
                    p.point.label.clone(),
                    p.point.axis,
                    &p.analysis,
                    p.wall,
                    p.sim_instructions,
                )
            })
            .collect();
        SweepOutcome {
            rows,
            points,
            metrics,
        }
    }

    fn run_point(&self, point: &SweepPoint) -> PointResult {
        let started = Instant::now();
        let (results, analysis) = CompositeStudy::new(self.instructions_each)
            .warmup(self.warmup_each)
            .with_kinds(&self.kinds)
            .cpu_config(point.cpu)
            .mem_config(point.mem)
            .max_workers(1)
            .run_serial();
        // Simulated work includes warmup: the host paid for it.
        let sim_instructions: u64 = results
            .iter()
            .map(|r| r.instructions + self.warmup_each)
            .sum();
        PointResult {
            point: point.clone(),
            sim_cycles: results.iter().map(|r| r.cycles).sum(),
            sim_instructions,
            analysis,
            results,
            wall: started.elapsed(),
        }
    }
}

/// One measured sweep point: the composite analysis plus the raw
/// per-workload measurements.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// The configuration measured.
    pub point: SweepPoint,
    /// Composite analysis at this point.
    pub analysis: Analysis,
    /// Per-workload measurements (workload order).
    pub results: Vec<MeasuredWorkload>,
    /// Simulated cycles across the point's workloads (measured phase).
    pub sim_cycles: u64,
    /// Simulated instructions including warmup (self-metrics).
    pub sim_instructions: u64,
    /// Host wall time spent on this point.
    pub wall: std::time::Duration,
}

impl HasSimWork for PointResult {
    fn sim_work(&self) -> (u64, u64) {
        (self.sim_cycles, self.sim_instructions)
    }
}

/// Everything a sweep produces.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Reduced rows, grid order, baseline first.
    pub rows: Vec<SweepRow>,
    /// Full per-point results, grid order.
    pub points: Vec<PointResult>,
    /// Host-side self-metrics: per-worker phases, wall, speedup.
    pub metrics: CampaignMetrics,
}

impl SweepOutcome {
    /// The merged hardware counters of one point (diagnostics).
    pub fn counters(&self, index: usize) -> HwCounters {
        let mut c = HwCounters::new();
        for r in &self.points[index].results {
            c.merge(&r.counters);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_baseline_plus_axes() {
        let g = SweepGrid::all();
        assert_eq!(g.points()[0].axis, "baseline");
        // 1 + 4 cache sizes + 2 ways + 2 tb sizes + 1 unified + 3 wb + 1 overlap
        assert_eq!(g.len(), 14);
        let g2 = SweepGrid::with_axes(&[SweepAxis::WriteBuffer]);
        assert_eq!(g2.len(), 4);
        assert!(g2.points()[1].label.starts_with("write-buffer="));
    }

    #[test]
    fn axis_names_round_trip() {
        for axis in SweepAxis::ALL {
            assert_eq!(SweepAxis::parse(axis.name()), Some(axis));
        }
        assert_eq!(SweepAxis::parse("nonesuch"), None);
    }

    #[test]
    fn every_grid_config_validates() {
        for p in SweepGrid::all().points() {
            p.mem.validate();
        }
    }

    #[test]
    fn small_sweep_runs_and_orders_rows() {
        let grid = SweepGrid::with_axes(&[SweepAxis::DecodeOverlap]);
        let outcome = Sweep::new(grid, 4_000)
            .warmup(1_500)
            .with_kinds(&[WorkloadKind::TimesharingLight])
            .max_workers(2)
            .run();
        assert_eq!(outcome.rows.len(), 2);
        assert_eq!(outcome.rows[0].label, "baseline");
        assert_eq!(outcome.rows[1].label, "decode-overlap");
        assert!(outcome.rows[0].cpi > 2.0);
        // Decode overlap saves the non-overlapped decode cycle.
        assert!(outcome.rows[1].cpi < outcome.rows[0].cpi);
        assert!(outcome.metrics.wall.as_nanos() > 0);
    }
}
