//! The characterization study, end to end.
//!
//! Reproduces the paper's experimental procedure: build a workload
//! machine, let it reach steady state, attach the (passive) µPC histogram
//! monitor, measure, exclude the Null process, and reduce the histogram —
//! for each of the five workloads and for their composite, "the sum of
//! the five µPC histograms" (§2.2).
//!
//! # Example
//!
//! ```no_run
//! use vax780_core::Experiment;
//! use vax_workloads::WorkloadKind;
//!
//! let measured = Experiment::new(WorkloadKind::TimesharingLight)
//!     .instructions(200_000)
//!     .run();
//! let analysis = measured.analysis();
//! println!("CPI = {:.2}", analysis.cpi());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
mod experiment;
mod study;
pub mod sweep;

pub use checkpoint::{Checkpoint, CheckpointError};
pub use experiment::{measure, Experiment, MeasuredWorkload};
pub use study::{
    default_workers, CampaignMetrics, CampaignOutcome, CompositeStudy, JobFailure, RetryPolicy,
    MAX_JOB_ATTEMPTS,
};
