//! Campaign-level guarantees: the parallel composite path is
//! bit-identical to the serial one, measured counters exclude the Null
//! process (§2.2) exactly as the histogram board does, and sweeps are
//! deterministic across repeated runs.

use upc_monitor::NullSink;
use vax780_core::sweep::{Sweep, SweepAxis, SweepGrid};
use vax780_core::{measure, Checkpoint, CompositeStudy};
use vax_cpu::{CpuConfig, Psl};
use vax_mem::{HwCounters, MemConfig};
use vax_workloads::{build_machine_with_config, profile, WorkloadKind};

#[test]
fn parallel_composite_is_bit_identical_to_serial() {
    let study = CompositeStudy::new(6_000).warmup(2_000).with_kinds(&[
        WorkloadKind::TimesharingLight,
        WorkloadKind::SciEng,
        WorkloadKind::Commercial,
    ]);
    let (serial, serial_analysis) = study.run_serial();
    let (parallel, parallel_analysis) = study.clone().max_workers(3).run();

    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.name, p.name);
        assert_eq!(s.histogram, p.histogram, "{}: histogram differs", s.name);
        assert_eq!(s.counters, p.counters, "{}: counters differ", s.name);
        assert_eq!(s.instructions, p.instructions);
        assert_eq!(s.cycles, p.cycles);
    }
    assert_eq!(
        serial_analysis.instructions(),
        parallel_analysis.instructions()
    );
    assert_eq!(
        serial_analysis.total_cycles(),
        parallel_analysis.total_cycles()
    );
    assert_eq!(serial_analysis.counters(), parallel_analysis.counters());
    assert_eq!(serial_analysis.cpi(), parallel_analysis.cpi());
}

/// §2.2 Null-process exclusion, both instruments. Park the CPU in the
/// Null process's idle loop (kernel mode, interrupts masked at IPL 31,
/// PC at the two-byte BRB) and run the real measurement loop: every
/// step is an idle step, so the µPC board must record nothing — and
/// after the skew fix, the hardware counters must record nothing
/// either. Before the fix the counters kept ticking (IB fetches, cache
/// and TB lookups for the BRB), inflating counter-derived
/// per-instruction rates relative to the histogram.
#[test]
fn measured_counters_exclude_idle_loop_traffic() {
    let params = profile(WorkloadKind::TimesharingLight);
    let mut machine =
        build_machine_with_config(&params, CpuConfig::default(), MemConfig::default());
    let mut null = NullSink;
    machine.run_instructions(5_000, &mut null).expect("warmup");

    // Force the Null process: the scheduler in the generated kernel
    // never goes idle on its own, so place the CPU there directly.
    let idle_pc = machine.idle_pc;
    machine.cpu.jump(idle_pc);
    *machine.cpu.psl_mut() = Psl::kernel_boot(); // kernel mode, IPL 31
    assert!(machine.at_idle());

    // Sanity: the idle loop does generate hardware traffic when stepped
    // raw — the exclusion has something real to exclude.
    let before = *machine.cpu.mem().counters();
    for _ in 0..10 {
        machine.step(&mut null).expect("idle runs");
    }
    let idle_traffic = machine.cpu.mem().counters().delta_since(&before);
    assert!(machine.at_idle(), "BRB .-loop stays at the idle PC");
    assert!(
        idle_traffic.ib_requests > 0 || idle_traffic.tb_hits > 0,
        "idle loop produced no hardware events: {idle_traffic:?}"
    );

    // The real measurement loop over nothing but idle steps.
    let m = measure(&mut machine, 200);
    assert_eq!(m.instructions, 200, "idle BRBs retire instructions");
    assert_eq!(
        m.histogram.total_cycles(),
        0,
        "µPC board must be suspended during the Null process"
    );
    assert_eq!(
        m.counters,
        HwCounters::new(),
        "hardware counters must not accumulate Null-process traffic"
    );
}

/// A campaign "killed" after one job (the deterministic `halt_after`
/// stand-in for a mid-flight kill) and then resumed from its checkpoint
/// must produce exactly what an uninterrupted campaign produces —
/// per-workload histograms, counters, and the merged analysis.
#[test]
fn checkpointed_resume_is_bit_identical_to_uninterrupted() {
    let study = CompositeStudy::new(4_000)
        .warmup(1_500)
        .with_kinds(&[
            WorkloadKind::TimesharingLight,
            WorkloadKind::Educational,
            WorkloadKind::Commercial,
        ])
        .max_workers(2);
    let (uninterrupted, baseline) = study.run();

    let dir = std::env::temp_dir().join("vax-campaign-resume-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("campaign.ckpt");

    let mut cp = Checkpoint::open(&path, 4_000, 1_500).unwrap();
    let halted = study.run_checkpointed(&mut cp, Some(1)).unwrap();
    assert!(!halted.is_complete());
    assert_eq!(halted.results.len(), 1);
    assert_eq!(halted.pending.len(), 2);
    assert!(halted.failures.is_empty());

    // Re-open the file — exactly what a fresh process does — and resume.
    let mut cp = Checkpoint::open(&path, 4_000, 1_500).unwrap();
    assert_eq!(cp.completed().len(), 1);
    let resumed = study.run_checkpointed(&mut cp, None).unwrap();
    assert!(resumed.is_complete());
    assert_eq!(resumed.resumed, 1);
    assert_eq!(resumed.results.len(), uninterrupted.len());
    for (u, r) in uninterrupted.iter().zip(&resumed.results) {
        assert_eq!(u.name, r.name);
        assert_eq!(u.histogram, r.histogram, "{}: histogram differs", u.name);
        assert_eq!(u.counters, r.counters, "{}: counters differ", u.name);
        assert_eq!(u.instructions, r.instructions);
        assert_eq!(u.cycles, r.cycles);
    }
    assert_eq!(baseline.instructions(), resumed.analysis.instructions());
    assert_eq!(baseline.total_cycles(), resumed.analysis.total_cycles());
    assert_eq!(baseline.cpi(), resumed.analysis.cpi());

    // A third open finds everything done: nothing re-runs.
    let mut cp = Checkpoint::open(&path, 4_000, 1_500).unwrap();
    assert_eq!(cp.completed().len(), 3);
    let replay = study.run_checkpointed(&mut cp, None).unwrap();
    assert_eq!(replay.resumed, 3);
    assert_eq!(replay.metrics.instructions(), 0, "no fresh simulation");
    assert_eq!(baseline.cpi(), replay.analysis.cpi());
}

#[test]
fn sweep_is_deterministic_across_runs() {
    let run = || {
        Sweep::new(SweepGrid::with_axes(&[SweepAxis::WriteBuffer]), 3_000)
            .warmup(1_000)
            .with_kinds(&[WorkloadKind::Educational])
            .max_workers(2)
            .run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.rows.len(), 4); // baseline + three write-buffer depths
    for (ra, rb) in a.rows.iter().zip(&b.rows) {
        assert_eq!(ra.label, rb.label);
        assert_eq!(ra.instructions, rb.instructions);
        assert_eq!(ra.cycles, rb.cycles);
        assert_eq!(ra.cpi, rb.cpi);
        assert_eq!(
            (
                ra.compute,
                ra.read,
                ra.read_stall,
                ra.write,
                ra.write_stall,
                ra.ib_stall
            ),
            (
                rb.compute,
                rb.read,
                rb.read_stall,
                rb.write,
                rb.write_stall,
                rb.ib_stall
            ),
            "{}: breakdown differs between runs",
            ra.label
        );
    }
    // The raw measurements agree too, not just the reductions.
    for (pa, pb) in a.points.iter().zip(&b.points) {
        for (ma, mb) in pa.results.iter().zip(&pb.results) {
            assert_eq!(ma.histogram, mb.histogram);
            assert_eq!(ma.counters, mb.counters);
        }
    }
}
