//! vax-probe: measurement-driven self-characterization.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod coverage;
pub mod diff;
pub mod gen;
pub mod runner;

pub use campaign::{run_probe, ProbeConfig, ProbeOutcome};
pub use coverage::{Coverage, PairKey};
pub use diff::{diff_pair, Bucket, BucketMap, PairDiff};
pub use gen::{ProbeProgram, DEFAULT_ITERS, DEFAULT_UNROLL};
pub use runner::{measure, PairMeasurement};
