//! Microbenchmark image generator: one opcode × mode pair per image.
//!
//! Each probe image contains a data block, helper stubs, a register
//! prologue, and **two** steady-state loops built from the same slot
//! skeleton:
//!
//! * the *calibration* loop (A) runs each slot's setup instructions
//!   only;
//! * the *probe* loop (B) runs the identical setup plus the probe
//!   instruction(s).
//!
//! Both loops execute `unroll × iters` slots under an `ACBL` counter, so
//! the per-µPC issue difference `B − A` divided by `unroll × iters` is
//! the per-execution issue count of the probe instruction alone — the
//! loop skeleton, the setup and the prologue all cancel. Setup is
//! designed to make every probe execution identical: registers are
//! reseeded per slot where the probe mutates them, condition codes are
//! forced so conditional branches always fall through, and operand
//! values are chosen so memory cells reach a fixed point before the
//! measured (post-warmup) runs.

use vax_arch::{AccessType, ArchError, Assembler, DataType, Opcode, Operand, Reg, SpecModeClass};
use vax_ucode::model::{exec_cost, InstShape, SpecShape};

use crate::coverage::PairKey;

/// Default unroll factor: probe slots per loop body.
pub const DEFAULT_UNROLL: u32 = 8;
/// Default `ACBL` iteration count per loop run.
pub const DEFAULT_ITERS: u32 = 32;

/// Base virtual address of every probe image (inside `SimpleMachine`'s
/// 1 MB P0 region).
pub const BASE: u32 = 0x1000;

/// Size of the data block preceding the code.
const DATA_LEN: u32 = 0x100;

// Data-block cell offsets (from BASE).
const CELL_DATA: u32 = 0x00; // 8-byte scalar operand cell
const CELL_PTR: u32 = 0x10; // long: address of CELL_DATA (deferred modes)
const CELL_P1: u32 = 0x18; // packed decimal +0, 2 digits
const CELL_P2: u32 = 0x20; // packed decimal +11, 2 digits
const CELL_S1: u32 = 0x30; // 4-byte string
const CELL_S2: u32 = 0x38; // 4-byte string (equal to S1)
const CELL_SDST: u32 = 0x40; // string destination
const CELL_QENTRY: u32 = 0x48; // self-linked queue entry
const CELL_QHEAD: u32 = 0x50; // self-linked queue head
const SP_SEED: u32 = 0xC0; // stack top; pushes grow down into 0x60..0xC0

/// An assembled probe pair: image, entry points and the static shapes
/// the model is asked to predict.
#[derive(Debug, Clone)]
pub struct ProbeProgram {
    /// The machine code plus data, based at [`BASE`].
    pub image: vax_arch::CodeImage,
    /// Entry of the register-seeding prologue (run once, ends in HALT).
    pub prologue: u32,
    /// Entry of the calibration (setup-only) loop.
    pub cal_entry: u32,
    /// Entry of the probe loop.
    pub probe_entry: u32,
    /// VA of the CHMK service stub, if the probe takes a CHMK trap.
    pub chmk_handler: Option<u32>,
    /// Instructions executed once per slot in the probe loop beyond the
    /// calibration loop, in execution order.
    pub shapes: Vec<InstShape>,
    /// Slots per loop body.
    pub unroll: u32,
    /// `ACBL` iterations per run.
    pub iters: u32,
}

impl ProbeProgram {
    /// Probe executions per run: every shape executes this many times.
    pub fn divisor(&self) -> u64 {
        u64::from(self.unroll) * u64::from(self.iters)
    }
}

/// How the probe instruction must be embedded in a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProbeKind {
    /// Straight-line instruction.
    Plain,
    /// Branch-displacement instruction targeting the next slot.
    Branch,
    /// `CASEx` with a one-entry table targeting the next slot.
    Case,
    /// `BSBx` to an `RSB` stub inside the slot.
    Bsb,
    /// `JMP`/`JSB` through a register seeded with the next slot's VA.
    JmpNext,
    /// `CALLS` to the `.word 0; ret` stub — the paired `RET` rides along.
    Calls,
    /// `CHMK` through the SCB to the service stub.
    Chmk,
    /// Bare `RET` consuming a frame built by the slot setup.
    Ret,
    /// Bare `RSB` consuming a return PC pushed by the slot setup.
    Rsb,
}

/// Condition-code seed forcing a conditional branch to fall through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CcSeed {
    /// `TSTL R0` (R0 = 1): clears N, Z, V, C.
    TstR0,
    /// `TSTL R1` (R1 = 0): sets Z.
    TstR1,
    /// `TSTL R2` (R2 = −1): sets N.
    TstR2,
    /// `MOVL #7FFFFFFF, R3; ADDL2 #1, R3`: sets V.
    SetV,
    /// `CMPL R1, R0` (0 − 1): sets C.
    SetC,
}

/// What an address-access operand position points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AddrTarget {
    /// A data-block cell at this offset from [`BASE`].
    Cell(u32),
    /// The `.word 0; ret` procedure stub.
    Proc,
    /// The VA of the next slot (`JMP`-style flow).
    NextSlot,
}

/// Fully resolved emission plan for one pair.
#[derive(Debug, Clone)]
struct Plan {
    opcode: Opcode,
    kind: ProbeKind,
    /// Specifier operands of the probe instruction (branch displacement
    /// excluded — the slot supplies the target label).
    operands: Vec<Operand>,
    /// Reseed SP at the top of every slot.
    needs_sp: bool,
    /// Condition-code seed, emitted last in the setup.
    cc: Option<CcSeed>,
    /// Per-slot R10 reseed for self-modifying bit branches.
    r10_slot: Option<u32>,
    /// Per-slot R6 reseed (auto-increment/-decrement probe operands).
    r6_slot: Option<u32>,
    // Prologue register seeds.
    r2: u32,
    r6: u32,
    r7: RegSeed,
    r8: u32,
    r9: u32,
    r10: u32,
    /// Initial content of the 8-byte scalar cell.
    data_value: u64,
}

/// A prologue seed that may name the procedure stub (VA known only at
/// assembly time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RegSeed {
    Value(u32),
    Proc,
}

/// Can a specifier of `class` legally (and usefully) be injected at an
/// operand position with this access type?
fn eligible(class: SpecModeClass, access: AccessType) -> bool {
    use AccessType::*;
    match class {
        // Register mode works anywhere except address operands (where it
        // is a reserved addressing mode).
        SpecModeClass::Register => matches!(access, Read | Write | Modify | Field),
        // Literal/immediate cannot be written and cannot supply addresses.
        SpecModeClass::ShortLiteral | SpecModeClass::Immediate => matches!(access, Read),
        // Memory modes: everything but field bases (the probe pins field
        // bases to registers so field costs stay flat).
        _ => matches!(access, Read | Write | Modify | Address),
    }
}

/// The operand value fed to a probed instruction at position `pos`,
/// chosen so execution cost is steady and no probe faults or branches.
fn value_for(op: Opcode, pos: usize, dtype: DataType) -> u64 {
    use Opcode::*;
    match op {
        // Loop limits of 0 guarantee the loop branch falls through.
        Acbw | Acbl => {
            if pos == 0 {
                0
            } else {
                1
            }
        }
        Aoblss | Aobleq => 0,
        // Shift/rotate count of 1.
        Ashl | Ashq | Rotl => 1,
        // Selector 0 hits the one-entry case table.
        Caseb | Casew | Casel => 0,
        // Service code / argument count 0.
        Chmk | Calls => 0,
        // Register mask {R0}.
        Pushr | Popr => 1,
        // LOCC/SKPC: search char 0 (absent from the string), length 4.
        Locc | Skpc => {
            if pos == 0 {
                0
            } else {
                4
            }
        }
        Movc3 | Cmpc3 => 4,
        // Packed decimal lengths: 2 digits.
        Addp4 | Movp | Cmpp3 => 2,
        // Field position 1, size 8 (never crosses a register pair).
        Extv | Extzv | Ffs | Ffc | Cmpv | Cmpzv => {
            if dtype == DataType::Byte {
                8
            } else {
                1
            }
        }
        Insv => {
            if pos == 2 {
                8
            } else {
                1
            }
        }
        // Low-bit tests that must not branch.
        Blbs => 2,
        Blbc => 1,
        // Bit branches: bit position 1 (R10 seed decides set/clear).
        Bbs | Bbc | Bbss | Bbcc | Bbsc | Bbcs | Bbssi | Bbcci => 1,
        // Everything else: 1 keeps divisors nonzero; floats use 0.0.
        _ => {
            if dtype.is_float() {
                0
            } else {
                1
            }
        }
    }
}

/// Address-operand bindings per address position, in order. `None`
/// means every address position points at the scalar cell.
fn address_targets(op: Opcode) -> Option<&'static [AddrTarget]> {
    use AddrTarget::*;
    use Opcode::*;
    Some(match op {
        Insque => &[Cell(CELL_QENTRY), Cell(CELL_QHEAD)],
        Remque => &[Cell(CELL_QENTRY)],
        Movc3 => &[Cell(CELL_S1), Cell(CELL_SDST)],
        Cmpc3 => &[Cell(CELL_S1), Cell(CELL_S2)],
        Locc | Skpc => &[Cell(CELL_S1)],
        Movp | Cmpp3 | Addp4 => &[Cell(CELL_P1), Cell(CELL_P2)],
        Calls => &[Proc],
        Jmp | Jsb => &[NextSlot],
        _ => return None,
    })
}

fn probe_kind(op: Opcode) -> Result<ProbeKind, String> {
    use Opcode::*;
    Ok(match op {
        Ret => ProbeKind::Ret,
        Rsb => ProbeKind::Rsb,
        Jmp | Jsb => ProbeKind::JmpNext,
        Bsbb | Bsbw => ProbeKind::Bsb,
        Calls => ProbeKind::Calls,
        Chmk => ProbeKind::Chmk,
        Caseb | Casew | Casel => ProbeKind::Case,
        Callg | Rei => return Err(format!("{}: not probeable in isolation", op.mnemonic())),
        _ if op.branch_displacement().is_some() => ProbeKind::Branch,
        _ => ProbeKind::Plain,
    })
}

/// Does the probe consume or move SP, requiring a per-slot reseed?
fn needs_sp(op: Opcode, kind: ProbeKind) -> bool {
    use Opcode::*;
    matches!(
        kind,
        ProbeKind::Ret | ProbeKind::Rsb | ProbeKind::Bsb | ProbeKind::Calls | ProbeKind::Chmk
    ) || matches!(op, Pushl | Pushal | Pushr | Popr | Jsb)
}

/// Condition-code seed forcing `op` (a simple conditional branch) to
/// fall through; `None` for everything else.
fn cc_seed(op: Opcode) -> Option<CcSeed> {
    use Opcode::*;
    Some(match op {
        // Fall-through needs Z=1.
        Bneq | Bgtr | Bgtru => CcSeed::TstR1,
        // Fall-through needs all-clear CCs.
        Beql | Bleq | Blss | Blequ | Bvs | Bcs => CcSeed::TstR0,
        // Fall-through needs N=1.
        Bgeq => CcSeed::TstR2,
        Bvc => CcSeed::SetV,
        Bcc => CcSeed::SetC,
        _ => return None,
    })
}

impl Plan {
    fn new(pair: PairKey) -> Result<Plan, String> {
        let op = pair.opcode;
        if exec_cost(op).is_none() {
            return Err(format!("{}: privileged opcode", op.mnemonic()));
        }
        let kind = probe_kind(op)?;
        let templates: Vec<_> = op
            .operands()
            .iter()
            .filter(|t| !t.is_branch_displacement())
            .copied()
            .collect();
        let float_group = templates.iter().any(|t| t.data_type().is_float());

        // Injection position: first operand whose access admits the
        // requested class. A class with no eligible position degrades to
        // the canonical probe (it can only arise from coverage noise).
        let inject = pair.mode.and_then(|class| {
            templates
                .iter()
                .position(|t| eligible(class, t.access()))
                .map(|i| (i, class))
        });

        let mut plan = Plan {
            opcode: op,
            kind,
            operands: Vec::with_capacity(templates.len()),
            needs_sp: needs_sp(op, kind),
            cc: cc_seed(op),
            r10_slot: match op {
                // BBSS sets the tested bit; reseed to all-clear.
                Opcode::Bbss | Opcode::Bbssi => Some(0),
                // BBCC clears the tested bit; reseed to all-set.
                Opcode::Bbcc | Opcode::Bbcci => Some(u32::MAX),
                _ => None,
            },
            r6_slot: None,
            r2: if float_group { 0 } else { u32::MAX },
            r6: 0,
            r7: RegSeed::Value(0),
            r8: 1,
            r9: match op {
                Opcode::Sobgeq | Opcode::Sobgtr => -5i32 as u32,
                _ => 5,
            },
            r10: match op {
                // BBC/BBCC/BBCS fall through while the tested bit is set.
                Opcode::Bbc | Opcode::Bbcc | Opcode::Bbcci | Opcode::Bbcs => u32::MAX,
                _ => 0,
            },
            data_value: 0,
        };

        let targets = address_targets(op);
        let mut addr_ord = 0usize;
        for (i, t) in templates.iter().enumerate() {
            let access = t.access();
            let dtype = t.data_type();
            let injected = match inject {
                Some((pos, class)) if pos == i => Some(class),
                _ => None,
            };
            let operand = if let Some(class) = injected {
                plan.injected_operand(class, access, dtype, op, i, targets, addr_ord)?
            } else {
                plan.canonical_operand(access, dtype, op, i, targets, addr_ord)?
            };
            if access == AccessType::Address {
                addr_ord += 1;
            }
            plan.operands.push(operand);
        }
        Ok(plan)
    }

    /// Resolve the cell an address position binds to (`None` for
    /// proc/next-slot flow targets handled by the slot skeleton).
    fn addr_cell(
        op: Opcode,
        targets: Option<&[AddrTarget]>,
        ord: usize,
    ) -> Result<Option<u32>, String> {
        match targets {
            None => Ok(Some(CELL_DATA)),
            Some(list) => match list.get(ord) {
                Some(AddrTarget::Cell(c)) => Ok(Some(*c)),
                Some(AddrTarget::Proc) | Some(AddrTarget::NextSlot) => Ok(None),
                None => Err(format!(
                    "{}: address position {ord} has no binding",
                    op.mnemonic()
                )),
            },
        }
    }

    fn canonical_operand(
        &mut self,
        access: AccessType,
        dtype: DataType,
        op: Opcode,
        pos: usize,
        targets: Option<&[AddrTarget]>,
        addr_ord: usize,
    ) -> Result<Operand, String> {
        use AccessType::*;
        Ok(match access {
            Read => {
                if dtype.is_float() || dtype == DataType::Quad {
                    // R4:R5 hold 0.0 / quad zero.
                    Operand::Reg(Reg::R4)
                } else {
                    let v = value_for(op, pos, dtype);
                    if v <= 63 {
                        Operand::Literal(v as u8)
                    } else {
                        Operand::Immediate(v)
                    }
                }
            }
            Write | Modify => {
                if matches!(
                    op,
                    Opcode::Acbw
                        | Opcode::Acbl
                        | Opcode::Aoblss
                        | Opcode::Aobleq
                        | Opcode::Sobgeq
                        | Opcode::Sobgtr
                ) {
                    Operand::Reg(Reg::R9)
                } else if dtype.is_float() || dtype == DataType::Quad {
                    Operand::Reg(Reg::R2)
                } else {
                    Operand::Reg(Reg::R10)
                }
            }
            Address => {
                let reg = pool_reg(op, addr_ord)?;
                match Plan::addr_cell(op, targets, addr_ord)? {
                    Some(cell) => {
                        self.bind_pool(reg, RegSeed::Value(BASE + cell));
                        Operand::RegDeferred(reg)
                    }
                    None => {
                        // Proc / next-slot: always through R7; the seed is
                        // the stub VA or a per-slot MOVAL.
                        if targets.and_then(|l| l.get(addr_ord)) == Some(&AddrTarget::Proc) {
                            self.bind_pool(Reg::R7, RegSeed::Proc);
                        }
                        Operand::RegDeferred(Reg::R7)
                    }
                }
            }
            Field => {
                // Field bases stay in registers so field costs are flat:
                // read-only fields in R8, written fields in R10.
                if matches!(op, Opcode::Extv | Opcode::Extzv | Opcode::Ffs | Opcode::Ffc) {
                    Operand::Reg(Reg::R8)
                } else {
                    Operand::Reg(Reg::R10)
                }
            }
            Branch => return Err(format!("{}: branch template as specifier", op.mnemonic())),
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn injected_operand(
        &mut self,
        class: SpecModeClass,
        access: AccessType,
        dtype: DataType,
        op: Opcode,
        pos: usize,
        targets: Option<&[AddrTarget]>,
        addr_ord: usize,
    ) -> Result<Operand, String> {
        use SpecModeClass::*;
        let value = value_for(op, pos, dtype);
        let memory_injection = !matches!(class, Register | ShortLiteral | Immediate);
        if memory_injection {
            // Resolve the memory target. Proc/next-slot flow targets
            // cannot take an injected mode; keep the canonical flow.
            let addr = if access == AccessType::Address {
                match Plan::addr_cell(op, targets, addr_ord)? {
                    Some(cell) => BASE + cell,
                    None => {
                        return self.canonical_operand(access, dtype, op, pos, targets, addr_ord)
                    }
                }
            } else {
                BASE + CELL_DATA
            };
            if access.reads_value() && addr == BASE + CELL_DATA {
                self.data_value = value;
            }
            return Ok(match class {
                RegisterDeferred => {
                    self.r6 = addr;
                    Operand::RegDeferred(Reg::R6)
                }
                Displacement => {
                    // A 4-byte offset keeps the displacement in byte
                    // width — the mode the workloads overwhelmingly use.
                    self.r6 = addr.wrapping_sub(4);
                    Operand::Disp(4, Reg::R6)
                }
                DisplacementDeferred => {
                    self.r6 = (BASE + CELL_PTR).wrapping_sub(4);
                    Operand::DispDeferred(4, Reg::R6)
                }
                AutoIncrement => {
                    self.r6_slot = Some(addr);
                    Operand::AutoIncrement(Reg::R6)
                }
                AutoDecrement => {
                    self.r6_slot = Some(addr + dtype.size_bytes());
                    Operand::AutoDecrement(Reg::R6)
                }
                AutoIncDeferred => {
                    self.r6_slot = Some(BASE + CELL_PTR);
                    Operand::AutoIncDeferred(Reg::R6)
                }
                Absolute => Operand::Absolute(addr),
                Register | ShortLiteral | Immediate => unreachable!(),
            });
        }
        Ok(match class {
            ShortLiteral => Operand::Literal((value & 0x3F) as u8),
            Immediate => Operand::Immediate(value),
            Register => match access {
                AccessType::Read => {
                    if dtype.is_float() || dtype == DataType::Quad {
                        Operand::Reg(Reg::R4)
                    } else {
                        self.r8 = value as u32;
                        Operand::Reg(Reg::R8)
                    }
                }
                // Write/modify/field register injections coincide with
                // the canonical operand.
                _ => self.canonical_operand(access, dtype, op, pos, targets, addr_ord)?,
            },
            _ => unreachable!(),
        })
    }

    fn bind_pool(&mut self, reg: Reg, seed: RegSeed) {
        match reg {
            Reg::R7 => self.r7 = seed,
            Reg::R10 => {
                if let RegSeed::Value(v) = seed {
                    self.r10 = v;
                }
            }
            _ => unreachable!("pool registers are R7 and R10"),
        }
    }
}

/// Pool register for the `ord`-th address-access operand position.
fn pool_reg(op: Opcode, ord: usize) -> Result<Reg, String> {
    match ord {
        0 => Ok(Reg::R7),
        1 => Ok(Reg::R10),
        _ => Err(format!("{}: more than two address operands", op.mnemonic())),
    }
}

/// Assemble the probe pair image.
///
/// # Errors
///
/// Returns text diagnostics for pairs the generator cannot drive
/// (privileged opcodes, unsupported flow shapes) and propagates
/// assembler errors.
pub fn build(pair: PairKey, unroll: u32, iters: u32) -> Result<ProbeProgram, String> {
    if unroll == 0 || iters == 0 || iters > 64 {
        return Err(format!("bad probe geometry: unroll={unroll} iters={iters}"));
    }
    let plan = Plan::new(pair)?;
    let mut asm = Assembler::new(BASE);

    // Data block.
    let mut data = [0u8; DATA_LEN as usize];
    data[CELL_DATA as usize..CELL_DATA as usize + 8]
        .copy_from_slice(&plan.data_value.to_le_bytes());
    data[CELL_PTR as usize..CELL_PTR as usize + 4]
        .copy_from_slice(&(BASE + CELL_DATA).to_le_bytes());
    // Packed +0 and +11 (2 digits: one digit byte plus sign nibble).
    data[CELL_P1 as usize] = 0x00;
    data[CELL_P1 as usize + 1] = 0x0C;
    data[CELL_P2 as usize] = 0x01;
    data[CELL_P2 as usize + 1] = 0x1C;
    for k in 0..4 {
        data[CELL_S1 as usize + k] = 0x01;
        data[CELL_S2 as usize + k] = 0x01;
    }
    for (cell, link) in [(CELL_QENTRY, CELL_QENTRY), (CELL_QHEAD, CELL_QHEAD)] {
        let va = (BASE + link).to_le_bytes();
        data[cell as usize..cell as usize + 4].copy_from_slice(&va);
        data[cell as usize + 4..cell as usize + 8].copy_from_slice(&va);
    }
    asm.bytes(&data);

    let e = |err: ArchError| format!("{}: {err}", pair.label());

    // Stubs.
    let mut proc_va = 0u32;
    if plan.r7 == RegSeed::Proc {
        proc_va = asm.here();
        asm.word(0); // entry mask: save no registers
        asm.inst(Opcode::Ret, &[]).map_err(e)?;
    }
    let mut chmk_handler = None;
    if plan.kind == ProbeKind::Chmk {
        let va = asm.here();
        asm.inst(
            Opcode::Movl,
            &[Operand::AutoIncrement(Reg::Sp), Operand::Reg(Reg::R0)],
        )
        .map_err(e)?;
        asm.inst(Opcode::Rei, &[]).map_err(e)?;
        chmk_handler = Some(va);
    }

    // Prologue.
    let prologue = asm.here();
    let seeds: [(Reg, u32); 11] = [
        (Reg::R0, 1),
        (Reg::R1, 0),
        (Reg::R2, plan.r2),
        (Reg::R3, 0),
        (Reg::R4, 0),
        (Reg::R5, 0),
        (Reg::R6, plan.r6),
        (
            Reg::R7,
            match plan.r7 {
                RegSeed::Value(v) => v,
                RegSeed::Proc => proc_va,
            },
        ),
        (Reg::R8, plan.r8),
        (Reg::R9, plan.r9),
        (Reg::R10, plan.r10),
    ];
    for (reg, v) in seeds {
        asm.inst(
            Opcode::Movl,
            &[Operand::Immediate(u64::from(v)), Operand::Reg(reg)],
        )
        .map_err(e)?;
    }
    asm.inst(Opcode::Halt, &[]).map_err(e)?;

    // The two loops.
    let cal_entry = emit_loop(&mut asm, &plan, unroll, iters, false).map_err(e)?;
    let probe_entry = emit_loop(&mut asm, &plan, unroll, iters, true).map_err(e)?;

    let image = asm.finish().map_err(e)?;
    Ok(ProbeProgram {
        image,
        prologue,
        cal_entry,
        probe_entry,
        chmk_handler,
        shapes: shapes(&plan),
        unroll,
        iters,
    })
}

fn emit_loop(
    asm: &mut Assembler,
    plan: &Plan,
    unroll: u32,
    iters: u32,
    with_probe: bool,
) -> Result<u32, ArchError> {
    let entry = asm.here();
    asm.inst(Opcode::Clrl, &[Operand::Reg(Reg::R11)])?;
    let top = asm.label_here();
    for _ in 0..unroll {
        emit_slot(asm, plan, with_probe)?;
    }
    // ACBL #iters-1, #1, R11: body runs exactly `iters` times.
    asm.branch(
        Opcode::Acbl,
        &[
            Operand::Literal((iters - 1) as u8),
            Operand::Literal(1),
            Operand::Reg(Reg::R11),
        ],
        top,
    )?;
    asm.inst(Opcode::Halt, &[])?;
    Ok(entry)
}

fn emit_slot(asm: &mut Assembler, plan: &Plan, with_probe: bool) -> Result<(), ArchError> {
    let next = asm.new_label();

    // --- setup (identical in both loops) ---
    if plan.needs_sp {
        seed_reg(asm, Reg::Sp, BASE + SP_SEED)?;
    }
    if let Some(v) = plan.r6_slot {
        seed_reg(asm, Reg::R6, v)?;
    }
    match plan.kind {
        ProbeKind::Ret => {
            // Frame for RET, fields ascending from FP:
            // handler, mask (CALLS flag, no registers), saved AP,
            // saved FP, return PC; AP points at a zero argument count.
            asm.inst(Opcode::Pushl, &[Operand::Literal(0)])?;
            asm.inst(
                Opcode::Movl,
                &[Operand::Reg(Reg::Sp), Operand::Reg(Reg::Ap)],
            )?;
            asm.moval_pcrel(next, Operand::Reg(Reg::R10))?;
            asm.inst(Opcode::Pushl, &[Operand::Reg(Reg::R10)])?;
            asm.inst(Opcode::Pushl, &[Operand::Literal(0)])?;
            asm.inst(Opcode::Pushl, &[Operand::Reg(Reg::Ap)])?;
            asm.inst(Opcode::Pushl, &[Operand::Immediate(0x2000)])?;
            asm.inst(Opcode::Pushl, &[Operand::Literal(0)])?;
            asm.inst(
                Opcode::Movl,
                &[Operand::Reg(Reg::Sp), Operand::Reg(Reg::Fp)],
            )?;
        }
        ProbeKind::Rsb => {
            asm.moval_pcrel(next, Operand::Reg(Reg::R10))?;
            asm.inst(Opcode::Pushl, &[Operand::Reg(Reg::R10)])?;
        }
        ProbeKind::JmpNext => {
            asm.moval_pcrel(next, Operand::Reg(Reg::R7))?;
        }
        _ => {}
    }
    if let Some(v) = plan.r10_slot {
        seed_reg(asm, Reg::R10, v)?;
    }
    match plan.cc {
        Some(CcSeed::TstR0) => {
            asm.inst(Opcode::Tstl, &[Operand::Reg(Reg::R0)])?;
        }
        Some(CcSeed::TstR1) => {
            asm.inst(Opcode::Tstl, &[Operand::Reg(Reg::R1)])?;
        }
        Some(CcSeed::TstR2) => {
            asm.inst(Opcode::Tstl, &[Operand::Reg(Reg::R2)])?;
        }
        Some(CcSeed::SetV) => {
            seed_reg(asm, Reg::R3, 0x7FFF_FFFF)?;
            asm.inst(Opcode::Addl2, &[Operand::Literal(1), Operand::Reg(Reg::R3)])?;
        }
        Some(CcSeed::SetC) => {
            asm.inst(
                Opcode::Cmpl,
                &[Operand::Reg(Reg::R1), Operand::Reg(Reg::R0)],
            )?;
        }
        None => {}
    }

    // --- probe (probe loop only) ---
    if with_probe {
        match plan.kind {
            ProbeKind::Plain | ProbeKind::Chmk => {
                asm.inst(plan.opcode, &plan.operands)?;
            }
            ProbeKind::Branch => {
                asm.branch(plan.opcode, &plan.operands, next)?;
            }
            ProbeKind::Case => {
                asm.case(plan.opcode, &plan.operands, &[next])?;
            }
            ProbeKind::Bsb => {
                let hop = asm.new_label();
                asm.branch(plan.opcode, &plan.operands, hop)?;
                asm.branch(Opcode::Brb, &[], next)?;
                asm.place(hop)?;
                asm.inst(Opcode::Rsb, &[])?;
            }
            ProbeKind::JmpNext | ProbeKind::Calls | ProbeKind::Ret | ProbeKind::Rsb => {
                asm.inst(plan.opcode, &plan.operands)?;
            }
        }
    }
    asm.place(next)?;
    Ok(())
}

fn seed_reg(asm: &mut Assembler, reg: Reg, value: u32) -> Result<(), ArchError> {
    asm.inst(
        Opcode::Movl,
        &[Operand::Immediate(u64::from(value)), Operand::Reg(reg)],
    )?;
    Ok(())
}

/// The per-slot instruction shapes the model must predict: the probe
/// instruction plus any companions (RET after CALLS, the CHMK service
/// stub, the RSB/BRB of a BSB hop) in execution order.
fn shapes(plan: &Plan) -> Vec<InstShape> {
    let templates: Vec<_> = plan
        .opcode
        .operands()
        .iter()
        .filter(|t| !t.is_branch_displacement())
        .copied()
        .collect();
    let primary = InstShape {
        opcode: plan.opcode,
        specs: plan
            .operands
            .iter()
            .zip(&templates)
            .map(|(operand, t)| SpecShape {
                class: operand.mode_class(),
                access: t.access(),
                dtype: t.data_type(),
                indexed: operand.is_indexed(),
            })
            .collect(),
    };
    let bare = |opcode: Opcode| InstShape {
        opcode,
        specs: Vec::new(),
    };
    let mut out = vec![primary];
    match plan.kind {
        ProbeKind::Bsb => {
            out.push(bare(Opcode::Rsb));
            out.push(bare(Opcode::Brb));
        }
        ProbeKind::Calls => out.push(bare(Opcode::Ret)),
        ProbeKind::Chmk => {
            out.push(InstShape {
                opcode: Opcode::Movl,
                specs: vec![
                    SpecShape {
                        class: SpecModeClass::AutoIncrement,
                        access: AccessType::Read,
                        dtype: DataType::Long,
                        indexed: false,
                    },
                    SpecShape {
                        class: SpecModeClass::Register,
                        access: AccessType::Write,
                        dtype: DataType::Long,
                        indexed: false,
                    },
                ],
            });
            out.push(bare(Opcode::Rei));
        }
        _ => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(text: &str) -> PairKey {
        PairKey::parse(text).expect("valid pair label")
    }

    #[test]
    fn builds_canonical_and_injected_images() {
        for label in [
            "movl:none",
            "movl:displacement",
            "movl:autoincrement",
            "movl:autodecrement",
            "movl:autoincrement-deferred",
            "movl:displacement-deferred",
            "movl:absolute",
            "addl2:register",
            "brb:none",
            "bneq:none",
            "acbl:none",
            "sobgtr:none",
            "casel:none",
            "calls:short-literal",
            "ret:none",
            "rsb:none",
            "chmk:none",
            "bsbw:none",
            "jmp:none",
            "pushr:none",
            "insque:displacement",
            "remque:none",
            "movc3:none",
            "addp4:none",
            "extv:register",
            "bbss:none",
            "addf2:none",
            "movf:displacement",
            "divl3:none",
        ] {
            let prog = build(pair(label), DEFAULT_UNROLL, DEFAULT_ITERS)
                .unwrap_or_else(|err| panic!("{label}: {err}"));
            assert!(prog.image.end() <= BASE + 0x10_0000, "{label}: image size");
            assert_eq!(prog.divisor(), 256, "{label}");
            assert!(!prog.shapes.is_empty(), "{label}");
            assert_eq!(prog.shapes[0].opcode, pair(label).opcode, "{label}");
        }
    }

    #[test]
    fn probe_loop_is_strictly_longer_than_calibration_loop() {
        let prog = build(pair("movl:none"), DEFAULT_UNROLL, DEFAULT_ITERS).unwrap();
        assert!(prog.probe_entry > prog.cal_entry);
        assert!(prog.image.end() > prog.probe_entry);
    }

    #[test]
    fn rejects_privileged_and_bad_geometry() {
        assert!(build(
            PairKey {
                opcode: Opcode::Mtpr,
                mode: None
            },
            8,
            32
        )
        .is_err());
        assert!(build(pair("movl:none"), 0, 32).is_err());
        assert!(build(pair("movl:none"), 8, 65).is_err());
    }

    #[test]
    fn chmk_probe_has_handler_and_companion_shapes() {
        let prog = build(pair("chmk:none"), 8, 32).unwrap();
        assert!(prog.chmk_handler.is_some());
        let ops: Vec<_> = prog.shapes.iter().map(|s| s.opcode).collect();
        assert_eq!(ops, vec![Opcode::Chmk, Opcode::Movl, Opcode::Rei]);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = build(pair("insque:displacement"), 8, 32).unwrap();
        let b = build(pair("insque:displacement"), 8, 32).unwrap();
        assert_eq!(a.image.bytes, b.image.bytes);
        assert_eq!(a.shapes, b.shapes);
    }
}
