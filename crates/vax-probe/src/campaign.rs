//! The probe campaign: sweep every covered opcode × mode pair, diff
//! each measurement against the static model, and fold the results
//! into an [`InferredTables`] artifact plus a typed lint report.
//!
//! Beyond the coverage pairs, the campaign adds one *reference
//! carrier* per (mode class, access) combination — a single-specifier
//! opcode (`tstl`, `clrl`, `incl`, `pushal`) whose only operand is the
//! injected one, so the first-position specifier buckets for that
//! class belong to it alone and divide down to a standalone mode row.
//! Field access has no single-specifier carrier in the architecture;
//! field-access specifier costs are still verified inside the
//! multi-operand probes that exercise them, they just get no isolated
//! `mode` row in the artifact.

use std::collections::{BTreeMap, BTreeSet};

use upc_monitor::SampleAggregator;
use vax_analysis::probe::InferredTables;
use vax_arch::{AccessType, Opcode, SpecModeClass};
use vax_lint::{Allowlist, Diagnostic, Report, Rule};
use vax_ucode::{ControlStore, MicroAddr, Row};

use crate::coverage::{self, PairKey};
use crate::diff::{diff_pair, mode_row, op_row, BucketMap};
use crate::gen::{DEFAULT_ITERS, DEFAULT_UNROLL};
use crate::runner;

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct ProbeConfig {
    /// Probe instructions per loop body.
    pub unroll: u32,
    /// Loop iterations per measured phase.
    pub iters: u32,
    /// Probe only these pairs instead of the full coverage sweep.
    /// A filtered run skips the completeness and stale-allowlist
    /// checks — it is deliberately partial.
    pub filter: Option<BTreeSet<PairKey>>,
    /// `vax-probe-allow v1` allowlist text for accepted refinements.
    pub allow_text: String,
}

impl Default for ProbeConfig {
    fn default() -> ProbeConfig {
        ProbeConfig {
            unroll: DEFAULT_UNROLL,
            iters: DEFAULT_ITERS,
            filter: None,
            allow_text: "vax-probe-allow v1\n".to_string(),
        }
    }
}

/// What a campaign produces.
#[derive(Debug)]
pub struct ProbeOutcome {
    /// The inferred latency tables (unstamped; the CLI adds host
    /// provenance).
    pub tables: InferredTables,
    /// Typed `probe-*` diagnostics for every disagreement or
    /// measurement failure.
    pub report: Report,
    /// Per-pair sample phases, for `--jsonl`/`--folded` export.
    pub agg: SampleAggregator,
}

/// The single-specifier carrier opcode that isolates `access`, if the
/// architecture has one.
fn carrier(access: AccessType) -> Option<Opcode> {
    match access {
        AccessType::Read => Some(Opcode::Tstl),
        AccessType::Write => Some(Opcode::Clrl),
        AccessType::Modify => Some(Opcode::Incl),
        AccessType::Address => Some(Opcode::Pushal),
        _ => None,
    }
}

/// Stable, whitespace-free artifact key for a Table-8 row.
fn stall_key(row: Row) -> String {
    row.name().to_lowercase().replace([' ', '/'], "-")
}

/// Run the campaign.
///
/// # Errors
///
/// Infrastructure failures only (coverage extraction); per-pair
/// problems land in the returned [`Report`] instead.
pub fn run_probe(config: &ProbeConfig) -> Result<ProbeOutcome, String> {
    let cs = ControlStore::build();
    let map = BucketMap::new(&cs);
    let cov = coverage::collect()?;
    let (mut allow, mut report) = Allowlist::parse(&config.allow_text);
    let mut tables = InferredTables::new(u64::from(config.unroll), u64::from(config.iters));
    let mut agg = SampleAggregator::new();

    // Reference carriers, keyed by the pair that measures them.
    let mut reference: BTreeMap<PairKey, (SpecModeClass, AccessType)> = BTreeMap::new();
    for &(class, access) in &cov.accesses {
        if let Some(op) = carrier(access) {
            reference.insert(
                PairKey {
                    opcode: op,
                    mode: Some(class),
                },
                (class, access),
            );
        }
    }

    let mut targets: BTreeSet<PairKey> = cov.pairs.clone();
    targets.extend(reference.keys().copied());
    if let Some(filter) = &config.filter {
        targets = filter.clone();
    }

    for &pair in &targets {
        let label = pair.label();
        let mode_key = match pair.mode {
            Some(class) => class.key().to_string(),
            None => "none".to_string(),
        };
        let pair_id = (pair.opcode.mnemonic().to_string(), mode_key);
        match runner::measure(pair, config.unroll, config.iters, &mut agg) {
            Ok(m) => {
                let diff = diff_pair(&cs, &map, &m, &mut allow, &mut report);
                tables.pairs.insert(pair_id, diff.ok);
                if pair.mode.is_none() {
                    tables.ops.insert(
                        pair.opcode.mnemonic().to_string(),
                        op_row(&cs, &m, &diff.per_exec),
                    );
                }
                if let Some(&(class, access)) = reference.get(&pair) {
                    tables.modes.insert(
                        (class.key().to_string(), access.key().to_string()),
                        mode_row(&cs, class, &diff.per_exec),
                    );
                }
                for (&addr, &stalls) in &m.stall_delta {
                    if stalls > 0 {
                        let key = stall_key(cs.class(MicroAddr::new(addr)).row);
                        *tables.stall_rows.entry(key).or_insert(0) += stalls as u64;
                    }
                }
            }
            Err(err) => {
                report.push(Diagnostic::error(Rule::ProbeCoverage, &label, err));
                tables.pairs.insert(pair_id, false);
            }
        }
    }

    if config.filter.is_none() {
        for pair in &cov.pairs {
            let mode_key = match pair.mode {
                Some(class) => class.key().to_string(),
                None => "none".to_string(),
            };
            if !tables
                .pairs
                .contains_key(&(pair.opcode.mnemonic().to_string(), mode_key))
            {
                report.push(Diagnostic::error(
                    Rule::ProbeCoverage,
                    pair.label(),
                    "covered pair was never probed".to_string(),
                ));
            }
        }
        allow.report_unused(&mut report);
    }

    Ok(ProbeOutcome {
        tables,
        report,
        agg,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filtered(labels: &[&str]) -> ProbeConfig {
        ProbeConfig {
            filter: Some(
                labels
                    .iter()
                    .map(|l| PairKey::parse(l).expect("valid pair"))
                    .collect(),
            ),
            ..ProbeConfig::default()
        }
    }

    #[test]
    fn filtered_campaign_fills_tables_and_stays_clean() {
        let mut config = filtered(&["movl:none", "movl:displacement", "tstl:displacement"]);
        config.allow_text = "vax-probe-allow v1\nmode displacement * compute\n".to_string();
        let out = run_probe(&config).expect("campaign runs");
        assert_eq!(out.report.errors(), 0, "\n{}", out.report.render_text());
        assert!(out.tables.ops.contains_key("movl"));
        let movl = out.tables.ops["movl"];
        assert_eq!(movl.entry, 1, "movl executes in its entry slot alone");
        assert!(out
            .tables
            .modes
            .contains_key(&("displacement".to_string(), "read".to_string())));
        assert_eq!(out.tables.pairs.len(), 3);
        assert!(out.tables.pairs.values().all(|&ok| ok));
    }

    #[test]
    fn probe_refutes_the_displacement_compute_claim() {
        // The EBOX folds a byte displacement's address add into the
        // entry cycle (vax-cpu specifier fast path); the static model
        // claims a compute issue anyway. Without the allowlist the
        // probe must refute the table — this is the measurement the
        // checked-in PROBE_ALLOW.txt entry records.
        let config = filtered(&["movl:displacement"]);
        let out = run_probe(&config).expect("campaign runs");
        assert_eq!(out.report.errors(), 1, "\n{}", out.report.render_text());
        let text = out.report.render_text();
        assert!(
            text.contains("probe-mode")
                && text.contains("mode displacement read compute")
                && text.contains("model claims 1, measured 0"),
            "unexpected diagnostics:\n{text}"
        );
        assert!(!out.tables.pairs[&("movl".to_string(), "displacement".to_string())]);
    }

    #[test]
    fn artifact_text_is_deterministic() {
        let config = filtered(&["incl:register-deferred", "addl2:none"]);
        let a = run_probe(&config).expect("campaign runs").tables.to_text();
        let b = run_probe(&config).expect("campaign runs").tables.to_text();
        assert_eq!(a, b);
    }
}
