//! Probe execution: run one pair's calibration and probe loops under
//! the full instrument stack and difference the per-µPC histograms.
//!
//! Each pair runs five times on a fresh machine: the register prologue,
//! one unmonitored warm-up of each loop (so memory cells, caches and
//! the TB reach steady state), then a measured run of each loop under
//! the histogram board, the event tracer, the per-phase sample
//! aggregator and the hardware counters simultaneously. Both measured
//! runs must reconcile exactly across all three instruments before the
//! differential is trusted.

use std::collections::BTreeMap;

use upc_monitor::{Command, CycleSink, Histogram, HistogramBoard, NullSink, SampleAggregator};
use vax_analysis::reconcile::reconcile;
use vax_cpu::harness::SimpleMachine;
use vax_cpu::{scb, CpuError};
use vax_trace::Tracer;

use crate::coverage::PairKey;
use crate::gen::{self, ProbeProgram};

/// Instruction budget per loop run — orders of magnitude above any
/// healthy probe loop, so hitting it means runaway control flow.
const RUN_CAP: u64 = 1_000_000;

/// Ring capacity for the per-run tracer. Only the tracer's *counters*
/// feed reconciliation, so a small ring (events drop harmlessly) keeps
/// the campaign cheap.
const TRACE_RING: usize = 1024;

/// The measured differential for one pair.
#[derive(Debug, Clone)]
pub struct PairMeasurement {
    /// The probed pair.
    pub pair: PairKey,
    /// The generated program (shapes, geometry).
    pub program: ProbeProgram,
    /// Per-µPC issue delta (probe − calibration), raw over the whole
    /// run; divide by [`ProbeProgram::divisor`] for per-execution
    /// counts.
    pub issue_delta: BTreeMap<u16, i64>,
    /// Per-µPC stall-cycle delta (probe − calibration). Stalls are
    /// timing-dependent evidence, not verified claims.
    pub stall_delta: BTreeMap<u16, i64>,
    /// Did every measured run reconcile exactly across the tracer, the
    /// histogram board and the hardware counters?
    pub reconciled: bool,
}

/// Build, warm and measure one pair, charging measured samples to
/// `agg` under the `<pair-label>/cal` and `<pair-label>/probe` phases.
///
/// # Errors
///
/// Text diagnostics for generation failures, unexpected faults, or
/// loops that fail to halt.
pub fn measure(
    pair: PairKey,
    unroll: u32,
    iters: u32,
    agg: &mut SampleAggregator,
) -> Result<PairMeasurement, String> {
    let label = pair.label();
    let program = gen::build(pair, unroll, iters)?;
    let mut machine = SimpleMachine::with_code(&program.image);
    if let Some(handler) = program.chmk_handler {
        machine.cpu.set_scb_vector(scb::CHMK, handler);
    }

    run_quiet(&mut machine, program.prologue, &label, "prologue")?;
    run_quiet(&mut machine, program.cal_entry, &label, "warm-cal")?;
    run_quiet(&mut machine, program.probe_entry, &label, "warm-probe")?;

    agg.trace_phase(&label, true);
    let cal = instrumented_run(&mut machine, program.cal_entry, agg, &label, "cal");
    let probe = cal.and_then(|cal| {
        instrumented_run(&mut machine, program.probe_entry, agg, &label, "probe")
            .map(|probe| (cal, probe))
    });
    agg.trace_phase(&label, false);
    let (cal, probe) = probe?;

    let mut issue_delta: BTreeMap<u16, i64> = BTreeMap::new();
    let mut stall_delta: BTreeMap<u16, i64> = BTreeMap::new();
    for (addr, issues, stalls) in probe.hist.nonzero() {
        if issues > 0 {
            issue_delta.insert(addr.value(), issues as i64);
        }
        if stalls > 0 {
            stall_delta.insert(addr.value(), stalls as i64);
        }
    }
    for (addr, issues, stalls) in cal.hist.nonzero() {
        if issues > 0 {
            *issue_delta.entry(addr.value()).or_insert(0) -= issues as i64;
        }
        if stalls > 0 {
            *stall_delta.entry(addr.value()).or_insert(0) -= stalls as i64;
        }
    }
    issue_delta.retain(|_, v| *v != 0);
    stall_delta.retain(|_, v| *v != 0);

    Ok(PairMeasurement {
        pair,
        program,
        issue_delta,
        stall_delta,
        reconciled: cal.reconciled && probe.reconciled,
    })
}

struct RunCapture {
    hist: Histogram,
    reconciled: bool,
}

fn run_to_halt<S: CycleSink>(
    machine: &mut SimpleMachine,
    entry: u32,
    sink: &mut S,
    label: &str,
    what: &str,
) -> Result<(), String> {
    machine.cpu.jump(entry);
    match machine.cpu.run(RUN_CAP, sink) {
        Err(CpuError::Halted { .. }) => Ok(()),
        Err(CpuError::UnhandledFault { fault, pc }) => Err(format!(
            "{label}: {what}: unhandled fault {fault:?} at {pc:#x}"
        )),
        Err(other) => Err(format!("{label}: {what}: {other:?}")),
        Ok(_) => Err(format!(
            "{label}: {what}: did not halt within {RUN_CAP} instructions"
        )),
    }
}

fn run_quiet(
    machine: &mut SimpleMachine,
    entry: u32,
    label: &str,
    what: &str,
) -> Result<(), String> {
    run_to_halt(machine, entry, &mut NullSink, label, what)
}

fn instrumented_run(
    machine: &mut SimpleMachine,
    entry: u32,
    agg: &mut SampleAggregator,
    label: &str,
    phase: &str,
) -> Result<RunCapture, String> {
    let hw_base = *machine.cpu.mem().counters();
    let mut board = HistogramBoard::new();
    board.execute(Command::Start);
    let mut tracer = Tracer::with_capacity(TRACE_RING);
    agg.trace_phase(phase, true);
    let outcome = run_to_halt(
        machine,
        entry,
        &mut ((&mut board, &mut tracer), &mut *agg),
        label,
        phase,
    );
    agg.trace_phase(phase, false);
    board.execute(Command::Stop);
    outcome?;
    let hist = board.into_histogram();
    let hw = machine.cpu.mem().counters().delta_since(&hw_base);
    let rec = reconcile(&tracer, &hist, &hw, machine.cpu.pending_ib_tb_miss());
    Ok(RunCapture {
        hist,
        reconciled: rec.is_ok(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{DEFAULT_ITERS, DEFAULT_UNROLL};

    fn run(label: &str) -> PairMeasurement {
        let pair = PairKey::parse(label).expect("valid pair");
        let mut agg = SampleAggregator::new();
        measure(pair, DEFAULT_UNROLL, DEFAULT_ITERS, &mut agg)
            .unwrap_or_else(|err| panic!("{label}: {err}"))
    }

    #[test]
    fn movl_probe_reconciles_and_yields_clean_deltas() {
        let m = run("movl:none");
        assert!(m.reconciled, "three-way reconciliation failed");
        let divisor = m.program.divisor() as i64;
        // The exactness invariant holds only at checked buckets; the
        // abort row soaks up the periodic consistency patch and is by
        // design outside the map.
        let cs = vax_ucode::ControlStore::build();
        let map = crate::diff::BucketMap::new(&cs);
        let mut checked = 0;
        for (&addr, &delta) in &m.issue_delta {
            if map.get(addr).is_none() {
                continue;
            }
            checked += 1;
            assert!(delta > 0, "negative issue delta {delta} at {addr:#06x}");
            assert_eq!(
                delta % divisor,
                0,
                "issue delta {delta} at {addr:#06x} not a multiple of {divisor}"
            );
        }
        assert!(checked > 0, "no checked buckets saw a delta");
    }

    #[test]
    fn branching_probes_halt_and_reconcile() {
        for label in ["brb:none", "bneq:none", "acbl:none", "casel:none"] {
            let m = run(label);
            assert!(m.reconciled, "{label}: reconciliation failed");
        }
    }

    #[test]
    fn flow_probes_halt_and_reconcile() {
        for label in [
            "ret:none",
            "rsb:none",
            "calls:none",
            "chmk:none",
            "jmp:none",
        ] {
            let m = run(label);
            assert!(m.reconciled, "{label}: reconciliation failed");
        }
    }

    #[test]
    fn measurement_is_deterministic() {
        let a = run("insque:none");
        let b = run("insque:none");
        assert_eq!(a.issue_delta, b.issue_delta);
        assert_eq!(a.stall_delta, b.stall_delta);
    }

    #[test]
    fn samples_land_under_pair_phases() {
        let pair = PairKey::parse("movl:none").unwrap();
        let mut agg = SampleAggregator::new();
        measure(pair, DEFAULT_UNROLL, DEFAULT_ITERS, &mut agg).unwrap();
        let segments: Vec<_> = agg.segments().map(str::to_string).collect();
        assert!(
            segments.iter().any(|s| s == "movl:none/cal"),
            "{segments:?}"
        );
        assert!(
            segments.iter().any(|s| s == "movl:none/probe"),
            "{segments:?}"
        );
        let cal = agg.phase_totals("movl:none/cal");
        assert!(cal.0 > 0, "no issues charged to the cal phase");
    }
}
