//! What the probe must measure: every opcode × addressing-mode-class
//! pair the five built-in workload profiles actually execute.
//!
//! Coverage is extracted *statically*: each profile's process images are
//! regenerated (generation is seed-deterministic), decoded by the
//! `vax-lint` image checker, and every decoded instruction contributes
//! its opcode and the mode class of each operand specifier. Indexed
//! specifiers collapse to their base class — the index prefix is a
//! separate routine the probe checks via the base-class probes.
//!
//! Privileged and context-switch opcodes ([`exec_cost`] returns `None`)
//! are excluded: the probe never drives them, by design.

use std::collections::BTreeSet;

use vax_arch::{AccessType, Opcode, SpecModeClass};
use vax_lint::ImageModel;
use vax_ucode::model::exec_cost;
use vax_workloads::{plan_processes, profile, WorkloadKind};

/// One probe target: an opcode, either in its canonical operand context
/// (`mode == None`) or with one operand forced into a specific mode
/// class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct PairKey {
    /// The opcode under the microscope.
    pub opcode: Opcode,
    /// The mode class injected into the first eligible operand
    /// position, or `None` for the all-canonical probe.
    pub mode: Option<SpecModeClass>,
}

impl PairKey {
    /// Stable display label, `<mnemonic>:<class-key>` or
    /// `<mnemonic>:none`.
    pub fn label(&self) -> String {
        match self.mode {
            Some(class) => format!("{}:{}", self.opcode.mnemonic(), class.key()),
            None => format!("{}:none", self.opcode.mnemonic()),
        }
    }

    /// Parse a `<mnemonic>:<class-key|none>` label (CLI `--pair`).
    pub fn parse(text: &str) -> Option<PairKey> {
        let (mn, mode) = text.split_once(':')?;
        let opcode = Opcode::from_mnemonic(mn)?;
        let mode = match mode {
            "none" => None,
            key => Some(SpecModeClass::from_key(key)?),
        };
        Some(PairKey { opcode, mode })
    }
}

/// Everything the probe campaign must cover.
#[derive(Debug, Clone, Default)]
pub struct Coverage {
    /// Opcode × mode pairs, including the canonical (`mode == None`)
    /// probe of every covered opcode.
    pub pairs: BTreeSet<PairKey>,
    /// (class, access) combinations seen on any specifier; drives the
    /// reference probes that populate the per-mode table rows.
    pub accesses: BTreeSet<(SpecModeClass, AccessType)>,
}

/// Extract coverage from the five built-in profiles.
///
/// # Errors
///
/// Propagates workload generation failures as text (they indicate a
/// broken profile, not a probe problem).
pub fn collect() -> Result<Coverage, String> {
    let mut cov = Coverage::default();
    for kind in WorkloadKind::ALL {
        let params = profile(kind);
        let plans = plan_processes(&params).map_err(|e| format!("{}: {e}", kind.name()))?;
        for (i, plan) in plans.iter().enumerate() {
            let model = ImageModel::from_process(&format!("{}-p{i}", kind.name()), plan);
            let (decoded, _) = vax_lint::check_image(&model);
            let Some(image) = decoded else {
                return Err(format!("{}-p{i}: image failed to decode", kind.name()));
            };
            for li in image.insts() {
                let op = li.inst.opcode;
                if exec_cost(op).is_none() {
                    continue;
                }
                cov.pairs.insert(PairKey {
                    opcode: op,
                    mode: None,
                });
                let templates = li
                    .inst
                    .opcode
                    .operands()
                    .iter()
                    .filter(|t| !t.is_branch_displacement());
                for (spec, t) in li.inst.specs.iter().zip(templates) {
                    let class = spec.mode_class();
                    cov.pairs.insert(PairKey {
                        opcode: op,
                        mode: Some(class),
                    });
                    cov.accesses.insert((class, t.access()));
                }
            }
        }
    }
    Ok(cov)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_round_trips() {
        let pair = PairKey {
            opcode: Opcode::Movl,
            mode: Some(SpecModeClass::Displacement),
        };
        assert_eq!(pair.label(), "movl:displacement");
        assert_eq!(PairKey::parse(&pair.label()), Some(pair));
        let canon = PairKey {
            opcode: Opcode::Addl2,
            mode: None,
        };
        assert_eq!(PairKey::parse("addl2:none"), Some(canon));
        assert_eq!(PairKey::parse("nope:none"), None);
        assert_eq!(PairKey::parse("movl:nope"), None);
    }

    #[test]
    fn coverage_is_nonempty_and_excludes_privileged() {
        let cov = collect().expect("profiles generate");
        assert!(cov.pairs.len() > 50, "got {}", cov.pairs.len());
        assert!(!cov.pairs.iter().any(|p| exec_cost(p.opcode).is_none()));
        // Every mode pair has a canonical sibling.
        for p in &cov.pairs {
            assert!(cov.pairs.contains(&PairKey {
                opcode: p.opcode,
                mode: None
            }));
        }
    }
}

#[cfg(test)]
mod dump {
    #[test]
    #[ignore]
    fn dump_coverage() {
        let cov = super::collect().unwrap();
        for p in &cov.pairs {
            println!("PAIR {}", p.label());
        }
        for (c, a) in &cov.accesses {
            println!("ACC {} {}", c.key(), a.key());
        }
    }
}
