//! Latency-table refutation: compare a pair's measured per-execution
//! issue counts against the static model, bucket by bucket.
//!
//! The control-store layout gives every *checked* µPC location a
//! semantic identity ([`Bucket`]): the IRD1 dispatch, a specifier slot
//! at a (position, mode-class) coordinate, an opcode's execute slot, or
//! a branch-taken redirect. The differ expands the model's claims for
//! the probe's instruction shapes over those buckets, divides the
//! measured histogram delta down to per-execution counts (which must
//! divide exactly — a ragged delta is an internally inconsistent
//! measurement, never an acceptable refinement), and classifies every
//! disagreement as a typed `vax-lint` diagnostic. Locations outside
//! the bucket map — stall dispatches, microtraps, the abort row the
//! periodic consistency patch executes — carry no model claim and are
//! ignored.

use std::collections::{BTreeMap, BTreeSet};

use vax_arch::{AccessType, BranchClass, Opcode, SpecModeClass};
use vax_lint::{Allowlist, Diagnostic, Report, Rule};
use vax_ucode::model::{exec_cost, expected_issues};
use vax_ucode::{ControlStore, MicroAddr, SpecPosition};

use vax_analysis::probe::{ModeRow, OpRow};

use crate::runner::PairMeasurement;

/// Semantic identity of a checked µPC bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bucket {
    /// The IRD1 initial-decode dispatch.
    Ird1,
    /// The index-prefix routine at a specifier position.
    SpecIndex(SpecPosition),
    /// Specifier-entry slot.
    SpecEntry(SpecPosition, SpecModeClass),
    /// Specifier compute slot.
    SpecCompute(SpecPosition, SpecModeClass),
    /// Specifier operand-read slot.
    SpecRead(SpecPosition, SpecModeClass),
    /// Specifier operand-write slot.
    SpecWrite(SpecPosition, SpecModeClass),
    /// Execute-routine entry for an opcode.
    ExecEntry(Opcode),
    /// Execute compute slot.
    ExecCompute(Opcode),
    /// Execute read slot.
    ExecRead(Opcode),
    /// Execute write slot.
    ExecWrite(Opcode),
    /// Branch-taken redirect for a branch class.
    Taken(BranchClass),
}

/// Reverse map from µPC addresses to their checked-bucket identity.
#[derive(Debug, Clone)]
pub struct BucketMap {
    map: BTreeMap<u16, Bucket>,
}

impl BucketMap {
    /// Build the reverse map from the control-store layout. Privileged
    /// opcodes (no model row) stay unmapped: the probe never drives
    /// them, so their execute slots carry no claim to check.
    pub fn new(cs: &ControlStore) -> BucketMap {
        let mut map: BTreeMap<u16, Bucket> = BTreeMap::new();
        let mut put = |addr: MicroAddr, b: Bucket| {
            let prev = map.insert(addr.value(), b);
            debug_assert!(prev.is_none(), "bucket collision at {:#06x}", addr.value());
        };
        put(cs.ird1(), Bucket::Ird1);
        for pos in [SpecPosition::First, SpecPosition::Rest] {
            put(cs.spec_index(pos), Bucket::SpecIndex(pos));
            for class in SpecModeClass::ALL {
                put(cs.spec_entry(pos, class), Bucket::SpecEntry(pos, class));
                put(cs.spec_compute(pos, class), Bucket::SpecCompute(pos, class));
                put(cs.spec_read(pos, class), Bucket::SpecRead(pos, class));
                put(cs.spec_write(pos, class), Bucket::SpecWrite(pos, class));
            }
        }
        for &op in Opcode::ALL {
            if exec_cost(op).is_none() {
                continue;
            }
            put(cs.exec_entry(op), Bucket::ExecEntry(op));
            put(cs.exec_compute(op), Bucket::ExecCompute(op));
            put(cs.exec_read(op), Bucket::ExecRead(op));
            put(cs.exec_write(op), Bucket::ExecWrite(op));
        }
        for class in BranchClass::ALL {
            put(cs.branch_taken(class), Bucket::Taken(class));
        }
        BucketMap { map }
    }

    /// Bucket identity of `addr`, if it is checked.
    pub fn get(&self, addr: u16) -> Option<Bucket> {
        self.map.get(&addr).copied()
    }

    /// Number of checked locations.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the map empty (never, in practice)?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Per-pair diff outcome.
#[derive(Debug, Clone)]
pub struct PairDiff {
    /// No measurement errors and no *unaccepted* model disagreement.
    /// Allowlisted refinements leave the pair ok.
    pub ok: bool,
    /// Measured per-execution issue counts at checked buckets.
    pub per_exec: BTreeMap<u16, u64>,
}

/// Diff one measured pair against the model, appending typed
/// diagnostics to `report` and marking used allowlist entries.
pub fn diff_pair(
    cs: &ControlStore,
    map: &BucketMap,
    m: &PairMeasurement,
    allow: &mut Allowlist,
    report: &mut Report,
) -> PairDiff {
    let label = m.pair.label();
    let divisor = m.program.divisor() as i64;
    let errors_before = report.errors();

    // The model's claims, summed over every instruction the probe loop
    // executes per slot beyond the calibration loop.
    let mut expected: BTreeMap<u16, u64> = BTreeMap::new();
    for shape in &m.program.shapes {
        match expected_issues(cs, shape) {
            Some(claims) => {
                for (addr, n) in claims {
                    *expected.entry(addr).or_insert(0) += n;
                }
            }
            None => {
                report.push(Diagnostic::error(
                    Rule::ProbeCoverage,
                    &label,
                    format!(
                        "model does not characterize companion opcode {}",
                        shape.opcode.mnemonic()
                    ),
                ));
                return PairDiff {
                    ok: false,
                    per_exec: BTreeMap::new(),
                };
            }
        }
    }

    if !m.reconciled {
        report.push(Diagnostic::error(
            Rule::ProbeMeasurement,
            &label,
            "three-way instrument reconciliation failed on a measured run".to_string(),
        ));
    }

    // Divide the raw deltas down to per-execution counts at checked
    // buckets. Negative or ragged deltas are measurement failures.
    let mut per_exec: BTreeMap<u16, u64> = BTreeMap::new();
    for (&addr, &delta) in &m.issue_delta {
        if map.get(addr).is_none() {
            continue;
        }
        if delta < 0 || delta % divisor != 0 {
            report.push(
                Diagnostic::error(
                    Rule::ProbeMeasurement,
                    &label,
                    format!(
                        "checked bucket {addr:#06x}: issue delta {delta} is not a clean \
                         multiple of {divisor} executions"
                    ),
                )
                .at(u64::from(addr)),
            );
            continue;
        }
        if delta > 0 {
            per_exec.insert(addr, (delta / divisor) as u64);
        }
    }

    // Bucket-by-bucket comparison.
    let addrs: BTreeSet<u16> = expected.keys().chain(per_exec.keys()).copied().collect();
    for addr in addrs {
        let claimed = expected.get(&addr).copied().unwrap_or(0);
        let measured = per_exec.get(&addr).copied().unwrap_or(0);
        if claimed == measured {
            continue;
        }
        let Some(bucket) = map.get(addr) else {
            // Expanded claims only land on mapped buckets; anything else
            // is a layout/model inconsistency.
            report.push(
                Diagnostic::error(
                    Rule::ProbeMeasurement,
                    &label,
                    format!("model claim at unmapped µPC {addr:#06x}"),
                )
                .at(u64::from(addr)),
            );
            continue;
        };
        classify(bucket, addr, claimed, measured, m, &label, allow, report);
    }

    PairDiff {
        ok: m.reconciled && report.errors() == errors_before,
        per_exec,
    }
}

#[allow(clippy::too_many_arguments)]
fn classify(
    bucket: Bucket,
    addr: u16,
    claimed: u64,
    measured: u64,
    m: &PairMeasurement,
    label: &str,
    allow: &mut Allowlist,
    report: &mut Report,
) {
    use Bucket::*;
    let (rule, what, allowed) = match bucket {
        Ird1 => (
            Rule::ProbeMeasurement,
            "decode dispatch (ird1)".to_string(),
            false,
        ),
        SpecIndex(pos) => (
            Rule::ProbeMeasurement,
            format!("index prefix at {pos:?}"),
            false,
        ),
        SpecEntry(pos, class)
        | SpecCompute(pos, class)
        | SpecRead(pos, class)
        | SpecWrite(pos, class) => {
            let field = match bucket {
                SpecEntry(..) => "entry",
                SpecCompute(..) => "compute",
                SpecRead(..) => "read",
                SpecWrite(..) => "write",
                _ => unreachable!(),
            };
            match spec_access(m, pos, class) {
                Some(access) => (
                    Rule::ProbeMode,
                    format!("mode {} {} {field}", class.key(), access.key()),
                    allow.allows_mode(class, access, field),
                ),
                None => (
                    Rule::ProbeMeasurement,
                    format!(
                        "specifier issues for {} at {pos:?} with no matching operand",
                        class.key()
                    ),
                    false,
                ),
            }
        }
        ExecEntry(op) | ExecCompute(op) | ExecRead(op) | ExecWrite(op) => {
            let field = match bucket {
                ExecEntry(..) => "entry",
                ExecCompute(..) => "compute",
                ExecRead(..) => "read",
                ExecWrite(..) => "write",
                _ => unreachable!(),
            };
            (
                Rule::ProbeOpcode,
                format!("op {} {field}", op.mnemonic()),
                allow.allows_op(op, field),
            )
        }
        Taken(class) => match taken_owner(m, class) {
            Some(op) => (
                Rule::ProbeOpcode,
                format!("op {} taken ({})", op.mnemonic(), class.name()),
                allow.allows_op(op, "taken"),
            ),
            None => (
                Rule::ProbeMeasurement,
                format!(
                    "branch-taken issues for {} with no claiming shape",
                    class.name()
                ),
                false,
            ),
        },
    };
    if allowed {
        return;
    }
    report.push(
        Diagnostic::error(
            rule,
            label,
            format!("{what}: model claims {claimed}, measured {measured}"),
        )
        .at(u64::from(addr)),
    );
}

/// The access type of the probe operand occupying (`pos`, `class`) —
/// the coordinate a specifier bucket disagreement must be charged to.
fn spec_access(m: &PairMeasurement, pos: SpecPosition, class: SpecModeClass) -> Option<AccessType> {
    for shape in &m.program.shapes {
        for (i, spec) in shape.specs.iter().enumerate() {
            let spec_pos = if i == 0 {
                SpecPosition::First
            } else {
                SpecPosition::Rest
            };
            if spec_pos == pos && spec.class == class {
                return Some(spec.access);
            }
        }
    }
    None
}

/// The shape opcode whose execute routine claims branch class `class`.
fn taken_owner(m: &PairMeasurement, class: BranchClass) -> Option<Opcode> {
    m.program
        .shapes
        .iter()
        .map(|s| s.opcode)
        .find(|&op| exec_cost(op).and_then(|c| c.taken) == Some(class))
}

/// Extract the measured opcode row from a canonical pair's per-exec
/// counts. The `taken` slot is measured only when the probed opcode is
/// the *sole* shape claiming its branch class (a CHMK probe's REI
/// companion shares the system-branch bucket); otherwise the model's
/// one-redirect claim is recorded.
pub fn op_row(cs: &ControlStore, m: &PairMeasurement, per_exec: &BTreeMap<u16, u64>) -> OpRow {
    let op = m.pair.opcode;
    let g = |addr: MicroAddr| per_exec.get(&addr.value()).copied().unwrap_or(0);
    let taken = match exec_cost(op).and_then(|c| c.taken) {
        Some(class) => {
            let claimants = m
                .program
                .shapes
                .iter()
                .filter(|s| exec_cost(s.opcode).and_then(|c| c.taken) == Some(class))
                .count();
            if claimants == 1 {
                g(cs.branch_taken(class))
            } else {
                1
            }
        }
        None => 0,
    };
    OpRow {
        entry: g(cs.exec_entry(op)),
        compute: g(cs.exec_compute(op)),
        read: g(cs.exec_read(op)),
        write: g(cs.exec_write(op)),
        taken,
    }
}

/// Extract the measured mode row from a reference pair's per-exec
/// counts: the injected operand is the only first-position specifier,
/// so the first-position buckets for its class belong to it alone.
pub fn mode_row(cs: &ControlStore, class: SpecModeClass, per_exec: &BTreeMap<u16, u64>) -> ModeRow {
    let g = |addr: MicroAddr| per_exec.get(&addr.value()).copied().unwrap_or(0);
    let pos = SpecPosition::First;
    ModeRow {
        entry: g(cs.spec_entry(pos, class)),
        index: g(cs.spec_index(pos)),
        compute: g(cs.spec_compute(pos, class)),
        read: g(cs.spec_read(pos, class)),
        write: g(cs.spec_write(pos, class)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::PairKey;
    use crate::gen::{DEFAULT_ITERS, DEFAULT_UNROLL};
    use upc_monitor::SampleAggregator;

    fn measure(label: &str) -> PairMeasurement {
        let pair = PairKey::parse(label).expect("valid pair");
        let mut agg = SampleAggregator::new();
        crate::runner::measure(pair, DEFAULT_UNROLL, DEFAULT_ITERS, &mut agg)
            .unwrap_or_else(|err| panic!("{label}: {err}"))
    }

    #[test]
    fn bucket_map_is_collision_free_and_covers_the_regions() {
        let cs = ControlStore::build();
        let map = BucketMap::new(&cs);
        assert!(!map.is_empty());
        assert_eq!(map.get(cs.ird1().value()), Some(Bucket::Ird1));
        assert_eq!(
            map.get(cs.abort().value()),
            None,
            "the abort row must stay unchecked"
        );
    }

    #[test]
    fn ragged_delta_is_a_measurement_error() {
        let cs = ControlStore::build();
        let map = BucketMap::new(&cs);
        let mut m = measure("movl:none");
        // Corrupt one checked bucket by a non-multiple.
        let addr = cs.ird1().value();
        *m.issue_delta.entry(addr).or_insert(0) += 3;
        let (mut allow, _) = Allowlist::parse("vax-probe-allow v1\n");
        let mut report = Report::new();
        let diff = diff_pair(&cs, &map, &m, &mut allow, &mut report);
        assert!(!diff.ok);
        assert!(report.errors() > 0);
    }

    #[test]
    fn unreconciled_measurement_fails_the_pair() {
        let cs = ControlStore::build();
        let map = BucketMap::new(&cs);
        let mut m = measure("movl:none");
        m.reconciled = false;
        let (mut allow, _) = Allowlist::parse("vax-probe-allow v1\n");
        let mut report = Report::new();
        let diff = diff_pair(&cs, &map, &m, &mut allow, &mut report);
        assert!(!diff.ok);
    }
}
