//! Property and mutation tests for the abstract-interpretation
//! verifier: every built-in profile proves clean, and a store
//! retargeted into its own code region is caught by the SMC rule at
//! the exact byte offset.

use proptest::prelude::*;
use vax_arch::{Assembler, Opcode, Operand, Reg};
use vax_lint::{check_image, verify_image, verify_profile, Budgets, ImageModel, Rule};
use vax_workloads::{profile, WorkloadKind};

fn model_from(bytes: Vec<u8>, base: u32) -> ImageModel {
    ImageModel {
        name: "test".into(),
        base,
        entry: base,
        functions: vec![],
        bytes,
        budgets: Budgets {
            walker_len: 4096,
            bias_len: 16384,
            ptr_entries: 256,
        },
        patch_sites: vec![],
    }
}

/// A three-instruction image whose middle instruction stores R0 through
/// an absolute address. Returns the model, the store's byte offset, and
/// the offset of the 4-byte absolute address inside its specifier.
fn image_with_absolute_store(target: u32) -> (ImageModel, usize, usize) {
    let base = 0x1000;
    let mut asm = Assembler::new(base);
    asm.inst(Opcode::Movl, &[Operand::Literal(1), Operand::Reg(Reg::R0)])
        .unwrap();
    let store_off = 3; // opcode + two one-byte specifiers
    asm.inst(
        Opcode::Movl,
        &[Operand::Reg(Reg::R0), Operand::Absolute(target)],
    )
    .unwrap();
    asm.inst(Opcode::Ret, &[]).unwrap();
    let bytes = asm.finish().unwrap().bytes;
    // movl r0, @#target = D0 50 9F <addr32>: the address bytes start 3
    // bytes into the instruction.
    assert_eq!(bytes[store_off], 0xD0);
    assert_eq!(bytes[store_off + 2], 0x9F);
    (model_from(bytes, base), store_off, store_off + 3)
}

fn verify(model: &ImageModel) -> vax_lint::Report {
    let (decoded, report) = check_image(model);
    let image = decoded.unwrap_or_else(|| panic!("decodes: {}", report.render_text()));
    verify_image(model, &image)
}

#[test]
fn all_builtin_profiles_verify_clean() {
    for kind in WorkloadKind::ALL {
        let params = profile(kind);
        let (report, pred) = verify_profile(&params).expect("generation succeeds");
        assert!(
            report.is_clean(),
            "{}: {}",
            params.name,
            report.render_text()
        );
        assert!(pred.blocks() > 0, "{}: no blocks predicted", params.name);
        assert!(
            pred.coverage() > 0.5,
            "{}: implausibly low block coverage",
            params.name
        );
    }
}

/// The `lint --list-rules` catalog is the catalog findings fire from:
/// ids unique, parseable, documented — and a finding produced by a
/// broken input names a rule present in the listing.
#[test]
fn rule_listing_matches_firing_rules() {
    let mut ids = std::collections::BTreeSet::new();
    for &rule in Rule::ALL {
        assert!(ids.insert(rule.id()), "duplicate rule id {}", rule.id());
        assert_eq!(
            Rule::parse(rule.id()),
            Some(rule),
            "{} fails to parse",
            rule.id()
        );
        assert!(!rule.doc().is_empty(), "{} lacks a doc line", rule.id());
    }
    let (model, _, addr_off) = image_with_absolute_store(0x2000);
    let mut mutated = model;
    mutated.bytes[addr_off..addr_off + 4].copy_from_slice(&0x1000u32.to_le_bytes());
    let report = verify(&mutated);
    assert!(!report.is_clean());
    for d in &report.diagnostics {
        assert!(
            ids.contains(d.rule.id()),
            "fired rule {} missing from the listing",
            d.rule.id()
        );
    }
}

#[test]
fn declared_patch_site_admits_an_exact_code_store() {
    // A store aimed at code is an SMC error — unless the image declares
    // that exact (va, len) as a patch site.
    let (mut model, _, addr_off) = image_with_absolute_store(0x2000);
    let target = 0x1003u32; // the store instruction's own first byte
    model.bytes[addr_off..addr_off + 4].copy_from_slice(&target.to_le_bytes());
    assert!(!verify(&model).is_clean());
    model.patch_sites = vec![(target, 4)];
    let report = verify(&model);
    assert!(report.is_clean(), "{}", report.render_text());
}

#[test]
fn runaway_push_loop_exceeds_the_stack_budget() {
    let mut asm = Assembler::new(0x1000);
    let top = asm.label_here();
    asm.inst(Opcode::Pushl, &[Operand::Reg(Reg::R0)]).unwrap();
    asm.branch(Opcode::Brb, &[], top).unwrap();
    let model = model_from(asm.finish().unwrap().bytes, 0x1000);
    let report = verify(&model);
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == Rule::VerifyStackDepth),
        "{}",
        report.render_text()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Retargeting the store anywhere inside its own code region yields
    /// the SMC diagnostic at the store's byte offset; aiming it
    /// anywhere in a disjoint data arena never does.
    #[test]
    fn retargeted_store_is_caught_at_its_offset(into_code in any::<bool>(), slot in 0u32..4096) {
        let (model, store_off, addr_off) = image_with_absolute_store(0x2000);
        let code_len = model.bytes.len() as u32;
        let target = if into_code {
            model.base + slot % code_len
        } else {
            model.end() + 4 * slot // past the code, 4-byte aligned slots
        };
        let mut mutated = model;
        mutated.bytes[addr_off..addr_off + 4].copy_from_slice(&target.to_le_bytes());
        let report = verify(&mutated);
        if into_code {
            let d = report
                .diagnostics
                .iter()
                .find(|d| d.rule == Rule::VerifySmc)
                .expect("SMC finding");
            prop_assert_eq!(d.offset, Some(store_off as u64), "{}", report.render_text());
        } else {
            prop_assert!(report.is_clean(), "{}", report.render_text());
        }
    }
}
