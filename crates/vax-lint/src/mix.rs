//! Static instruction-mix and addressing-mode checks: the decoded
//! image's histograms diffed against the `ProfileParams` that claim to
//! have generated it.
//!
//! Each generator emitter leaves a signature instruction the static
//! decode can count (CHMK for syscalls, CASEL for dispatch, a
//! bias-stream CMPL for the compare-and-branch idiom, ...). The
//! signature counts are compared, share against share, with the
//! normalized `MixWeights` over the same categories. The three
//! filler-diluted categories (moves/arith/logic) are excluded: leaf
//! bodies and branch shadows emit those opcodes outside the weighted
//! sampling, so their static share says nothing about the weights.
//!
//! Tolerances are deliberately loose — the generator samples weights
//! stochastically and substitutes fallbacks when arena budgets run
//! out — and were calibrated so every built-in profile passes with
//! about 2x margin. The checks catch a *wrong table*, not sampling
//! noise.

use crate::cfg::DecodedImage;
use crate::diag::{Diagnostic, Report, Rule};
use vax_arch::sdecode::LocatedInst;
use vax_arch::{AddrMode, BranchClass, Opcode, Reg, SpecModeClass};
use vax_workloads::ProfileParams;

/// A weighted emitter category with a statically countable signature.
struct Category {
    name: &'static str,
    weight: fn(&ProfileParams) -> f64,
    matches: fn(&LocatedInst) -> bool,
}

/// Short-hand: does the instruction use the bias stream (`(R10)+`)?
fn uses_bias(inst: &LocatedInst) -> bool {
    inst.inst
        .specs
        .iter()
        .any(|s| s.mode == AddrMode::AutoIncrement(Reg::R10))
}

/// A backward Loop-class branch: the closing instruction of one
/// generated counted loop.
fn is_loop_bottom(inst: &LocatedInst) -> bool {
    inst.inst.opcode.branch_class() == Some(BranchClass::Loop)
        && inst.inst.branch_disp.is_some_and(|d| d < 0)
}

const CATEGORIES: &[Category] = &[
    Category {
        name: "cond_branch",
        weight: |p| p.user_mix.cond_branch,
        matches: |i| i.inst.opcode == Opcode::Cmpl && uses_bias(i),
    },
    Category {
        name: "lowbit_branch",
        weight: |p| p.user_mix.lowbit_branch,
        matches: |i| matches!(i.inst.opcode, Opcode::Blbs | Opcode::Blbc),
    },
    Category {
        name: "loop_construct",
        weight: |p| p.user_mix.loop_construct,
        matches: is_loop_bottom,
    },
    Category {
        name: "case_dispatch",
        weight: |p| p.user_mix.case_dispatch,
        matches: |i| i.inst.opcode.has_case_table(),
    },
    Category {
        name: "jmp_uncond",
        weight: |p| p.user_mix.jmp_uncond,
        matches: |i| i.inst.opcode == Opcode::Jmp,
    },
    Category {
        name: "jsb_leaf",
        weight: |p| p.user_mix.jsb_leaf,
        matches: |i| matches!(i.inst.opcode, Opcode::Bsbb | Opcode::Bsbw | Opcode::Jsb),
    },
    Category {
        name: "calls_proc",
        weight: |p| p.user_mix.calls_proc,
        matches: |i| i.inst.opcode == Opcode::Calls,
    },
    Category {
        name: "pushr_popr",
        weight: |p| p.user_mix.pushr_popr,
        matches: |i| i.inst.opcode == Opcode::Pushr,
    },
    Category {
        name: "field_ops",
        weight: |p| p.user_mix.field_ops,
        matches: |i| {
            matches!(
                i.inst.opcode,
                Opcode::Extv | Opcode::Extzv | Opcode::Insv | Opcode::Ffs
            )
        },
    },
    Category {
        name: "bit_branch",
        weight: |p| p.user_mix.bit_branch,
        matches: |i| i.inst.opcode.branch_class() == Some(BranchClass::BitBranch),
    },
    Category {
        name: "float_ops",
        weight: |p| p.user_mix.float_ops,
        matches: |i| {
            matches!(
                i.inst.opcode,
                Opcode::Cvtlf
                    | Opcode::Addf2
                    | Opcode::Mulf3
                    | Opcode::Movf
                    | Opcode::Subf3
                    | Opcode::Cmpf
            )
        },
    },
    Category {
        name: "muldiv",
        weight: |p| p.user_mix.muldiv,
        matches: |i| matches!(i.inst.opcode, Opcode::Mull3 | Opcode::Divl3),
    },
    Category {
        name: "char_ops",
        weight: |p| p.user_mix.char_ops,
        matches: |i| matches!(i.inst.opcode, Opcode::Movc3 | Opcode::Cmpc3 | Opcode::Locc),
    },
    Category {
        name: "decimal_ops",
        weight: |p| p.user_mix.decimal_ops,
        matches: |i| matches!(i.inst.opcode, Opcode::Addp4 | Opcode::Cmpp3 | Opcode::Movp),
    },
    Category {
        name: "queue_ops",
        weight: |p| p.user_mix.queue_ops,
        matches: |i| i.inst.opcode == Opcode::Insque,
    },
    Category {
        name: "syscall",
        weight: |p| p.user_mix.syscall,
        matches: |i| i.inst.opcode == Opcode::Chmk,
    },
];

/// Share drift allowed before `mix-share` fires, relative to the
/// expected share (calibrated; the worst built-in drift is loops at
/// about 0.35 relative).
const MIX_REL_TOL: f64 = 0.80;
/// Absolute share drift always allowed (swallows small-count noise).
const MIX_ABS_TOL: f64 = 0.02;
/// Expected signature count below which shares are too noisy to judge.
const MIX_MIN_EXPECTED: f64 = 30.0;
/// Expected count above which an entirely absent category is an error.
const MIX_ABSENT_FLOOR: f64 = 8.0;

/// Compare the image's static mix to the profile's weights.
pub fn check_mix(image: &DecodedImage, params: &ProfileParams, report: &mut Report) {
    let ctx = params.name;
    // Only function bodies: the dispatcher's fixed CALLS/CHMK pattern is
    // not drawn from the weights.
    let insts: Vec<&LocatedInst> = image
        .regions
        .iter()
        .filter(|r| r.is_function)
        .flat_map(|r| r.insts.iter())
        .collect();
    let counts: Vec<u64> = CATEGORIES
        .iter()
        .map(|c| insts.iter().filter(|i| (c.matches)(i)).count() as u64)
        .collect();
    let weights: Vec<f64> = CATEGORIES.iter().map(|c| (c.weight)(params)).collect();
    let total_count: u64 = counts.iter().sum();
    let total_weight: f64 = weights.iter().sum();
    if total_count == 0 || total_weight <= 0.0 {
        report.push(Diagnostic::error(
            Rule::MixCategory,
            ctx,
            "no weighted-category signatures decoded at all".to_string(),
        ));
        return;
    }
    for ((cat, &count), &weight) in CATEGORIES.iter().zip(&counts).zip(&weights) {
        let expected_share = weight / total_weight;
        let expected_count = expected_share * total_count as f64;
        if weight <= 0.0 {
            if count > 0 {
                report.push(Diagnostic::error(
                    Rule::MixCategory,
                    ctx,
                    format!(
                        "category '{}' has zero weight but {count} signature instruction(s)",
                        cat.name
                    ),
                ));
            }
            continue;
        }
        if count == 0 {
            if expected_count >= MIX_ABSENT_FLOOR {
                report.push(Diagnostic::error(
                    Rule::MixCategory,
                    ctx,
                    format!(
                        "category '{}' is weighted (expected ~{expected_count:.0} signatures) but absent",
                        cat.name
                    ),
                ));
            }
            continue;
        }
        let observed_share = count as f64 / total_count as f64;
        let drift = (observed_share - expected_share).abs();
        if expected_count >= MIX_MIN_EXPECTED
            && drift > (MIX_REL_TOL * expected_share).max(MIX_ABS_TOL)
        {
            report.push(Diagnostic::warning(
                Rule::MixShare,
                ctx,
                format!(
                    "category '{}' share {observed_share:.3} drifts from the profile's {expected_share:.3}",
                    cat.name
                ),
            ));
        }
    }

    check_modes(ctx, &insts, params, report);
}

/// Mode-share tolerance, relative to the expected share. Very loose by
/// design: the weights steer only the *sampled* operands of generic
/// value slots, and the many fixed register/literal operands of the
/// other emitters dilute them (see `ModeWeights::composite`). The check
/// still catches a weight table pointed at the wrong modes.
const MODE_REL_TOL: f64 = 4.0;
/// Absolute mode-share drift always allowed.
const MODE_ABS_TOL: f64 = 0.25;

fn check_modes(
    ctx: &'static str,
    insts: &[&LocatedInst],
    params: &ProfileParams,
    report: &mut Report,
) {
    let class_weight = |class: SpecModeClass| -> f64 {
        let m = &params.modes;
        match class {
            SpecModeClass::Register => m.register,
            SpecModeClass::ShortLiteral => m.literal,
            SpecModeClass::Immediate => m.immediate,
            SpecModeClass::Displacement => m.displacement,
            SpecModeClass::RegisterDeferred => m.reg_deferred,
            SpecModeClass::DisplacementDeferred => m.disp_deferred,
            SpecModeClass::AutoIncrement => m.autoincrement,
            SpecModeClass::AutoDecrement => m.autodecrement,
            SpecModeClass::AutoIncDeferred => m.autoinc_deferred,
            SpecModeClass::Absolute => m.absolute,
        }
    };
    let mut counts = [0u64; SpecModeClass::ALL.len()];
    let mut indexed = 0u64;
    for inst in insts {
        for spec in &inst.inst.specs {
            let class = spec.mode_class();
            let slot = SpecModeClass::ALL
                .iter()
                .position(|&c| c == class)
                .expect("class listed");
            counts[slot] += 1;
            if spec.index.is_some() {
                indexed += 1;
            }
        }
    }
    let total: u64 = counts.iter().sum();
    let total_weight: f64 = SpecModeClass::ALL.iter().map(|&c| class_weight(c)).sum();
    if total == 0 || total_weight <= 0.0 {
        report.push(Diagnostic::error(
            Rule::ModeShare,
            ctx,
            "no operand specifiers decoded at all".to_string(),
        ));
        return;
    }
    for (&class, &count) in SpecModeClass::ALL.iter().zip(&counts) {
        let expected = class_weight(class) / total_weight;
        let observed = count as f64 / total as f64;
        if expected <= 0.0 {
            continue;
        }
        // A weighted mode that never appears in a large image means the
        // operand sampler cannot produce it — a wiring error.
        if count == 0 && expected * total as f64 >= 50.0 {
            report.push(Diagnostic::error(
                Rule::ModeShare,
                ctx,
                format!("addressing mode {class:?} is weighted but never appears"),
            ));
            continue;
        }
        let drift = (observed - expected).abs();
        if drift > (MODE_REL_TOL * expected).max(MODE_ABS_TOL) {
            report.push(Diagnostic::warning(
                Rule::ModeShare,
                ctx,
                format!(
                    "addressing mode {class:?} share {observed:.3} drifts from the weighted {expected:.3}"
                ),
            ));
        }
    }
    // Indexed prefixes ride on top of the base-mode histogram.
    let observed_indexed = indexed as f64 / total as f64;
    if (observed_indexed - params.modes.indexed).abs()
        > (MODE_REL_TOL * params.modes.indexed).max(MODE_ABS_TOL)
    {
        report.push(Diagnostic::warning(
            Rule::ModeShare,
            ctx,
            format!(
                "indexed-specifier share {observed_indexed:.3} drifts from the weighted {:.3}",
                params.modes.indexed
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::check_image;
    use crate::image::ImageModel;
    use vax_workloads::{plan_processes, profile, WorkloadKind};

    fn decoded_profile() -> (DecodedImage, ProfileParams) {
        let params = profile(WorkloadKind::TimesharingLight);
        let plans = plan_processes(&params).expect("generation succeeds");
        let model = ImageModel::from_process(params.name, &plans[0]);
        let (decoded, report) = check_image(&model);
        assert_eq!(report.errors(), 0, "{}", report.render_text());
        (decoded.expect("total decode"), params)
    }

    #[test]
    fn builtin_profile_mix_is_within_tolerance() {
        let (image, params) = decoded_profile();
        let mut report = Report::new();
        check_mix(&image, &params, &mut report);
        assert!(report.is_clean(), "{}", report.render_text());
    }

    #[test]
    fn zero_weight_category_present_is_an_error() {
        let (image, mut params) = decoded_profile();
        // The image is full of bias-stream compares; claim the profile
        // never emits them.
        params.user_mix.cond_branch = 0.0;
        let mut report = Report::new();
        check_mix(&image, &params, &mut report);
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.rule == Rule::MixCategory && d.message.contains("cond_branch")),
            "{}",
            report.render_text()
        );
    }
}
