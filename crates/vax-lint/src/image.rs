//! The unit of image linting: a generated user program plus the
//! placement facts the analyzer needs, with a text serialization so
//! images can be linted (and corrupted, for testing the linter itself)
//! outside the generating process.

use vax_workloads::codegen::DataLayout;
use vax_workloads::ProcessImage;

/// The arena sizes behind the generator's documented budget claims
/// (walkers re-based per function entry, worst-case consumption bounded
/// by the arena).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budgets {
    /// Length of each walker arena (forward and backward), bytes.
    pub walker_len: u32,
    /// Length of the branch-bias stream, bytes.
    pub bias_len: u32,
    /// Pointer-table entries.
    pub ptr_entries: u32,
}

impl Budgets {
    /// Extract the budget-relevant arena sizes from a data layout.
    pub fn from_layout(layout: &DataLayout) -> Budgets {
        Budgets {
            walker_len: layout.walker_len,
            bias_len: layout.bias_len,
            ptr_entries: layout.ptr_entries,
        }
    }
}

/// A lintable image: code bytes plus placement facts.
#[derive(Debug, Clone)]
pub struct ImageModel {
    /// Profile name the image was generated from.
    pub name: String,
    /// Virtual address of `bytes[0]`.
    pub base: u32,
    /// Entry PC (the dispatcher).
    pub entry: u32,
    /// Function addresses (each starts with a 2-byte entry mask).
    pub functions: Vec<u32>,
    /// The code bytes.
    pub bytes: Vec<u8>,
    /// Arena sizes for the walker-budget checks.
    pub budgets: Budgets,
    /// Declared self-patch sites, `(va, len)`: the only code bytes a
    /// store may legally target, and then only with that exact span.
    /// The built-in generator never patches its code, so this is empty
    /// for every generated image; the field exists so a hand-built or
    /// corrupted image can declare (or fail to declare) its stores
    /// into code and the SMC verifier can hold it to that.
    pub patch_sites: Vec<(u32, u32)>,
}

impl ImageModel {
    /// Build the model for one generated process image.
    pub fn from_process(name: &str, plan: &ProcessImage) -> ImageModel {
        ImageModel {
            name: name.to_string(),
            base: plan.image.base,
            entry: plan.entry,
            functions: plan.functions.clone(),
            bytes: plan.image.bytes.clone(),
            budgets: Budgets::from_layout(&plan.layout),
            patch_sites: Vec::new(),
        }
    }

    /// First virtual address past the image.
    pub fn end(&self) -> u32 {
        self.base + self.bytes.len() as u32
    }

    /// Serialize to the `vax-lint-image v1` text format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("vax-lint-image v1\n");
        out.push_str(&format!("name {}\n", self.name));
        out.push_str(&format!("base {:#x}\n", self.base));
        out.push_str(&format!("entry {:#x}\n", self.entry));
        out.push_str("functions");
        for f in &self.functions {
            out.push_str(&format!(" {f:#x}"));
        }
        out.push('\n');
        out.push_str(&format!(
            "budgets walker={} bias={} ptr={}\n",
            self.budgets.walker_len, self.budgets.bias_len, self.budgets.ptr_entries
        ));
        // Emitted only when present, so images without patch sites
        // round-trip through pre-existing copies of the parser.
        if !self.patch_sites.is_empty() {
            out.push_str("patches");
            for &(va, plen) in &self.patch_sites {
                out.push_str(&format!(" {va:#x}:{plen}"));
            }
            out.push('\n');
        }
        out.push_str(&format!("bytes {}\n", self.bytes.len()));
        for row in self.bytes.chunks(32) {
            for b in row {
                out.push_str(&format!("{b:02x}"));
            }
            out.push('\n');
        }
        out
    }

    /// Parse the `vax-lint-image v1` text format.
    ///
    /// # Errors
    ///
    /// A message naming the malformed line.
    pub fn parse(text: &str) -> Result<ImageModel, String> {
        let mut lines = text.lines();
        let header = lines.next().unwrap_or_default();
        if header.trim() != "vax-lint-image v1" {
            return Err(format!("bad header '{header}' (want 'vax-lint-image v1')"));
        }
        let mut name = None;
        let mut base = None;
        let mut entry = None;
        let mut functions = None;
        let mut budgets = None;
        let mut patch_sites = Vec::new();
        let mut byte_count = None;
        let parse_u32 = |s: &str| -> Result<u32, String> {
            let t = s.trim();
            let (digits, radix) = match t.strip_prefix("0x") {
                Some(hex) => (hex, 16),
                None => (t, 10),
            };
            u32::from_str_radix(digits, radix).map_err(|_| format!("bad number '{s}'"))
        };
        for line in lines.by_ref() {
            let Some((key, rest)) = line.split_once(' ') else {
                return Err(format!("malformed line '{line}'"));
            };
            match key {
                "name" => name = Some(rest.trim().to_string()),
                "base" => base = Some(parse_u32(rest)?),
                "entry" => entry = Some(parse_u32(rest)?),
                "functions" => {
                    functions = Some(rest.split_whitespace().map(parse_u32).collect::<Result<
                        Vec<u32>,
                        String,
                    >>(
                    )?);
                }
                "budgets" => {
                    let mut b = Budgets {
                        walker_len: 0,
                        bias_len: 0,
                        ptr_entries: 0,
                    };
                    for field in rest.split_whitespace() {
                        let Some((k, v)) = field.split_once('=') else {
                            return Err(format!("malformed budget '{field}'"));
                        };
                        let v = parse_u32(v)?;
                        match k {
                            "walker" => b.walker_len = v,
                            "bias" => b.bias_len = v,
                            "ptr" => b.ptr_entries = v,
                            _ => return Err(format!("unknown budget '{k}'")),
                        }
                    }
                    budgets = Some(b);
                }
                "patches" => {
                    for site in rest.split_whitespace() {
                        let Some((va, plen)) = site.split_once(':') else {
                            return Err(format!("malformed patch site '{site}'"));
                        };
                        patch_sites.push((parse_u32(va)?, parse_u32(plen)?));
                    }
                }
                "bytes" => {
                    byte_count = Some(parse_u32(rest)? as usize);
                    break;
                }
                _ => return Err(format!("unknown key '{key}'")),
            }
        }
        let byte_count = byte_count.ok_or("missing 'bytes' line")?;
        let mut bytes = Vec::with_capacity(byte_count);
        for line in lines {
            let line = line.trim();
            if line.len() % 2 != 0 {
                return Err(format!("odd-length hex line '{line}'"));
            }
            for i in (0..line.len()).step_by(2) {
                let b = u8::from_str_radix(&line[i..i + 2], 16)
                    .map_err(|_| format!("bad hex in '{line}'"))?;
                bytes.push(b);
            }
        }
        if bytes.len() != byte_count {
            return Err(format!(
                "byte count mismatch: header says {byte_count}, got {}",
                bytes.len()
            ));
        }
        Ok(ImageModel {
            name: name.ok_or("missing 'name' line")?,
            base: base.ok_or("missing 'base' line")?,
            entry: entry.ok_or("missing 'entry' line")?,
            functions: functions.ok_or("missing 'functions' line")?,
            bytes,
            budgets: budgets.ok_or("missing 'budgets' line")?,
            patch_sites,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trip() {
        let model = ImageModel {
            name: "test".into(),
            base: 0x1_0000,
            entry: 0x1_0000,
            functions: vec![0x1_0040, 0x1_0200],
            bytes: (0..=255u8).collect(),
            budgets: Budgets {
                walker_len: 4096,
                bias_len: 16384,
                ptr_entries: 256,
            },
            patch_sites: vec![(0x1_0010, 4), (0x1_0020, 2)],
        };
        let text = model.render();
        let back = ImageModel::parse(&text).expect("parses");
        assert_eq!(back.name, model.name);
        assert_eq!(back.base, model.base);
        assert_eq!(back.entry, model.entry);
        assert_eq!(back.functions, model.functions);
        assert_eq!(back.bytes, model.bytes);
        assert_eq!(back.budgets, model.budgets);
        assert_eq!(back.patch_sites, model.patch_sites);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ImageModel::parse("not an image").is_err());
        let mut good = ImageModel {
            name: "x".into(),
            base: 0,
            entry: 0,
            functions: vec![],
            bytes: vec![1, 2, 3],
            budgets: Budgets {
                walker_len: 1,
                bias_len: 1,
                ptr_entries: 1,
            },
            patch_sites: vec![],
        }
        .render();
        good.push_str("zz\n");
        assert!(ImageModel::parse(&good).is_err());
    }
}
