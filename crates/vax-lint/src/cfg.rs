//! Static decode and control-flow checks over a generated image.
//!
//! The image is decoded region by region (dispatcher, then each
//! function body past its 2-byte entry mask) with the total static
//! decoder, then checked against the generator's documented safety
//! invariants: decode totality, in-bounds branch targets, no
//! privileged opcodes, adjacent push/pop idioms, sized case tables,
//! reachability, and worst-case walker/bias/pointer-arena consumption.

use crate::diag::{Diagnostic, Report, Rule};
use crate::image::ImageModel;
use vax_arch::sdecode::{decode_range, LocatedInst};
use vax_arch::{AddrMode, BranchClass, Opcode, Reg};

/// One contiguous decoded code region of the image.
#[derive(Debug, Clone)]
pub struct Region {
    /// Display name (`dispatcher`, `fn3`, ...).
    pub name: String,
    /// Byte offset of the first instruction (entry masks excluded).
    pub start: usize,
    /// Byte offset one past the last instruction.
    pub end: usize,
    /// The instructions, in address order, tiling `[start, end)`.
    pub insts: Vec<LocatedInst>,
    /// Is this a function body (subject to arena-budget analysis)?
    pub is_function: bool,
}

/// A fully decoded image: every region, every instruction located.
#[derive(Debug, Clone)]
pub struct DecodedImage {
    /// All regions in address order, dispatcher first.
    pub regions: Vec<Region>,
}

impl DecodedImage {
    /// Iterate over every located instruction in every region.
    pub fn insts(&self) -> impl Iterator<Item = &LocatedInst> {
        self.regions.iter().flat_map(|r| r.insts.iter())
    }
}

/// The generator's register conventions (mirrors `codegen::regs`; the
/// lint recomputes budgets from the instruction stream alone).
mod regs {
    use vax_arch::Reg;
    pub const BIAS: Reg = Reg::R10;
    pub const WALK_UP: Reg = Reg::R6;
    pub const WALK_DOWN: Reg = Reg::R7;
    pub const PTR_WALKER: Reg = Reg::R8;
}

/// Opcodes that must never appear in a user-mode stream.
const PRIVILEGED: &[Opcode] = &[
    Opcode::Halt,
    Opcode::Rei,
    Opcode::Ldpctx,
    Opcode::Svpctx,
    Opcode::Mtpr,
    Opcode::Mfpr,
];

/// Decode the image into regions and run every image-family check.
///
/// Returns the decoded image (when total decode succeeded everywhere)
/// so downstream analyses (the static mix) can reuse it.
pub fn check_image(model: &ImageModel) -> (Option<DecodedImage>, Report) {
    let mut report = Report::new();
    let ctx = &model.name;

    // ----- region boundaries -------------------------------------------------
    let len = model.bytes.len();
    let entry_off = match rel_offset(model, model.entry) {
        Some(off) => off,
        None => {
            report.push(Diagnostic::error(
                Rule::ImageBranchTarget,
                ctx.clone(),
                format!("entry {:#x} lies outside the image", model.entry),
            ));
            return (None, report);
        }
    };
    let mut fn_offs = Vec::with_capacity(model.functions.len());
    for (i, &f) in model.functions.iter().enumerate() {
        match rel_offset(model, f) {
            // +2 skips the procedure entry mask word.
            Some(off) if off + 2 <= len => fn_offs.push(off),
            _ => {
                report.push(Diagnostic::error(
                    Rule::ImageBranchTarget,
                    ctx.clone(),
                    format!("function {i} entry {f:#x} lies outside the image"),
                ));
                return (None, report);
            }
        }
    }
    if fn_offs.windows(2).any(|w| w[0] >= w[1]) || fn_offs.first().is_some_and(|&f| f < entry_off) {
        report.push(Diagnostic::error(
            Rule::ImageBranchTarget,
            ctx.clone(),
            "function entries are not in ascending address order past the entry".to_string(),
        ));
        return (None, report);
    }

    let mut bounds = Vec::new();
    let first_end = fn_offs.first().copied().unwrap_or(len);
    bounds.push(("dispatcher".to_string(), entry_off, first_end, false));
    for (i, &off) in fn_offs.iter().enumerate() {
        let end = fn_offs.get(i + 1).copied().unwrap_or(len);
        bounds.push((format!("fn{i}"), off + 2, end, true));
    }

    // ----- totality decode ---------------------------------------------------
    let mut regions = Vec::new();
    let mut decode_ok = true;
    for (name, start, end, is_function) in bounds {
        match decode_range(&model.bytes, start, end) {
            Ok(insts) => regions.push(Region {
                name,
                start,
                end,
                insts,
                is_function,
            }),
            Err((decoded, bad_off, e)) => {
                decode_ok = false;
                let rule = if format!("{e}").contains("case limit") {
                    Rule::ImageCaseTable
                } else {
                    Rule::ImageDecode
                };
                report.push(
                    Diagnostic::error(
                        rule,
                        format!("{ctx}/{name}"),
                        format!("decode fails at byte {bad_off:#x}: {e}"),
                    )
                    .at(bad_off as u64),
                );
                regions.push(Region {
                    name,
                    start,
                    end: decoded.last().map_or(start, LocatedInst::end),
                    insts: decoded,
                    is_function,
                });
            }
        }
    }
    let image = DecodedImage { regions };

    // ----- per-instruction checks -------------------------------------------
    let starts: std::collections::BTreeSet<usize> = image.insts().map(|inst| inst.offset).collect();
    for region in &image.regions {
        check_privileged(ctx, region, &mut report);
        check_push_pop(ctx, region, &mut report);
        check_branch_targets(ctx, region, &starts, len, &mut report);
    }
    check_reachability(ctx, &image, entry_off, &fn_offs, &mut report);
    // Walker/bias/pointer budgets apply per region: the walkers are
    // re-based at every function entry, and the dispatcher (which never
    // touches them) vacuously passes.
    for region in &image.regions {
        check_budgets(ctx, region, model, &mut report);
    }

    (decode_ok.then_some(image), report)
}

fn rel_offset(model: &ImageModel, va: u32) -> Option<usize> {
    if va >= model.base && va < model.end() {
        Some((va - model.base) as usize)
    } else {
        None
    }
}

fn check_privileged(ctx: &str, region: &Region, report: &mut Report) {
    for inst in &region.insts {
        if PRIVILEGED.contains(&inst.inst.opcode) {
            report.push(
                Diagnostic::error(
                    Rule::ImagePrivileged,
                    format!("{ctx}/{}", region.name),
                    format!(
                        "privileged opcode {} in a user-mode stream",
                        inst.inst.opcode.mnemonic()
                    ),
                )
                .at(inst.offset as u64),
            );
        }
    }
}

/// Both stack idioms the generator claims are always balanced:
/// `PUSHR mask` immediately followed by `POPR` of the same mask, and
/// `PUSHL` immediately consumed by another push, a `CALLS`, or a
/// `MOVL (SP)+, dst` pop.
fn check_push_pop(ctx: &str, region: &Region, report: &mut Report) {
    for pair in region.insts.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        match a.inst.opcode {
            Opcode::Pushr => {
                let balanced = b.inst.opcode == Opcode::Popr
                    && a.inst.specs.first().map(|s| &s.mode)
                        == b.inst.specs.first().map(|s| &s.mode);
                if !balanced {
                    report.push(
                        Diagnostic::error(
                            Rule::ImagePushPop,
                            format!("{ctx}/{}", region.name),
                            format!(
                                "PUSHR is not followed by a POPR of the same mask (next is {})",
                                b.inst.opcode.mnemonic()
                            ),
                        )
                        .at(a.offset as u64),
                    );
                }
            }
            Opcode::Pushl => {
                let consumed = match b.inst.opcode {
                    Opcode::Pushl | Opcode::Calls => true,
                    Opcode::Movl => matches!(
                        b.inst.specs.first().map(|s| &s.mode),
                        Some(AddrMode::AutoIncrement(Reg::Sp))
                    ),
                    _ => false,
                };
                if !consumed {
                    report.push(
                        Diagnostic::error(
                            Rule::ImagePushPop,
                            format!("{ctx}/{}", region.name),
                            format!(
                                "PUSHL is not consumed by a push, CALLS, or (SP)+ pop (next is {})",
                                b.inst.opcode.mnemonic()
                            ),
                        )
                        .at(a.offset as u64),
                    );
                }
            }
            _ => {}
        }
    }
    if let Some(last) = region.insts.last() {
        if matches!(last.inst.opcode, Opcode::Pushr | Opcode::Pushl) {
            report.push(
                Diagnostic::error(
                    Rule::ImagePushPop,
                    format!("{ctx}/{}", region.name),
                    "region ends on an unbalanced push".to_string(),
                )
                .at(last.offset as u64),
            );
        }
    }
}

/// Every statically known transfer target — branch displacements and
/// case-table entries — must land on a decoded instruction boundary
/// inside the image.
fn check_branch_targets(
    ctx: &str,
    region: &Region,
    starts: &std::collections::BTreeSet<usize>,
    image_len: usize,
    report: &mut Report,
) {
    let mut bad = |off: usize, what: String, target: i64| {
        let landing = if target < 0 || target as usize >= image_len {
            "outside the image"
        } else {
            "inside another instruction"
        };
        report.push(
            Diagnostic::error(
                Rule::ImageBranchTarget,
                format!("{ctx}/{}", region.name),
                format!("{what} target {target:#x} lands {landing}"),
            )
            .at(off as u64),
        );
    };
    for inst in &region.insts {
        if let Some(disp) = inst.inst.branch_disp {
            let target = inst.offset as i64 + i64::from(inst.inst.len) + i64::from(disp);
            if target < 0 || !starts.contains(&(target as usize)) {
                bad(
                    inst.offset,
                    format!("{} branch", inst.inst.opcode.mnemonic()),
                    target,
                );
            }
        }
        if let Some(entries) = &inst.case_entries {
            let table_base = inst.offset as i64 + i64::from(inst.inst.len);
            for (i, &entry) in entries.iter().enumerate() {
                let target = table_base + i64::from(entry);
                if target < 0 || !starts.contains(&(target as usize)) {
                    bad(
                        inst.offset,
                        format!("{} case entry {i}", inst.inst.opcode.mnemonic()),
                        target,
                    );
                }
            }
        }
    }
}

/// Worklist reachability from the dispatcher entry and every function
/// entry. Code the walk never reaches is a generator bug worth seeing
/// (it distorts the static mix), but harmless to run — a warning.
fn check_reachability(
    ctx: &str,
    image: &DecodedImage,
    entry_off: usize,
    fn_offs: &[usize],
    report: &mut Report,
) {
    use std::collections::{BTreeMap, BTreeSet};
    let by_off: BTreeMap<usize, &LocatedInst> =
        image.insts().map(|inst| (inst.offset, inst)).collect();
    let mut work: Vec<usize> = Vec::new();
    work.push(entry_off);
    // Function entries are reached through the pointer table (CALLS),
    // which static analysis cannot follow; treat them as roots.
    work.extend(fn_offs.iter().map(|&f| f + 2));
    let mut seen: BTreeSet<usize> = BTreeSet::new();
    while let Some(off) = work.pop() {
        if !seen.insert(off) {
            continue;
        }
        let Some(inst) = by_off.get(&off) else {
            continue;
        };
        let op = inst.inst.opcode;
        let fall_through = match op.branch_class() {
            // BRB/BRW share the simple-branch class but never fall
            // through; RET/RSB end the walk (callers are separate roots).
            Some(BranchClass::SimpleCond) => !matches!(op, Opcode::Brb | Opcode::Brw),
            Some(BranchClass::ProcedureCallRet) => op != Opcode::Ret,
            Some(BranchClass::SubroutineCallRet) => op != Opcode::Rsb,
            _ => true,
        };
        if fall_through {
            work.push(inst.end());
        }
        if let Some(disp) = inst.inst.branch_disp {
            let target = off as i64 + i64::from(inst.inst.len) + i64::from(disp);
            if target >= 0 {
                work.push(target as usize);
            }
        }
        if let Some(entries) = &inst.case_entries {
            let table_base = off as i64 + i64::from(inst.inst.len);
            for &entry in entries {
                let target = table_base + i64::from(entry);
                if target >= 0 {
                    work.push(target as usize);
                }
            }
        }
    }
    for region in &image.regions {
        let unreached: Vec<usize> = region
            .insts
            .iter()
            .map(|inst| inst.offset)
            .filter(|off| !seen.contains(off))
            .collect();
        if let Some(&first) = unreached.first() {
            report.push(
                Diagnostic::warning(
                    Rule::ImageUnreachable,
                    format!("{ctx}/{}", region.name),
                    format!(
                        "{} instruction(s) unreachable from any entry",
                        unreached.len()
                    ),
                )
                .at(first as u64),
            );
        }
    }
}

/// Recompute the generator's worst-case arena accounting from the
/// instruction stream: each walker-mode specifier consumes its operand
/// size once per iteration of every enclosing counted loop, and the
/// total must fit the arena the walker is re-based to at function
/// entry.
fn check_budgets(ctx: &str, region: &Region, model: &ImageModel, report: &mut Report) {
    let loops = counted_loops(region);
    let mut walker_use: u64 = 0;
    let mut bias_use: u64 = 0;
    let mut ptr_use: u64 = 0;
    for inst in &region.insts {
        let mult = loop_multiplier(&loops, inst.offset);
        let templates = inst.inst.opcode.operands();
        for (spec, template) in inst.inst.specs.iter().zip(templates) {
            let size = u64::from(template.data_type().size_bytes());
            match spec.mode {
                AddrMode::AutoIncrement(regs::WALK_UP)
                | AddrMode::AutoDecrement(regs::WALK_DOWN) => {
                    walker_use = walker_use.saturating_add(size.saturating_mul(mult));
                }
                AddrMode::AutoIncrement(regs::BIAS) => {
                    bias_use = bias_use.saturating_add(size.saturating_mul(mult));
                }
                AddrMode::AutoIncDeferred(regs::PTR_WALKER) => {
                    ptr_use = ptr_use.saturating_add(mult);
                }
                _ => {}
            }
        }
    }

    let budgets = [
        (
            "walker arenas",
            walker_use,
            u64::from(model.budgets.walker_len),
            "bytes",
        ),
        (
            "bias stream",
            bias_use,
            u64::from(model.budgets.bias_len),
            "bytes",
        ),
        (
            "pointer table",
            ptr_use,
            u64::from(model.budgets.ptr_entries),
            "entries",
        ),
    ];
    for (what, used, limit, unit) in budgets {
        if used > limit {
            report.push(Diagnostic::error(
                Rule::ImageWalkerBudget,
                format!("{ctx}/{}", region.name),
                format!(
                    "worst-case {what} consumption {used} {unit} exceeds the arena ({limit} {unit})"
                ),
            ));
        }
    }
}

/// The static constant of specifier `i`, if it is a short literal or
/// immediate.
fn static_literal(inst: &LocatedInst, i: usize) -> Option<u64> {
    inst.inst
        .specs
        .get(i)
        .and_then(|s| vax_arch::sdecode::static_constant(&s.mode))
}

/// The generator's own cap on counted-loop trip counts and on values
/// held in index/position registers (loop counters). Shared by the
/// arena-budget recompute and the abstract interpretation's widenings.
const ITER_CAP: u64 = 32;

/// Counted-loop intervals of a region: a backward Loop-class branch
/// closes the interval `[target, branch]`; its trip count comes from
/// the loop idiom (AOBLSS/SOBGTR/ACBL), capped at [`ITER_CAP`].
pub(crate) fn counted_loops(region: &Region) -> Vec<(usize, usize, u64)> {
    let mut loops: Vec<(usize, usize, u64)> = Vec::new();
    for inst in &region.insts {
        if inst.inst.opcode.branch_class() != Some(BranchClass::Loop) {
            continue;
        }
        let Some(disp) = inst.inst.branch_disp else {
            continue;
        };
        let target = inst.offset as i64 + i64::from(inst.inst.len) + i64::from(disp);
        if disp >= 0 || target < 0 {
            continue;
        }
        let top = target as usize;
        let iters = match inst.inst.opcode {
            Opcode::Aoblss => static_literal(inst, 0),
            Opcode::Acbl => static_literal(inst, 0).map(|v| v + 1),
            Opcode::Sobgtr => region
                .insts
                .iter()
                .find(|prev| prev.end() == top && prev.inst.opcode == Opcode::Movl)
                .and_then(|prev| static_literal(prev, 0)),
            _ => None,
        };
        loops.push((top, inst.offset, iters.unwrap_or(ITER_CAP).min(ITER_CAP)));
    }
    loops
}

/// Product of the trip counts of every counted loop enclosing `off`.
pub(crate) fn loop_multiplier(loops: &[(usize, usize, u64)], off: usize) -> u64 {
    loops
        .iter()
        .filter(|&&(top, bottom, _)| (top..=bottom).contains(&off))
        .map(|&(_, _, iters)| iters)
        .fold(1, u64::saturating_mul)
}

// ===========================================================================
// Abstract interpretation: SMC freedom and stack depth (`vax780 verify`)
// ===========================================================================
//
// Two interval analyses over the decoded image, both conservative:
//
// * **Store targets.** Every store's target address is bounded to an
//   interval from the generator's register conventions (R11 anchors the
//   data arena with a single `MOVL #imm, R11`; R9 anchors the pointer
//   table with a single `MOVAL d(R11), R9`; the walkers re-base per
//   region and advance by the budget-bounded auto modes). A store whose
//   interval can reach the code bytes must exactly match a declared
//   patch site; anything else is self-modifying code ([`Rule::VerifySmc`]).
//   Stores the analysis cannot bound are reported, not assumed safe.
//
// * **Stack depth.** A worklist interval dataflow over each region's
//   CFG bounds the stack pointer's displacement from its region-entry
//   value; the per-region maxima compose over the (acyclic) call graph
//   against the machine's mapped user stack
//   ([`Rule::VerifyStackDepth`]).
//
// Both lean on documented generator provisos rather than re-deriving
// them: loop counters stay below [`ITER_CAP`], the call DAG is acyclic,
// and the loader initializes pointer-table cells to data addresses. The
// indirect-store check closes the last proviso's loophole by verifying
// no analyzed store can overwrite a pointer cell.

use vax_arch::AccessType;

/// Fallback store width (bytes) for a string/decimal destination whose
/// length operand is not a static constant: the architectural maximum
/// (lengths are 16-bit). The generator always emits static lengths, so
/// this only widens hand-built images.
const DYNAMIC_STRING_MAX: i64 = 65_535;

/// An abstract address: every value the expression can take lies in
/// the **inclusive** interval `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Interval {
    lo: i64,
    hi: i64,
}

impl Interval {
    fn exact(v: i64) -> Interval {
        Interval { lo: v, hi: v }
    }

    fn shift(self, d: i64) -> Interval {
        Interval {
            lo: self.lo + d,
            hi: self.hi + d,
        }
    }
}

/// A byte span `[lo, hi)` some store may write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Span {
    lo: i64,
    hi: i64,
}

impl Span {
    fn overlaps(self, other: Span) -> bool {
        self.lo < other.hi && other.lo < self.hi
    }
}

/// What one operand specifier does to memory, as far as the interval
/// analysis can tell.
enum StoreTarget {
    /// Not a store (reads, register destinations, stack traffic).
    None,
    /// May write any bytes within the span.
    Direct(Span),
    /// Writes through a pointer loaded from a cell within the span.
    Indirect(Span),
    /// Cannot be bounded; the reason becomes the diagnostic.
    Unknown(&'static str),
}

/// Does `inst` advance register `r` through an auto-increment or
/// auto-decrement specifier?
fn advances_reg(inst: &LocatedInst, r: Reg) -> bool {
    inst.inst.specs.iter().any(|spec| {
        matches!(spec.mode,
            AddrMode::AutoIncrement(reg)
            | AddrMode::AutoDecrement(reg)
            | AddrMode::AutoIncDeferred(reg) if reg == r)
    })
}

/// Does `inst` write register `r` other than by auto-mode advance?
/// Conservative: non-static `POPR` masks count as writing everything.
fn writes_reg_directly(inst: &LocatedInst, r: Reg) -> bool {
    let op = inst.inst.opcode;
    for (spec, template) in inst.inst.specs.iter().zip(op.operands()) {
        let dest = matches!(
            template.access(),
            AccessType::Write | AccessType::Modify | AccessType::Field
        );
        if dest && spec.mode == AddrMode::Register(r) {
            return true;
        }
    }
    if op == Opcode::Popr {
        return match static_literal(inst, 0) {
            Some(mask) => mask & (1 << (r as u32)) != 0,
            None => true,
        };
    }
    // String and decimal instructions clobber R0-R5 implicitly.
    if (r as u32) <= 5
        && matches!(
            op.group(),
            vax_arch::OpcodeGroup::Character | vax_arch::OpcodeGroup::Decimal
        )
    {
        return true;
    }
    false
}

/// If `inst` is `MOVAL d(R11), r` (the generator's re-basing idiom),
/// the rebased value.
fn rebase_value(inst: &LocatedInst, r: Reg, data_base: Option<i64>) -> Option<i64> {
    if inst.inst.opcode != Opcode::Moval {
        return None;
    }
    let dst = inst.inst.specs.get(1)?;
    if dst.mode != AddrMode::Register(r) || dst.index.is_some() {
        return None;
    }
    match inst.inst.specs.first()?.mode {
        AddrMode::Displacement {
            reg: Reg::R11,
            disp,
            ..
        } => Some(data_base? + i64::from(disp)),
        _ => None,
    }
}

/// The single-assignment constant held in `r` across the whole image,
/// if the image establishes one: exactly one writer, and that writer is
/// `MOVL #imm, r` (the data anchor) or `MOVAL d(R11), r` (the pointer
/// table anchor, resolved against the data anchor).
fn global_const_base(image: &DecodedImage, r: Reg, data_base: Option<i64>) -> Option<i64> {
    let mut writers = image
        .insts()
        .filter(|inst| writes_reg_directly(inst, r) || advances_reg(inst, r));
    let w = writers.next()?;
    if writers.next().is_some() {
        return None;
    }
    if w.inst.opcode == Opcode::Movl {
        let dst = w.inst.specs.get(1)?;
        if dst.mode == AddrMode::Register(r) && dst.index.is_none() {
            return static_literal(w, 0).map(|v| v as i64);
        }
    }
    rebase_value(w, r, data_base)
}

/// The abstract values of the walker registers within one region:
/// re-based by `MOVAL d(R11), r` and advanced only by the auto modes,
/// so each is bounded by `[min base - down-advance, max base +
/// up-advance]` with advances weighted by the enclosing counted loops.
/// Registers written any other way map to `None` (unanalyzable).
fn region_reg_intervals(
    region: &Region,
    data_base: Option<i64>,
    loops: &[(usize, usize, u64)],
) -> std::collections::BTreeMap<Reg, Option<Interval>> {
    let mut out = std::collections::BTreeMap::new();
    for r in [regs::WALK_UP, regs::WALK_DOWN, regs::PTR_WALKER, regs::BIAS] {
        let mut bases: Vec<i64> = Vec::new();
        let mut analyzable = true;
        let mut adv_up: i64 = 0;
        let mut adv_down: i64 = 0;
        for inst in &region.insts {
            // Cap the weight so pathological nests cannot overflow the
            // interval arithmetic; anything this large fails the span
            // check anyway.
            let mult = loop_multiplier(loops, inst.offset).min(1 << 24) as i64;
            for (spec, template) in inst.inst.specs.iter().zip(inst.inst.opcode.operands()) {
                let size = i64::from(template.data_type().size_bytes());
                match spec.mode {
                    AddrMode::AutoIncrement(reg) if reg == r => {
                        adv_up = adv_up.saturating_add(size.saturating_mul(mult));
                    }
                    AddrMode::AutoIncDeferred(reg) if reg == r => {
                        adv_up = adv_up.saturating_add(4i64.saturating_mul(mult));
                    }
                    AddrMode::AutoDecrement(reg) if reg == r => {
                        adv_down = adv_down.saturating_add(size.saturating_mul(mult));
                    }
                    _ => {}
                }
            }
            if let Some(v) = rebase_value(inst, r, data_base) {
                bases.push(v);
            } else if writes_reg_directly(inst, r) {
                analyzable = false;
            }
        }
        let interval = match (analyzable, bases.is_empty()) {
            (true, false) => {
                let lo = bases.iter().copied().min().unwrap_or(0) - adv_down;
                let hi = bases.iter().copied().max().unwrap_or(0) + adv_up;
                Some(Interval { lo, hi })
            }
            _ => None,
        };
        // Absent entirely = never defined here; any use is a finding.
        if !bases.is_empty() || !analyzable {
            out.insert(r, interval);
        }
    }
    out
}

/// Byte offset one past specifier `i` of `inst` — the PC value the
/// hardware uses for PC-relative displacement bases.
fn spec_end_offset(inst: &LocatedInst, i: usize) -> i64 {
    let spec_bytes: u32 = inst.inst.specs.iter().map(|s| u32::from(s.len)).sum();
    let branch_bytes = inst
        .inst
        .opcode
        .branch_displacement()
        .map_or(0, |t| t.data_type().size_bytes());
    let op_bytes = inst.inst.len - spec_bytes - branch_bytes;
    let through: u32 = inst.inst.specs[..=i].iter().map(|s| u32::from(s.len)).sum();
    inst.offset as i64 + i64::from(op_bytes) + i64::from(through)
}

/// Worst-case bytes written through a variable bit-field base: bits
/// `[pos, pos+size)` with `size <= 32` and `pos` bounded by the largest
/// static literal in the instruction (loop-counter positions stay under
/// [`ITER_CAP`] by the generator's own convention).
fn field_store_width(inst: &LocatedInst) -> i64 {
    let pos_hi = inst
        .inst
        .specs
        .iter()
        .filter_map(|s| vax_arch::sdecode::static_constant(&s.mode))
        .max()
        .unwrap_or(ITER_CAP)
        .min(1 << 16) as i64;
    (pos_hi + 31) / 8 + 1
}

/// Worst-case bytes written through an address-access destination
/// (string/decimal bases): bounded by the largest static length operand
/// (+1 covers packed-decimal digit counts), else the architectural
/// maximum.
fn address_store_width(inst: &LocatedInst) -> i64 {
    inst.inst
        .specs
        .iter()
        .filter_map(|s| vax_arch::sdecode::static_constant(&s.mode))
        .max()
        .map_or(DYNAMIC_STRING_MAX, |len| len.min(1 << 16) as i64 + 1)
}

/// Classify what specifier `i` of `inst` may write to memory.
#[allow(clippy::too_many_arguments)]
fn classify_store(
    model: &ImageModel,
    inst: &LocatedInst,
    i: usize,
    env: &std::collections::BTreeMap<Reg, Option<Interval>>,
    data_base: Option<i64>,
    table_base: Option<i64>,
) -> StoreTarget {
    let spec = &inst.inst.specs[i];
    let template = inst.inst.opcode.operands()[i];
    let op = inst.inst.opcode;

    // Is this specifier a memory-write channel at all?
    let width = match template.access() {
        AccessType::Read | AccessType::Branch => return StoreTarget::None,
        AccessType::Write | AccessType::Modify => i64::from(template.data_type().size_bytes()),
        AccessType::Field => match spec.mode {
            // Register-based fields write the register file.
            AddrMode::Register(_) => return StoreTarget::None,
            _ => field_store_width(inst),
        },
        AccessType::Address => {
            // Transfer targets (CALLx/JMP/JSB) and read-only string
            // bases are not stores; string/decimal destinations are.
            let writes = op.branch_class().is_none()
                && vax_ucode::model::exec_cost(op).is_none_or(|c| c.write > 0);
            if !writes {
                return StoreTarget::None;
            }
            if matches!(op, Opcode::Insque | Opcode::Remque) {
                // Queue instructions write the two link longwords of
                // each operand node, plus — through those links — the
                // neighbours' links. The neighbours stay inside the
                // data region by induction: the loader initializes
                // every link to a node address, and a queue write only
                // ever stores the address of an operand node (bounded
                // here) or copies an existing link. So the direct
                // 8-byte node spans are the whole story, provided they
                // themselves verify.
                8
            } else {
                address_store_width(inst)
            }
        }
    };

    // Indexed specifiers scale the (loop-counter) index by the operand
    // size; the generator keeps counters under ITER_CAP.
    let index_slack = if spec.index.is_some() {
        (ITER_CAP as i64) * i64::from(template.data_type().size_bytes())
    } else {
        0
    };

    let base_of = |reg: Reg, disp: i64| -> Result<Interval, &'static str> {
        match reg {
            Reg::R11 => data_base
                .map(|b| Interval::exact(b + disp))
                .ok_or("store through R11 without a single-assignment data anchor"),
            Reg::R9 => table_base
                .map(|b| Interval::exact(b + disp))
                .ok_or("store through R9 without a single-assignment table anchor"),
            Reg::Pc => {
                let pc = i64::from(model.base) + spec_end_offset(inst, i);
                Ok(Interval::exact(pc + disp))
            }
            _ => match env.get(&reg) {
                Some(Some(iv)) => Ok(iv.shift(disp)),
                Some(None) => Err("store through a walker register with unanalyzable writes"),
                None => Err("store through an unanalyzed base register"),
            },
        }
    };

    let direct = |iv: Interval| {
        StoreTarget::Direct(Span {
            lo: iv.lo,
            hi: iv.hi + width + index_slack,
        })
    };

    match spec.mode {
        AddrMode::Register(_) => StoreTarget::None,
        AddrMode::Literal(_) | AddrMode::Immediate { .. } => {
            StoreTarget::Unknown("store destination decodes as a literal")
        }
        // Stack traffic: bounded by the stack-depth analysis and the
        // P0/P1 disjointness check, never an SMC risk.
        AddrMode::RegDeferred(Reg::Sp)
        | AddrMode::AutoIncrement(Reg::Sp)
        | AddrMode::AutoDecrement(Reg::Sp)
        | AddrMode::Displacement { reg: Reg::Sp, .. } => StoreTarget::None,
        AddrMode::Displacement { reg, disp, .. } => match base_of(reg, i64::from(disp)) {
            Ok(iv) => direct(iv),
            Err(e) => StoreTarget::Unknown(e),
        },
        AddrMode::RegDeferred(reg)
        | AddrMode::AutoIncrement(reg)
        | AddrMode::AutoDecrement(reg) => match base_of(reg, 0) {
            Ok(iv) => direct(iv),
            Err(e) => StoreTarget::Unknown(e),
        },
        AddrMode::AutoIncDeferred(reg) => match base_of(reg, 0) {
            Ok(iv) => StoreTarget::Indirect(Span {
                lo: iv.lo,
                hi: iv.hi + 4,
            }),
            Err(e) => StoreTarget::Unknown(e),
        },
        AddrMode::DisplacementDeferred { reg, disp, .. } => match base_of(reg, i64::from(disp)) {
            Ok(iv) => StoreTarget::Indirect(Span {
                lo: iv.lo,
                hi: iv.hi + 4 + index_slack,
            }),
            Err(e) => StoreTarget::Unknown(e),
        },
        AddrMode::Absolute(a) => direct(Interval::exact(i64::from(a))),
    }
}

/// Verify the image's SMC-freedom and stack-depth claims.
///
/// Every store the interval analysis can bound must miss the code
/// bytes (or exactly match a declared patch site), no bounded store may
/// overwrite a pointer cell backing an indirect store, and the
/// worst-case stack depth over the acyclic call graph must fit the
/// mapped user stack. Unbounded stores are findings, not assumptions.
pub fn verify_image(model: &ImageModel, image: &DecodedImage) -> Report {
    let mut report = Report::new();
    let ctx = &model.name;

    let data_base = global_const_base(image, Reg::R11, None);
    let table_base = global_const_base(image, Reg::R9, data_base);
    let code = Span {
        lo: i64::from(model.base),
        hi: i64::from(model.end()),
    };

    // The stack lives in P1 space; if the image strays up there the
    // stack-disjointness argument (and the SP-store exemption) breaks.
    if model.end() > vax_mem::P1_BASE {
        report.push(Diagnostic::error(
            Rule::VerifySmc,
            ctx.clone(),
            format!(
                "image end {:#x} reaches P1 stack space ({:#x})",
                model.end(),
                vax_mem::P1_BASE
            ),
        ));
    }

    // ----- store enumeration -------------------------------------------------
    let mut direct: Vec<(Span, usize, &str)> = Vec::new(); // (span, offset, region)
    let mut cells: Vec<Span> = Vec::new();
    if let Some(tb) = table_base {
        // The pointer table itself backs every CALLS dispatch; treat it
        // as one protected cell span.
        cells.push(Span {
            lo: tb,
            hi: tb + 4 * i64::from(model.budgets.ptr_entries),
        });
    }
    for region in &image.regions {
        let loops = counted_loops(region);
        let env = region_reg_intervals(region, data_base, &loops);
        for inst in &region.insts {
            for i in 0..inst.inst.specs.len().min(inst.inst.opcode.operands().len()) {
                match classify_store(model, inst, i, &env, data_base, table_base) {
                    StoreTarget::None => {}
                    StoreTarget::Direct(span) => direct.push((span, inst.offset, &region.name)),
                    StoreTarget::Indirect(span) => {
                        if span.overlaps(code) {
                            report.push(
                                Diagnostic::error(
                                    Rule::VerifySmc,
                                    format!("{ctx}/{}", region.name),
                                    format!(
                                        "{} loads a store pointer from [{:#x}, {:#x}), which \
                                         overlaps the code bytes",
                                        inst.inst.opcode.mnemonic(),
                                        span.lo,
                                        span.hi
                                    ),
                                )
                                .at(inst.offset as u64),
                            );
                        }
                        cells.push(span);
                    }
                    StoreTarget::Unknown(why) => {
                        report.push(
                            Diagnostic::error(
                                Rule::VerifySmc,
                                format!("{ctx}/{}", region.name),
                                format!(
                                    "cannot bound the {} store target: {why}",
                                    inst.inst.opcode.mnemonic()
                                ),
                            )
                            .at(inst.offset as u64),
                        );
                    }
                }
            }
        }
    }

    // ----- SMC disjointness --------------------------------------------------
    for &(span, offset, rname) in &direct {
        if span.overlaps(code) {
            let declared = model
                .patch_sites
                .iter()
                .any(|&(va, len)| span.lo == i64::from(va) && span.hi == i64::from(va + len));
            if !declared {
                report.push(
                    Diagnostic::error(
                        Rule::VerifySmc,
                        format!("{ctx}/{rname}"),
                        format!(
                            "store may write [{:#x}, {:#x}), which overlaps the code bytes \
                             [{:#x}, {:#x}) and matches no declared patch site",
                            span.lo, span.hi, code.lo, code.hi
                        ),
                    )
                    .at(offset as u64),
                );
            }
        }
        for &cell in &cells {
            if span.overlaps(cell) {
                report.push(
                    Diagnostic::error(
                        Rule::VerifySmc,
                        format!("{ctx}/{rname}"),
                        format!(
                            "store may write [{:#x}, {:#x}), which overlaps a pointer cell \
                             span [{:#x}, {:#x}) backing indirect stores",
                            span.lo, span.hi, cell.lo, cell.hi
                        ),
                    )
                    .at(offset as u64),
                );
                break;
            }
        }
    }

    check_stack_depth(ctx, model, image, &mut report);
    report
}

// ----- stack depth ---------------------------------------------------------

/// Stack-pointer change of one instruction, as an interval, or the
/// reason it cannot be bounded. `BSBx` is handled by the caller (the
/// push belongs to the taken edge only).
fn stack_delta(inst: &LocatedInst) -> Result<(i64, i64), &'static str> {
    let op = inst.inst.opcode;
    let mut d: i64 = 0;
    for (spec, template) in inst.inst.specs.iter().zip(op.operands()) {
        let size = i64::from(template.data_type().size_bytes());
        match spec.mode {
            AddrMode::AutoDecrement(Reg::Sp) => d += size,
            AddrMode::AutoIncrement(Reg::Sp) => d -= size,
            AddrMode::AutoIncDeferred(Reg::Sp) => d -= 4,
            _ => {}
        }
    }
    match op {
        Opcode::Pushl => d += 4,
        Opcode::Pushr => match static_literal(inst, 0) {
            Some(mask) => d += 4 * i64::from((mask as u16 & 0x7FFF).count_ones()),
            None => return Err("PUSHR with a non-static register mask"),
        },
        Opcode::Popr => match static_literal(inst, 0) {
            Some(mask) => d -= 4 * i64::from((mask as u16 & 0x7FFF).count_ones()),
            None => return Err("POPR with a non-static register mask"),
        },
        // CALLS pops its arguments (and everything the callee framed)
        // by the time control returns to the fall-through path; the
        // callee-side frame is charged by the interprocedural bound.
        Opcode::Calls => match static_literal(inst, 0) {
            Some(nargs) => d -= 4 * nargs.min(255) as i64,
            None => return Err("CALLS with a non-static argument count"),
        },
        _ => {}
    }
    Ok((d, d))
}

/// The CALLS stack frame a callee with entry `mask` occupies: the
/// argument-count longword, five frame longwords (handler, mask/PSW,
/// AP, FP, PC), the mask-saved registers, and worst-case alignment.
fn calls_frame_bytes(mask: u16) -> i64 {
    4 + 20 + 4 * i64::from((mask & 0x0FFF).count_ones()) + 3
}

/// Interval dataflow over one region's CFG bounding the stack depth
/// relative to region entry. Returns the worst-case high-water mark.
fn region_stack_high(ctx: &str, region: &Region, report: &mut Report) -> i64 {
    use std::collections::BTreeMap;
    let Some(first) = region.insts.first() else {
        return 0;
    };
    let budget = i64::from(vax_workloads::USER_STACK_BYTES);
    let by_off: BTreeMap<usize, &LocatedInst> = region
        .insts
        .iter()
        .map(|inst| (inst.offset, inst))
        .collect();
    let mut state: BTreeMap<usize, (i64, i64)> = BTreeMap::new();
    state.insert(first.offset, (0, 0));
    let mut work = vec![first.offset];
    let mut high: i64 = 0;
    let mut flagged = false;
    while let Some(off) = work.pop() {
        let Some(inst) = by_off.get(&off) else {
            continue;
        };
        let (lo, hi) = state[&off];
        let op = inst.inst.opcode;
        let is_bsb = matches!(op, Opcode::Bsbb | Opcode::Bsbw);
        let (dlo, dhi) = if is_bsb {
            (0, 0) // the +4 rides the taken edge; fall-through resumes post-return
        } else {
            match stack_delta(inst) {
                Ok(d) => d,
                Err(why) => {
                    if !flagged {
                        report.push(
                            Diagnostic::error(
                                Rule::VerifyStackDepth,
                                format!("{ctx}/{}", region.name),
                                format!("cannot bound stack depth: {why}"),
                            )
                            .at(off as u64),
                        );
                        flagged = true;
                    }
                    (0, 0)
                }
            }
        };
        let (nlo, nhi) = (lo + dlo, hi + dhi);
        high = high.max(nhi);
        if nlo < 0 && !flagged {
            report.push(
                Diagnostic::error(
                    Rule::VerifyStackDepth,
                    format!("{ctx}/{}", region.name),
                    format!("stack may underflow region entry (depth reaches {nlo})"),
                )
                .at(off as u64),
            );
            flagged = true;
        }
        // Successor edges (same walk as reachability, bounded to the
        // region; clamping keeps the lattice finite so widening loops
        // terminate).
        let clamp = |v: i64| v.clamp(-budget, 2 * budget);
        let mut join = |target: usize, entry: (i64, i64), work: &mut Vec<usize>| {
            if !by_off.contains_key(&target) {
                return; // cross-region transfer: modeled interprocedurally
            }
            let entry = (clamp(entry.0), clamp(entry.1));
            let merged = match state.get(&target) {
                Some(&(elo, ehi)) => (elo.min(entry.0), ehi.max(entry.1)),
                None => entry,
            };
            if state.get(&target) != Some(&merged) {
                state.insert(target, merged);
                work.push(target);
            }
        };
        let fall_through = match op.branch_class() {
            Some(BranchClass::SimpleCond) => !matches!(op, Opcode::Brb | Opcode::Brw),
            Some(BranchClass::ProcedureCallRet) => op != Opcode::Ret,
            Some(BranchClass::SubroutineCallRet) => op != Opcode::Rsb,
            _ => true,
        };
        if fall_through {
            join(inst.end(), (nlo.min(nhi), nhi), &mut work);
        }
        if let Some(disp) = inst.inst.branch_disp {
            let target = off as i64 + i64::from(inst.inst.len) + i64::from(disp);
            if target >= 0 {
                let extra = if is_bsb { 4 } else { 0 };
                join(target as usize, (nlo + extra, nhi + extra), &mut work);
            }
        }
        if let Some(entries) = &inst.case_entries {
            let table_base = off as i64 + i64::from(inst.inst.len);
            for &entry in entries {
                let target = table_base + i64::from(entry);
                if target >= 0 {
                    join(target as usize, (nlo, nhi), &mut work);
                }
            }
        }
    }
    high
}

/// Compose the per-region stack high-water marks over the call graph:
/// the dispatcher may hold every function's frame live at once only if
/// the call DAG chains them, so (acyclicity proviso) the worst case is
/// the dispatcher plus every function's frame and local maximum.
fn check_stack_depth(ctx: &str, model: &ImageModel, image: &DecodedImage, report: &mut Report) {
    let budget = i64::from(vax_workloads::USER_STACK_BYTES);
    let mut total: i64 = 0;
    for region in &image.regions {
        let high = region_stack_high(ctx, region, report);
        if region.is_function {
            // region.start is past the 2-byte entry mask.
            let mask_off = region.start - 2;
            let mask = u16::from_le_bytes([
                model.bytes.get(mask_off).copied().unwrap_or(0),
                model.bytes.get(mask_off + 1).copied().unwrap_or(0),
            ]);
            total = total
                .saturating_add(calls_frame_bytes(mask))
                .saturating_add(high);
        } else {
            total = total.saturating_add(high);
        }
    }
    if total > budget {
        report.push(Diagnostic::error(
            Rule::VerifyStackDepth,
            ctx.to_string(),
            format!(
                "worst-case stack depth {total} bytes exceeds the mapped user stack \
                 ({budget} bytes)"
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Budgets;
    use vax_arch::{Assembler, Operand};

    fn model_from(asm_bytes: Vec<u8>, base: u32, functions: Vec<u32>) -> ImageModel {
        ImageModel {
            name: "test".into(),
            base,
            entry: base,
            functions,
            bytes: asm_bytes,
            budgets: Budgets {
                walker_len: 4096,
                bias_len: 16384,
                ptr_entries: 256,
            },
            patch_sites: vec![],
        }
    }

    #[test]
    fn clean_straight_line_code_passes() {
        let mut asm = Assembler::new(0x1000);
        asm.inst(Opcode::Movl, &[Operand::Literal(5), Operand::Reg(Reg::R0)])
            .unwrap();
        asm.inst(Opcode::Pushl, &[Operand::Reg(Reg::R0)]).unwrap();
        asm.inst(
            Opcode::Movl,
            &[Operand::AutoIncrement(Reg::Sp), Operand::Reg(Reg::R1)],
        )
        .unwrap();
        asm.inst(Opcode::Ret, &[]).unwrap();
        let image = asm.finish().unwrap();
        let (decoded, report) = check_image(&model_from(image.bytes, 0x1000, vec![]));
        assert!(decoded.is_some());
        assert!(report.is_clean(), "{}", report.render_text());
    }

    #[test]
    fn privileged_opcode_is_flagged_with_offset() {
        let mut asm = Assembler::new(0x1000);
        asm.inst(Opcode::Nop, &[]).unwrap();
        asm.inst(Opcode::Halt, &[]).unwrap();
        let image = asm.finish().unwrap();
        let (_, report) = check_image(&model_from(image.bytes, 0x1000, vec![]));
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.rule == Rule::ImagePrivileged)
            .expect("privileged finding");
        assert_eq!(d.offset, Some(1));
    }

    #[test]
    fn out_of_bounds_branch_is_flagged() {
        // BRB with a displacement leaving the image.
        let bytes = vec![0x11, 0x70, 0x01];
        let (_, report) = check_image(&model_from(bytes, 0x1000, vec![]));
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.rule == Rule::ImageBranchTarget && d.offset == Some(0)),
            "{}",
            report.render_text()
        );
    }

    #[test]
    fn unbalanced_pushr_is_flagged() {
        let mut asm = Assembler::new(0x1000);
        asm.inst(Opcode::Pushr, &[Operand::Immediate(0x3)]).unwrap();
        asm.inst(Opcode::Popr, &[Operand::Immediate(0x7)]).unwrap();
        let image = asm.finish().unwrap();
        let (_, report) = check_image(&model_from(image.bytes, 0x1000, vec![]));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.rule == Rule::ImagePushPop));
    }

    #[test]
    fn walker_overrun_in_a_loop_is_flagged() {
        // MOVL #31, R3; top: MOVQ (R6)+, R0; SOBGTR R3, top — 8 bytes
        // per iteration times 31 iterations exceeds a 64-byte arena.
        let mut asm = Assembler::new(0x1000);
        asm.inst(Opcode::Movl, &[Operand::Literal(31), Operand::Reg(Reg::R3)])
            .unwrap();
        let top = asm.label_here();
        asm.inst(
            Opcode::Movq,
            &[Operand::AutoIncrement(Reg::R6), Operand::Reg(Reg::R0)],
        )
        .unwrap();
        asm.branch(Opcode::Sobgtr, &[Operand::Reg(Reg::R3)], top)
            .unwrap();
        asm.inst(Opcode::Ret, &[]).unwrap();
        let image = asm.finish().unwrap();
        let mut model = model_from(image.bytes, 0x1000, vec![]);
        model.budgets.walker_len = 64;
        let (_, report) = check_image(&model);
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.rule == Rule::ImageWalkerBudget),
            "{}",
            report.render_text()
        );
    }

    #[test]
    fn unreachable_code_warns() {
        let mut asm = Assembler::new(0x1000);
        asm.inst(Opcode::Ret, &[]).unwrap();
        asm.inst(Opcode::Nop, &[]).unwrap();
        let image = asm.finish().unwrap();
        let (_, report) = check_image(&model_from(image.bytes, 0x1000, vec![]));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.rule == Rule::ImageUnreachable));
    }
}
