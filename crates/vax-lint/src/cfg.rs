//! Static decode and control-flow checks over a generated image.
//!
//! The image is decoded region by region (dispatcher, then each
//! function body past its 2-byte entry mask) with the total static
//! decoder, then checked against the generator's documented safety
//! invariants: decode totality, in-bounds branch targets, no
//! privileged opcodes, adjacent push/pop idioms, sized case tables,
//! reachability, and worst-case walker/bias/pointer-arena consumption.

use crate::diag::{Diagnostic, Report, Rule};
use crate::image::ImageModel;
use vax_arch::sdecode::{decode_range, LocatedInst};
use vax_arch::{AddrMode, BranchClass, Opcode, Reg};

/// One contiguous decoded code region of the image.
#[derive(Debug, Clone)]
pub struct Region {
    /// Display name (`dispatcher`, `fn3`, ...).
    pub name: String,
    /// Byte offset of the first instruction (entry masks excluded).
    pub start: usize,
    /// Byte offset one past the last instruction.
    pub end: usize,
    /// The instructions, in address order, tiling `[start, end)`.
    pub insts: Vec<LocatedInst>,
    /// Is this a function body (subject to arena-budget analysis)?
    pub is_function: bool,
}

/// A fully decoded image: every region, every instruction located.
#[derive(Debug, Clone)]
pub struct DecodedImage {
    /// All regions in address order, dispatcher first.
    pub regions: Vec<Region>,
}

impl DecodedImage {
    /// Iterate over every located instruction in every region.
    pub fn insts(&self) -> impl Iterator<Item = &LocatedInst> {
        self.regions.iter().flat_map(|r| r.insts.iter())
    }
}

/// The generator's register conventions (mirrors `codegen::regs`; the
/// lint recomputes budgets from the instruction stream alone).
mod regs {
    use vax_arch::Reg;
    pub const BIAS: Reg = Reg::R10;
    pub const WALK_UP: Reg = Reg::R6;
    pub const WALK_DOWN: Reg = Reg::R7;
    pub const PTR_WALKER: Reg = Reg::R8;
}

/// Opcodes that must never appear in a user-mode stream.
const PRIVILEGED: &[Opcode] = &[
    Opcode::Halt,
    Opcode::Rei,
    Opcode::Ldpctx,
    Opcode::Svpctx,
    Opcode::Mtpr,
    Opcode::Mfpr,
];

/// Decode the image into regions and run every image-family check.
///
/// Returns the decoded image (when total decode succeeded everywhere)
/// so downstream analyses (the static mix) can reuse it.
pub fn check_image(model: &ImageModel) -> (Option<DecodedImage>, Report) {
    let mut report = Report::new();
    let ctx = &model.name;

    // ----- region boundaries -------------------------------------------------
    let len = model.bytes.len();
    let entry_off = match rel_offset(model, model.entry) {
        Some(off) => off,
        None => {
            report.push(Diagnostic::error(
                Rule::ImageBranchTarget,
                ctx.clone(),
                format!("entry {:#x} lies outside the image", model.entry),
            ));
            return (None, report);
        }
    };
    let mut fn_offs = Vec::with_capacity(model.functions.len());
    for (i, &f) in model.functions.iter().enumerate() {
        match rel_offset(model, f) {
            // +2 skips the procedure entry mask word.
            Some(off) if off + 2 <= len => fn_offs.push(off),
            _ => {
                report.push(Diagnostic::error(
                    Rule::ImageBranchTarget,
                    ctx.clone(),
                    format!("function {i} entry {f:#x} lies outside the image"),
                ));
                return (None, report);
            }
        }
    }
    if fn_offs.windows(2).any(|w| w[0] >= w[1]) || fn_offs.first().is_some_and(|&f| f < entry_off) {
        report.push(Diagnostic::error(
            Rule::ImageBranchTarget,
            ctx.clone(),
            "function entries are not in ascending address order past the entry".to_string(),
        ));
        return (None, report);
    }

    let mut bounds = Vec::new();
    let first_end = fn_offs.first().copied().unwrap_or(len);
    bounds.push(("dispatcher".to_string(), entry_off, first_end, false));
    for (i, &off) in fn_offs.iter().enumerate() {
        let end = fn_offs.get(i + 1).copied().unwrap_or(len);
        bounds.push((format!("fn{i}"), off + 2, end, true));
    }

    // ----- totality decode ---------------------------------------------------
    let mut regions = Vec::new();
    let mut decode_ok = true;
    for (name, start, end, is_function) in bounds {
        match decode_range(&model.bytes, start, end) {
            Ok(insts) => regions.push(Region {
                name,
                start,
                end,
                insts,
                is_function,
            }),
            Err((decoded, bad_off, e)) => {
                decode_ok = false;
                let rule = if format!("{e}").contains("case limit") {
                    Rule::ImageCaseTable
                } else {
                    Rule::ImageDecode
                };
                report.push(
                    Diagnostic::error(
                        rule,
                        format!("{ctx}/{name}"),
                        format!("decode fails at byte {bad_off:#x}: {e}"),
                    )
                    .at(bad_off as u64),
                );
                regions.push(Region {
                    name,
                    start,
                    end: decoded.last().map_or(start, LocatedInst::end),
                    insts: decoded,
                    is_function,
                });
            }
        }
    }
    let image = DecodedImage { regions };

    // ----- per-instruction checks -------------------------------------------
    let starts: std::collections::BTreeSet<usize> = image.insts().map(|inst| inst.offset).collect();
    for region in &image.regions {
        check_privileged(ctx, region, &mut report);
        check_push_pop(ctx, region, &mut report);
        check_branch_targets(ctx, region, &starts, len, &mut report);
    }
    check_reachability(ctx, &image, entry_off, &fn_offs, &mut report);
    // Walker/bias/pointer budgets apply per region: the walkers are
    // re-based at every function entry, and the dispatcher (which never
    // touches them) vacuously passes.
    for region in &image.regions {
        check_budgets(ctx, region, model, &mut report);
    }

    (decode_ok.then_some(image), report)
}

fn rel_offset(model: &ImageModel, va: u32) -> Option<usize> {
    if va >= model.base && va < model.end() {
        Some((va - model.base) as usize)
    } else {
        None
    }
}

fn check_privileged(ctx: &str, region: &Region, report: &mut Report) {
    for inst in &region.insts {
        if PRIVILEGED.contains(&inst.inst.opcode) {
            report.push(
                Diagnostic::error(
                    Rule::ImagePrivileged,
                    format!("{ctx}/{}", region.name),
                    format!(
                        "privileged opcode {} in a user-mode stream",
                        inst.inst.opcode.mnemonic()
                    ),
                )
                .at(inst.offset as u64),
            );
        }
    }
}

/// Both stack idioms the generator claims are always balanced:
/// `PUSHR mask` immediately followed by `POPR` of the same mask, and
/// `PUSHL` immediately consumed by another push, a `CALLS`, or a
/// `MOVL (SP)+, dst` pop.
fn check_push_pop(ctx: &str, region: &Region, report: &mut Report) {
    for pair in region.insts.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        match a.inst.opcode {
            Opcode::Pushr => {
                let balanced = b.inst.opcode == Opcode::Popr
                    && a.inst.specs.first().map(|s| &s.mode)
                        == b.inst.specs.first().map(|s| &s.mode);
                if !balanced {
                    report.push(
                        Diagnostic::error(
                            Rule::ImagePushPop,
                            format!("{ctx}/{}", region.name),
                            format!(
                                "PUSHR is not followed by a POPR of the same mask (next is {})",
                                b.inst.opcode.mnemonic()
                            ),
                        )
                        .at(a.offset as u64),
                    );
                }
            }
            Opcode::Pushl => {
                let consumed = match b.inst.opcode {
                    Opcode::Pushl | Opcode::Calls => true,
                    Opcode::Movl => matches!(
                        b.inst.specs.first().map(|s| &s.mode),
                        Some(AddrMode::AutoIncrement(Reg::Sp))
                    ),
                    _ => false,
                };
                if !consumed {
                    report.push(
                        Diagnostic::error(
                            Rule::ImagePushPop,
                            format!("{ctx}/{}", region.name),
                            format!(
                                "PUSHL is not consumed by a push, CALLS, or (SP)+ pop (next is {})",
                                b.inst.opcode.mnemonic()
                            ),
                        )
                        .at(a.offset as u64),
                    );
                }
            }
            _ => {}
        }
    }
    if let Some(last) = region.insts.last() {
        if matches!(last.inst.opcode, Opcode::Pushr | Opcode::Pushl) {
            report.push(
                Diagnostic::error(
                    Rule::ImagePushPop,
                    format!("{ctx}/{}", region.name),
                    "region ends on an unbalanced push".to_string(),
                )
                .at(last.offset as u64),
            );
        }
    }
}

/// Every statically known transfer target — branch displacements and
/// case-table entries — must land on a decoded instruction boundary
/// inside the image.
fn check_branch_targets(
    ctx: &str,
    region: &Region,
    starts: &std::collections::BTreeSet<usize>,
    image_len: usize,
    report: &mut Report,
) {
    let mut bad = |off: usize, what: String, target: i64| {
        let landing = if target < 0 || target as usize >= image_len {
            "outside the image"
        } else {
            "inside another instruction"
        };
        report.push(
            Diagnostic::error(
                Rule::ImageBranchTarget,
                format!("{ctx}/{}", region.name),
                format!("{what} target {target:#x} lands {landing}"),
            )
            .at(off as u64),
        );
    };
    for inst in &region.insts {
        if let Some(disp) = inst.inst.branch_disp {
            let target = inst.offset as i64 + i64::from(inst.inst.len) + i64::from(disp);
            if target < 0 || !starts.contains(&(target as usize)) {
                bad(
                    inst.offset,
                    format!("{} branch", inst.inst.opcode.mnemonic()),
                    target,
                );
            }
        }
        if let Some(entries) = &inst.case_entries {
            let table_base = inst.offset as i64 + i64::from(inst.inst.len);
            for (i, &entry) in entries.iter().enumerate() {
                let target = table_base + i64::from(entry);
                if target < 0 || !starts.contains(&(target as usize)) {
                    bad(
                        inst.offset,
                        format!("{} case entry {i}", inst.inst.opcode.mnemonic()),
                        target,
                    );
                }
            }
        }
    }
}

/// Worklist reachability from the dispatcher entry and every function
/// entry. Code the walk never reaches is a generator bug worth seeing
/// (it distorts the static mix), but harmless to run — a warning.
fn check_reachability(
    ctx: &str,
    image: &DecodedImage,
    entry_off: usize,
    fn_offs: &[usize],
    report: &mut Report,
) {
    use std::collections::{BTreeMap, BTreeSet};
    let by_off: BTreeMap<usize, &LocatedInst> =
        image.insts().map(|inst| (inst.offset, inst)).collect();
    let mut work: Vec<usize> = Vec::new();
    work.push(entry_off);
    // Function entries are reached through the pointer table (CALLS),
    // which static analysis cannot follow; treat them as roots.
    work.extend(fn_offs.iter().map(|&f| f + 2));
    let mut seen: BTreeSet<usize> = BTreeSet::new();
    while let Some(off) = work.pop() {
        if !seen.insert(off) {
            continue;
        }
        let Some(inst) = by_off.get(&off) else {
            continue;
        };
        let op = inst.inst.opcode;
        let fall_through = match op.branch_class() {
            // BRB/BRW share the simple-branch class but never fall
            // through; RET/RSB end the walk (callers are separate roots).
            Some(BranchClass::SimpleCond) => !matches!(op, Opcode::Brb | Opcode::Brw),
            Some(BranchClass::ProcedureCallRet) => op != Opcode::Ret,
            Some(BranchClass::SubroutineCallRet) => op != Opcode::Rsb,
            _ => true,
        };
        if fall_through {
            work.push(inst.end());
        }
        if let Some(disp) = inst.inst.branch_disp {
            let target = off as i64 + i64::from(inst.inst.len) + i64::from(disp);
            if target >= 0 {
                work.push(target as usize);
            }
        }
        if let Some(entries) = &inst.case_entries {
            let table_base = off as i64 + i64::from(inst.inst.len);
            for &entry in entries {
                let target = table_base + i64::from(entry);
                if target >= 0 {
                    work.push(target as usize);
                }
            }
        }
    }
    for region in &image.regions {
        let unreached: Vec<usize> = region
            .insts
            .iter()
            .map(|inst| inst.offset)
            .filter(|off| !seen.contains(off))
            .collect();
        if let Some(&first) = unreached.first() {
            report.push(
                Diagnostic::warning(
                    Rule::ImageUnreachable,
                    format!("{ctx}/{}", region.name),
                    format!(
                        "{} instruction(s) unreachable from any entry",
                        unreached.len()
                    ),
                )
                .at(first as u64),
            );
        }
    }
}

/// Recompute the generator's worst-case arena accounting from the
/// instruction stream: each walker-mode specifier consumes its operand
/// size once per iteration of every enclosing counted loop, and the
/// total must fit the arena the walker is re-based to at function
/// entry.
fn check_budgets(ctx: &str, region: &Region, model: &ImageModel, report: &mut Report) {
    // Counted-loop intervals: a backward Loop-class branch closes the
    // interval [target, branch]; its trip count comes from the loop
    // idiom (AOBLSS/SOBGTR/ACBL), capped at the generator's own cap.
    const ITER_CAP: u64 = 32;
    let mut loops: Vec<(usize, usize, u64)> = Vec::new();
    for inst in &region.insts {
        if inst.inst.opcode.branch_class() != Some(BranchClass::Loop) {
            continue;
        }
        let Some(disp) = inst.inst.branch_disp else {
            continue;
        };
        let target = inst.offset as i64 + i64::from(inst.inst.len) + i64::from(disp);
        if disp >= 0 || target < 0 {
            continue;
        }
        let top = target as usize;
        let iters = match inst.inst.opcode {
            Opcode::Aoblss => static_literal(inst, 0),
            Opcode::Acbl => static_literal(inst, 0).map(|v| v + 1),
            Opcode::Sobgtr => region
                .insts
                .iter()
                .find(|prev| prev.end() == top && prev.inst.opcode == Opcode::Movl)
                .and_then(|prev| static_literal(prev, 0)),
            _ => None,
        };
        loops.push((top, inst.offset, iters.unwrap_or(ITER_CAP).min(ITER_CAP)));
    }

    let mut walker_use: u64 = 0;
    let mut bias_use: u64 = 0;
    let mut ptr_use: u64 = 0;
    for inst in &region.insts {
        let mult: u64 = loops
            .iter()
            .filter(|&&(top, bottom, _)| (top..=bottom).contains(&inst.offset))
            .map(|&(_, _, iters)| iters)
            .fold(1, u64::saturating_mul);
        let templates = inst.inst.opcode.operands();
        for (spec, template) in inst.inst.specs.iter().zip(templates) {
            let size = u64::from(template.data_type().size_bytes());
            match spec.mode {
                AddrMode::AutoIncrement(regs::WALK_UP)
                | AddrMode::AutoDecrement(regs::WALK_DOWN) => {
                    walker_use = walker_use.saturating_add(size.saturating_mul(mult));
                }
                AddrMode::AutoIncrement(regs::BIAS) => {
                    bias_use = bias_use.saturating_add(size.saturating_mul(mult));
                }
                AddrMode::AutoIncDeferred(regs::PTR_WALKER) => {
                    ptr_use = ptr_use.saturating_add(mult);
                }
                _ => {}
            }
        }
    }

    let budgets = [
        (
            "walker arenas",
            walker_use,
            u64::from(model.budgets.walker_len),
            "bytes",
        ),
        (
            "bias stream",
            bias_use,
            u64::from(model.budgets.bias_len),
            "bytes",
        ),
        (
            "pointer table",
            ptr_use,
            u64::from(model.budgets.ptr_entries),
            "entries",
        ),
    ];
    for (what, used, limit, unit) in budgets {
        if used > limit {
            report.push(Diagnostic::error(
                Rule::ImageWalkerBudget,
                format!("{ctx}/{}", region.name),
                format!(
                    "worst-case {what} consumption {used} {unit} exceeds the arena ({limit} {unit})"
                ),
            ));
        }
    }
}

/// The static constant of specifier `i`, if it is a short literal or
/// immediate.
fn static_literal(inst: &LocatedInst, i: usize) -> Option<u64> {
    inst.inst
        .specs
        .get(i)
        .and_then(|s| vax_arch::sdecode::static_constant(&s.mode))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Budgets;
    use vax_arch::{Assembler, Operand};

    fn model_from(asm_bytes: Vec<u8>, base: u32, functions: Vec<u32>) -> ImageModel {
        ImageModel {
            name: "test".into(),
            base,
            entry: base,
            functions,
            bytes: asm_bytes,
            budgets: Budgets {
                walker_len: 4096,
                bias_len: 16384,
                ptr_entries: 256,
            },
        }
    }

    #[test]
    fn clean_straight_line_code_passes() {
        let mut asm = Assembler::new(0x1000);
        asm.inst(Opcode::Movl, &[Operand::Literal(5), Operand::Reg(Reg::R0)])
            .unwrap();
        asm.inst(Opcode::Pushl, &[Operand::Reg(Reg::R0)]).unwrap();
        asm.inst(
            Opcode::Movl,
            &[Operand::AutoIncrement(Reg::Sp), Operand::Reg(Reg::R1)],
        )
        .unwrap();
        asm.inst(Opcode::Ret, &[]).unwrap();
        let image = asm.finish().unwrap();
        let (decoded, report) = check_image(&model_from(image.bytes, 0x1000, vec![]));
        assert!(decoded.is_some());
        assert!(report.is_clean(), "{}", report.render_text());
    }

    #[test]
    fn privileged_opcode_is_flagged_with_offset() {
        let mut asm = Assembler::new(0x1000);
        asm.inst(Opcode::Nop, &[]).unwrap();
        asm.inst(Opcode::Halt, &[]).unwrap();
        let image = asm.finish().unwrap();
        let (_, report) = check_image(&model_from(image.bytes, 0x1000, vec![]));
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.rule == Rule::ImagePrivileged)
            .expect("privileged finding");
        assert_eq!(d.offset, Some(1));
    }

    #[test]
    fn out_of_bounds_branch_is_flagged() {
        // BRB with a displacement leaving the image.
        let bytes = vec![0x11, 0x70, 0x01];
        let (_, report) = check_image(&model_from(bytes, 0x1000, vec![]));
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.rule == Rule::ImageBranchTarget && d.offset == Some(0)),
            "{}",
            report.render_text()
        );
    }

    #[test]
    fn unbalanced_pushr_is_flagged() {
        let mut asm = Assembler::new(0x1000);
        asm.inst(Opcode::Pushr, &[Operand::Immediate(0x3)]).unwrap();
        asm.inst(Opcode::Popr, &[Operand::Immediate(0x7)]).unwrap();
        let image = asm.finish().unwrap();
        let (_, report) = check_image(&model_from(image.bytes, 0x1000, vec![]));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.rule == Rule::ImagePushPop));
    }

    #[test]
    fn walker_overrun_in_a_loop_is_flagged() {
        // MOVL #31, R3; top: MOVQ (R6)+, R0; SOBGTR R3, top — 8 bytes
        // per iteration times 31 iterations exceeds a 64-byte arena.
        let mut asm = Assembler::new(0x1000);
        asm.inst(Opcode::Movl, &[Operand::Literal(31), Operand::Reg(Reg::R3)])
            .unwrap();
        let top = asm.label_here();
        asm.inst(
            Opcode::Movq,
            &[Operand::AutoIncrement(Reg::R6), Operand::Reg(Reg::R0)],
        )
        .unwrap();
        asm.branch(Opcode::Sobgtr, &[Operand::Reg(Reg::R3)], top)
            .unwrap();
        asm.inst(Opcode::Ret, &[]).unwrap();
        let image = asm.finish().unwrap();
        let mut model = model_from(image.bytes, 0x1000, vec![]);
        model.budgets.walker_len = 64;
        let (_, report) = check_image(&model);
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.rule == Rule::ImageWalkerBudget),
            "{}",
            report.render_text()
        );
    }

    #[test]
    fn unreachable_code_warns() {
        let mut asm = Assembler::new(0x1000);
        asm.inst(Opcode::Ret, &[]).unwrap();
        asm.inst(Opcode::Nop, &[]).unwrap();
        let image = asm.finish().unwrap();
        let (_, report) = check_image(&model_from(image.bytes, 0x1000, vec![]));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.rule == Rule::ImageUnreachable));
    }
}
