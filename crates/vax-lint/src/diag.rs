//! Structured lint diagnostics: severity, rule identity, site, report.

use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but tolerable drift; fails only under `--deny`.
    Warning,
    /// A broken invariant; always fails the lint.
    Error,
}

impl Severity {
    /// Lowercase label (`warning` / `error`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// The rule catalog. Six families: image CFG/decode checks,
/// static-mix-vs-profile checks, table/taxonomy audits, probe
/// measurement-vs-model refutation checks, effect-audit checks of the
/// block tier's safety claims, and abstract-interpretation
/// verification of images (SMC freedom, stack depth, run lengths).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    // ----- image family -----------------------------------------------------
    /// A byte range failed to decode as instructions (totality).
    ImageDecode,
    /// A branch or case target leaves the image or splits an instruction.
    ImageBranchTarget,
    /// A privileged opcode appears in a user-mode instruction stream.
    ImagePrivileged,
    /// A PUSHR/POPR or PUSHL idiom is not adjacent/balanced.
    ImagePushPop,
    /// Worst-case walker/bias/pointer consumption exceeds its arena.
    ImageWalkerBudget,
    /// A case instruction's table cannot be sized statically.
    ImageCaseTable,
    /// Decoded code not reachable from the entry or any function.
    ImageUnreachable,
    // ----- mix family -------------------------------------------------------
    /// A weighted category is absent, or a zero-weight category present.
    MixCategory,
    /// A category's static share drifts beyond tolerance.
    MixShare,
    /// An addressing-mode share drifts beyond tolerance.
    ModeShare,
    // ----- table family -----------------------------------------------------
    /// An opcode's operand templates are inconsistent with its flags.
    TableOpcode,
    /// The control store misses a dispatch address or opcode slot.
    UcodeCoverage,
    /// Control-store regions overlap or classify an address twice.
    UcodeOverlap,
    /// A hardware counter or event kind is missing from the taxonomy.
    CounterTaxonomy,
    // ----- probe family (measurement vs static model) -----------------------
    /// A measured addressing-mode row disagrees with the static model.
    ProbeMode,
    /// A measured opcode execute row disagrees with the static model.
    ProbeOpcode,
    /// A probe measurement is internally inconsistent (reconciliation,
    /// divisibility, cross-sequence agreement). Never allowlistable.
    ProbeMeasurement,
    /// A workload-exercised opcode × mode pair was not probed.
    ProbeCoverage,
    /// The probe allowlist is malformed, names unknown keys, or carries
    /// entries no measurement used.
    ProbeAllowlist,
    // ----- effect family (block-tier safety claims vs derivation) -----------
    /// An opcode claimed block-safe has a derived footprint that can
    /// redirect PC or perturb interrupt state.
    EffectBlockSafe,
    /// An opcode claimed resume-safe has a derived footprint that can
    /// perturb interrupt state.
    EffectResumeSafe,
    /// An opcode the derivation proves safe is claimed unsafe: block
    /// coverage foregone.
    EffectForgone,
    // ----- verify family (abstract interpretation over images) -------------
    /// A reachable store's target interval can intersect the code bytes
    /// without matching a declared patch site (self-modifying code).
    VerifySmc,
    /// Stack depth unbounded, unbalanced at a join, underflowing, or
    /// exceeding the mapped user stack.
    VerifyStackDepth,
    /// The static straight-line run-length prediction and the dynamic
    /// block statistics diverge beyond tolerance.
    VerifyRunLength,
}

impl Rule {
    /// Every rule, in catalog order.
    pub const ALL: &'static [Rule] = &[
        Rule::ImageDecode,
        Rule::ImageBranchTarget,
        Rule::ImagePrivileged,
        Rule::ImagePushPop,
        Rule::ImageWalkerBudget,
        Rule::ImageCaseTable,
        Rule::ImageUnreachable,
        Rule::MixCategory,
        Rule::MixShare,
        Rule::ModeShare,
        Rule::TableOpcode,
        Rule::UcodeCoverage,
        Rule::UcodeOverlap,
        Rule::CounterTaxonomy,
        Rule::ProbeMode,
        Rule::ProbeOpcode,
        Rule::ProbeMeasurement,
        Rule::ProbeCoverage,
        Rule::ProbeAllowlist,
        Rule::EffectBlockSafe,
        Rule::EffectResumeSafe,
        Rule::EffectForgone,
        Rule::VerifySmc,
        Rule::VerifyStackDepth,
        Rule::VerifyRunLength,
    ];

    /// Stable rule identifier (what `--deny` matches).
    pub fn id(self) -> &'static str {
        match self {
            Rule::ImageDecode => "image-decode",
            Rule::ImageBranchTarget => "image-branch-target",
            Rule::ImagePrivileged => "image-privileged",
            Rule::ImagePushPop => "image-push-pop",
            Rule::ImageWalkerBudget => "image-walker-budget",
            Rule::ImageCaseTable => "image-case-table",
            Rule::ImageUnreachable => "image-unreachable",
            Rule::MixCategory => "mix-category",
            Rule::MixShare => "mix-share",
            Rule::ModeShare => "mode-share",
            Rule::TableOpcode => "table-opcode",
            Rule::UcodeCoverage => "ucode-coverage",
            Rule::UcodeOverlap => "ucode-overlap",
            Rule::CounterTaxonomy => "counter-taxonomy",
            Rule::ProbeMode => "probe-mode",
            Rule::ProbeOpcode => "probe-opcode",
            Rule::ProbeMeasurement => "probe-measurement",
            Rule::ProbeCoverage => "probe-coverage",
            Rule::ProbeAllowlist => "probe-allowlist",
            Rule::EffectBlockSafe => "effect-block-safe",
            Rule::EffectResumeSafe => "effect-resume-safe",
            Rule::EffectForgone => "effect-forgone",
            Rule::VerifySmc => "verify-smc",
            Rule::VerifyStackDepth => "verify-stack-depth",
            Rule::VerifyRunLength => "verify-run-length",
        }
    }

    /// Look a rule up by its identifier.
    pub fn parse(id: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.id() == id)
    }

    /// One-line documentation, for `vax780 lint --list-rules`.
    pub fn doc(self) -> &'static str {
        match self {
            Rule::ImageDecode => "a byte range fails to decode as instructions (totality)",
            Rule::ImageBranchTarget => {
                "a branch or case target leaves the image or splits an instruction"
            }
            Rule::ImagePrivileged => "a privileged opcode appears in a user-mode stream",
            Rule::ImagePushPop => "a PUSHR/POPR or PUSHL idiom is not adjacent/balanced",
            Rule::ImageWalkerBudget => {
                "worst-case walker/bias/pointer consumption exceeds its arena"
            }
            Rule::ImageCaseTable => "a case instruction's table cannot be sized statically",
            Rule::ImageUnreachable => "decoded code is unreachable from the entry or any function",
            Rule::MixCategory => "a weighted category is absent, or a zero-weight one present",
            Rule::MixShare => "a category's static share drifts beyond tolerance",
            Rule::ModeShare => "an addressing-mode share drifts beyond tolerance",
            Rule::TableOpcode => "an opcode's operand templates are inconsistent with its flags",
            Rule::UcodeCoverage => "the control store misses a dispatch address or opcode slot",
            Rule::UcodeOverlap => "control-store regions overlap or classify an address twice",
            Rule::CounterTaxonomy => "a counter or event kind is missing from the taxonomy",
            Rule::ProbeMode => "a measured addressing-mode row disagrees with the static model",
            Rule::ProbeOpcode => "a measured opcode execute row disagrees with the static model",
            Rule::ProbeMeasurement => "a probe measurement is internally inconsistent",
            Rule::ProbeCoverage => "a workload-exercised opcode x mode pair was not probed",
            Rule::ProbeAllowlist => "the probe allowlist is malformed or carries unused entries",
            Rule::EffectBlockSafe => {
                "an opcode claimed block-safe has a derived footprint that is not"
            }
            Rule::EffectResumeSafe => "an opcode claimed resume-safe can perturb interrupt state",
            Rule::EffectForgone => "a derived-safe opcode is claimed unsafe (coverage foregone)",
            Rule::VerifySmc => "a reachable store can hit code bytes outside a declared patch site",
            Rule::VerifyStackDepth => {
                "stack depth is unbalanced, underflows, or exceeds the user stack"
            }
            Rule::VerifyRunLength => {
                "static run-length prediction diverges from dynamic block stats"
            }
        }
    }

    /// The severity of the rule's primary finding, before any `--deny`
    /// promotion. A few rules also emit the other severity for
    /// aggravated or auxiliary findings (`mode-share` escalates when a
    /// weighted mode never appears at all, `probe-allowlist` warns on
    /// stale-but-well-formed entries).
    pub fn default_severity(self) -> Severity {
        match self {
            Rule::ImageUnreachable
            | Rule::MixShare
            | Rule::ModeShare
            | Rule::EffectForgone
            | Rule::VerifyRunLength => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// How bad it is.
    pub severity: Severity,
    /// Which rule fired.
    pub rule: Rule,
    /// What was being linted (`timesharing-light/proc0`, `opcode-table`,
    /// an image file name, ...).
    pub context: String,
    /// Byte offset within the linted image, if the finding has one, or a
    /// table-cell index for table audits.
    pub offset: Option<u64>,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// An error-severity finding.
    pub fn error(rule: Rule, context: impl Into<String>, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            rule,
            context: context.into(),
            offset: None,
            message: message.into(),
        }
    }

    /// A warning-severity finding.
    pub fn warning(
        rule: Rule,
        context: impl Into<String>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            rule,
            context: context.into(),
            offset: None,
            message: message.into(),
        }
    }

    /// Attach a byte offset (or table-cell index).
    pub fn at(mut self, offset: u64) -> Diagnostic {
        self.offset = Some(offset);
        self
    }

    /// Render as one text line.
    pub fn render_text(&self) -> String {
        let site = match self.offset {
            Some(off) => format!("{} +{off:#06x}", self.context),
            None => self.context.clone(),
        };
        format!(
            "{}[{}] {}: {}",
            self.severity.label(),
            self.rule.id(),
            site,
            self.message
        )
    }

    /// Render as one JSON object (JSONL line).
    pub fn render_jsonl(&self) -> String {
        let escape = |s: &str| {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        };
        let offset = match self.offset {
            Some(off) => off.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"severity\":\"{}\",\"rule\":\"{}\",\"context\":\"{}\",\"offset\":{},\"message\":\"{}\"}}",
            self.severity.label(),
            self.rule.id(),
            escape(&self.context),
            offset,
            escape(&self.message)
        )
    }
}

/// A collection of findings from one lint invocation.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All findings, in discovery order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Report {
        Report::default()
    }

    /// Fold another report's findings into this one.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Add one finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Promote warnings matching `deny` (rule ids, or `"all"`) to errors.
    pub fn apply_deny(&mut self, deny: &[String]) {
        let deny_all = deny.iter().any(|d| d == "all");
        for d in &mut self.diagnostics {
            if d.severity == Severity::Warning
                && (deny_all || deny.iter().any(|r| r == d.rule.id()))
            {
                d.severity = Severity::Error;
            }
        }
    }

    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// No findings at all?
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Render every finding as text lines plus a summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render_text());
            out.push('\n');
        }
        if self.is_clean() {
            out.push_str("lint: clean\n");
        } else {
            out.push_str(&format!(
                "lint: {} error(s), {} warning(s)\n",
                self.errors(),
                self.warnings()
            ));
        }
        out
    }

    /// Render every finding as JSONL, one object per line.
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render_jsonl());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_are_unique_and_parse_back() {
        for &r in Rule::ALL {
            assert_eq!(Rule::parse(r.id()), Some(r));
        }
        let mut ids: Vec<_> = Rule::ALL.iter().map(|r| r.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), Rule::ALL.len());
    }

    #[test]
    fn deny_promotes_warnings() {
        let mut report = Report::new();
        report.push(Diagnostic::warning(Rule::MixShare, "x", "drift"));
        assert_eq!(report.errors(), 0);
        report.apply_deny(&["all".to_string()]);
        assert_eq!(report.errors(), 1);
    }

    #[test]
    fn jsonl_escapes_quotes() {
        let d = Diagnostic::error(Rule::ImageDecode, "img", "bad \"byte\"");
        let line = d.render_jsonl();
        assert!(line.contains("bad \\\"byte\\\""), "{line}");
        assert!(line.starts_with('{') && line.ends_with('}'));
    }
}
