//! The probe refutation allowlist: accepted static-model refinements.
//!
//! `vax780 probe` diffs measured tables against `vax_ucode::model`'s
//! claims and emits [`Rule::ProbeMode`] / [`Rule::ProbeOpcode`]
//! diagnostics for every disagreement. A disagreement is either a
//! simulator bug or a *documented model refinement*; the refinements the
//! project has accepted (with evidence, see DESIGN.md) live in a
//! checked-in allowlist file this module parses:
//!
//! ```text
//! vax-probe-allow v1
//! # accepted refinement: byte displacements fold the address add
//! mode displacement * compute
//! op movc3 compute
//! ```
//!
//! `mode <class> <access|*> <field>` suppresses a mode-row disagreement;
//! `op <mnemonic> <field>` an opcode-row one. Fields name the bucket
//! slot (`entry`, `index`, `compute`, `read`, `write`, `taken`).
//! [`Rule::ProbeMeasurement`] findings are never allowlistable — an
//! internally inconsistent measurement cannot be "accepted".

use crate::{Diagnostic, Report, Rule};
use vax_arch::{AccessType, Opcode, SpecModeClass};

/// Valid `field` names for mode entries.
const MODE_FIELDS: &[&str] = &["entry", "index", "compute", "read", "write"];
/// Valid `field` names for opcode entries.
const OP_FIELDS: &[&str] = &["entry", "compute", "read", "write", "taken"];

/// One parsed allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllowEntry {
    /// `mode <class> <access|*> <field>`.
    Mode {
        /// Table 4 mode class the refinement applies to.
        class: SpecModeClass,
        /// Access type, or `None` for the `*` wildcard.
        access: Option<AccessType>,
        /// Bucket slot name.
        field: String,
    },
    /// `op <mnemonic> <field>`.
    Op {
        /// The opcode whose execute row is refined.
        opcode: Opcode,
        /// Bucket slot name.
        field: String,
    },
}

/// A parsed allowlist with per-entry usage tracking, so unused entries
/// can be reported (an unused acceptance is stale documentation).
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
    used: Vec<bool>,
    /// Source lines (1-based) of the entries, for unused reporting.
    lines: Vec<usize>,
}

impl Allowlist {
    /// Parse the `vax-probe-allow v1` text format. Malformed lines and
    /// unknown keys become [`Rule::ProbeAllowlist`] errors in the report;
    /// well-formed entries are kept regardless so one bad line does not
    /// silently drop the rest.
    pub fn parse(text: &str) -> (Allowlist, Report) {
        let mut report = Report::new();
        let mut list = Allowlist::default();
        let mut lines = text.lines().enumerate();
        let mut saw_header = false;
        for (idx, line) in &mut lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "vax-probe-allow v1" {
                saw_header = true;
            } else {
                report.push(
                    Diagnostic::error(
                        Rule::ProbeAllowlist,
                        "allowlist",
                        format!(
                            "line {}: expected header `vax-probe-allow v1`, got `{line}`",
                            idx + 1
                        ),
                    )
                    .at(idx as u64),
                );
            }
            break;
        }
        if !saw_header {
            return (list, report);
        }
        for (idx, raw) in lines {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            let mut bad = |msg: String| {
                report.push(
                    Diagnostic::error(
                        Rule::ProbeAllowlist,
                        "allowlist",
                        format!("line {}: {msg}", idx + 1),
                    )
                    .at(idx as u64),
                );
            };
            match fields.as_slice() {
                ["mode", class, access, field] => {
                    let Some(class) = SpecModeClass::from_key(class) else {
                        bad(format!("unknown mode class `{class}`"));
                        continue;
                    };
                    let access = if *access == "*" {
                        None
                    } else {
                        match AccessType::from_key(access) {
                            Some(a) => Some(a),
                            None => {
                                bad(format!("unknown access type `{access}`"));
                                continue;
                            }
                        }
                    };
                    if !MODE_FIELDS.contains(field) {
                        bad(format!("unknown mode field `{field}`"));
                        continue;
                    }
                    list.push(
                        AllowEntry::Mode {
                            class,
                            access,
                            field: field.to_string(),
                        },
                        idx + 1,
                    );
                }
                ["op", mnemonic, field] => {
                    let Some(opcode) = Opcode::from_mnemonic(mnemonic) else {
                        bad(format!("unknown opcode mnemonic `{mnemonic}`"));
                        continue;
                    };
                    if !OP_FIELDS.contains(field) {
                        bad(format!("unknown opcode field `{field}`"));
                        continue;
                    }
                    list.push(
                        AllowEntry::Op {
                            opcode,
                            field: field.to_string(),
                        },
                        idx + 1,
                    );
                }
                _ => bad(format!(
                    "expected `mode <class> <access|*> <field>` or `op <mnemonic> <field>`, \
                     got `{line}`"
                )),
            }
        }
        (list, report)
    }

    fn push(&mut self, entry: AllowEntry, line: usize) {
        self.entries.push(entry);
        self.used.push(false);
        self.lines.push(line);
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// No entries at all?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Is a mode-row disagreement for (`class`, `access`, `field`)
    /// accepted? Marks any matching entry used.
    pub fn allows_mode(&mut self, class: SpecModeClass, access: AccessType, field: &str) -> bool {
        let mut hit = false;
        for (i, e) in self.entries.iter().enumerate() {
            if let AllowEntry::Mode {
                class: c,
                access: a,
                field: f,
            } = e
            {
                if *c == class && (a.is_none() || *a == Some(access)) && f == field {
                    self.used[i] = true;
                    hit = true;
                }
            }
        }
        hit
    }

    /// Is an opcode-row disagreement for (`opcode`, `field`) accepted?
    /// Marks any matching entry used.
    pub fn allows_op(&mut self, opcode: Opcode, field: &str) -> bool {
        let mut hit = false;
        for (i, e) in self.entries.iter().enumerate() {
            if let AllowEntry::Op {
                opcode: o,
                field: f,
            } = e
            {
                if *o == opcode && f == field {
                    self.used[i] = true;
                    hit = true;
                }
            }
        }
        hit
    }

    /// Report every entry no measurement ever matched as a
    /// [`Rule::ProbeAllowlist`] warning (stale acceptance).
    pub fn report_unused(&self, report: &mut Report) {
        for (i, e) in self.entries.iter().enumerate() {
            if !self.used[i] {
                let what = match e {
                    AllowEntry::Mode {
                        class,
                        access,
                        field,
                    } => format!(
                        "mode {} {} {field}",
                        class.key(),
                        access.map_or("*", |a| a.key())
                    ),
                    AllowEntry::Op { opcode, field } => format!("op {opcode} {field}"),
                };
                report.push(
                    Diagnostic::warning(
                        Rule::ProbeAllowlist,
                        "allowlist",
                        format!(
                            "line {}: entry `{what}` matched no measured disagreement (stale?)",
                            self.lines[i]
                        ),
                    )
                    .at(self.lines[i] as u64 - 1),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
# accepted refinements
vax-probe-allow v1

mode displacement * compute
op movc3 read
";

    #[test]
    fn parses_good_list() {
        let (mut list, report) = Allowlist::parse(GOOD);
        assert!(report.is_clean(), "{}", report.render_text());
        assert_eq!(list.len(), 2);
        assert!(list.allows_mode(SpecModeClass::Displacement, AccessType::Read, "compute"));
        assert!(list.allows_mode(SpecModeClass::Displacement, AccessType::Write, "compute"));
        assert!(!list.allows_mode(SpecModeClass::Displacement, AccessType::Read, "read"));
        assert!(list.allows_op(Opcode::Movc3, "read"));
        assert!(!list.allows_op(Opcode::Movc3, "write"));
        let mut unused = Report::new();
        list.report_unused(&mut unused);
        assert!(unused.is_clean());
    }

    #[test]
    fn missing_header_is_an_error() {
        let (list, report) = Allowlist::parse("mode displacement * compute\n");
        assert!(list.is_empty());
        assert_eq!(report.errors(), 1);
    }

    #[test]
    fn bad_keys_are_reported_but_good_lines_survive() {
        let text = "vax-probe-allow v1\nmode nonsense * compute\nop movl entry\nop bogus entry\n";
        let (list, report) = Allowlist::parse(text);
        assert_eq!(list.len(), 1);
        assert_eq!(report.errors(), 2);
    }

    #[test]
    fn unused_entries_warn_with_their_line() {
        let (list, report) = Allowlist::parse(GOOD);
        assert!(report.is_clean());
        let mut unused = Report::new();
        list.report_unused(&mut unused);
        assert_eq!(unused.warnings(), 2);
    }

    #[test]
    fn specific_access_does_not_wildcard() {
        let text = "vax-probe-allow v1\nmode absolute read compute\n";
        let (mut list, report) = Allowlist::parse(text);
        assert!(report.is_clean());
        assert!(list.allows_mode(SpecModeClass::Absolute, AccessType::Read, "compute"));
        assert!(!list.allows_mode(SpecModeClass::Absolute, AccessType::Write, "compute"));
    }
}
