//! vax-lint — static verification of the simulator's inputs.
//!
//! Six analyzer families, one rule catalog ([`Rule`]):
//!
//! * **Image checks** ([`cfg`]): recursive static decode of a generated
//!   workload image into regions and a control-flow graph, verifying
//!   decode totality, in-bounds branch and case targets, the absence of
//!   privileged opcodes in user streams, adjacent push/pop idioms, and
//!   the code generator's worst-case walker/bias/pointer arena budgets.
//! * **Abstract interpretation** ([`cfg::verify_image`]): interval
//!   analyses over the decoded image proving every boundable store
//!   misses the code bytes (SMC freedom, modulo declared patch sites)
//!   and bounding worst-case stack depth against the mapped user stack.
//! * **Effect audit** ([`effects`]): the block tier's hand-maintained
//!   safety classifiers checked exhaustively against effect footprints
//!   derived from the opcode/microcode tables, plus the static
//!   run-length predictor reconciled against a real run's block stats.
//! * **Mix checks** ([`mix`]): the image's static instruction-mix and
//!   addressing-mode histograms, diffed against the generating
//!   [`ProfileParams`] within calibrated tolerances.
//! * **Table audits** ([`tables`]): opcode table consistency,
//!   control-store layout coverage/overlap, and the instrument
//!   taxonomy cross-check (`HwCounters` x `MachineEvent` kinds x
//!   `TraceCounters`).
//! * **Probe refutation** ([`probe`]): the allowlist of accepted
//!   static-model refinements consumed by `vax780 probe` when it diffs
//!   measured latency tables against `vax_ucode::model`.
//!
//! The runtime reconciliation pass (vax-trace) compares two instruments
//! *after* a run; vax-lint rejects broken configurations *before* one.
//! Findings are [`Diagnostic`]s with a severity, a stable rule id, and
//! a byte offset or table cell, collected into a [`Report`] that
//! renders as text or JSONL.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cfg;
pub mod diag;
pub mod effects;
pub mod image;
pub mod mix;
pub mod probe;
pub mod tables;

pub use cfg::{check_image, verify_image, DecodedImage, Region};
pub use diag::{Diagnostic, Report, Rule, Severity};
pub use effects::{
    lint_effects, predict_run_lengths, reconcile_run_lengths, RunLengthPrediction,
    RUN_LENGTH_TOLERANCE,
};
pub use image::{Budgets, ImageModel};
pub use probe::Allowlist;

use vax_workloads::{plan_processes, ProfileParams, WorkloadError};

/// Run every table audit (opcode table, control store, instrument
/// taxonomy). Independent of any workload.
pub fn lint_tables() -> Report {
    let mut report = Report::new();
    tables::check_opcode_table(&mut report);
    tables::check_control_store(&mut report);
    tables::check_taxonomy(&mut report);
    report
}

/// Lint one image model: the image-family checks, plus the mix checks
/// when the generating profile is known.
pub fn lint_image_model(model: &ImageModel, params: Option<&ProfileParams>) -> Report {
    let (decoded, mut report) = check_image(model);
    if let (Some(image), Some(params)) = (decoded, params) {
        mix::check_mix(&image, params, &mut report);
    }
    report
}

/// Generate every process image of `params` and lint each one.
///
/// # Errors
///
/// [`WorkloadError`] when generation itself fails (which is a finding
/// about the profile, but not one the linter can localize).
pub fn lint_profile(params: &ProfileParams) -> Result<Report, WorkloadError> {
    let plans = plan_processes(params)?;
    let mut report = Report::new();
    for (i, plan) in plans.iter().enumerate() {
        let model = ImageModel::from_process(&format!("{}/proc{i}", params.name), plan);
        report.merge(lint_image_model(&model, Some(params)));
    }
    Ok(report)
}

/// Statically verify every process image of `params`: decode, run the
/// SMC/stack-depth abstract interpretation, and accumulate the block
/// run-length prediction for later reconciliation against a dynamic
/// run's `BlockStats`.
///
/// # Errors
///
/// [`WorkloadError`] when generation itself fails.
pub fn verify_profile(
    params: &ProfileParams,
) -> Result<(Report, RunLengthPrediction), WorkloadError> {
    let plans = plan_processes(params)?;
    let mut report = Report::new();
    let mut pred = RunLengthPrediction::empty();
    for (i, plan) in plans.iter().enumerate() {
        let model = ImageModel::from_process(&format!("{}/proc{i}", params.name), plan);
        let (decoded, decode_report) = check_image(&model);
        report.merge(decode_report);
        if let Some(image) = decoded {
            report.merge(verify_image(&model, &image));
            pred.merge(&predict_run_lengths(&image));
        }
    }
    Ok((report, pred))
}

/// Debug-mode construction gate: lint the profile's tables and images
/// once per (name, seed), panicking on error-severity findings. Wired
/// into experiment setup under `cfg(debug_assertions)` so development
/// runs refuse structurally broken workloads; release campaigns skip
/// the cost.
pub fn debug_gate(params: &ProfileParams) {
    use std::collections::HashSet;
    use std::sync::Mutex;
    static SEEN: Mutex<Option<HashSet<(String, u64)>>> = Mutex::new(None);
    {
        let mut seen = SEEN.lock().expect("lint gate lock");
        if !seen
            .get_or_insert_with(HashSet::new)
            .insert((params.name.to_string(), params.seed))
        {
            return;
        }
    }
    let mut report = lint_tables();
    match lint_profile(params) {
        Ok(r) => report.merge(r),
        Err(e) => panic!("workload lint gate: generation failed: {e}"),
    }
    if report.errors() > 0 {
        panic!(
            "workload lint gate rejected profile '{}':\n{}",
            params.name,
            report.render_text()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vax_workloads::{profile, WorkloadKind};

    #[test]
    fn tables_lint_clean() {
        let report = lint_tables();
        assert_eq!(report.errors(), 0, "{}", report.render_text());
    }

    #[test]
    fn builtin_profile_lints_clean() {
        let params = profile(WorkloadKind::TimesharingLight);
        let report = lint_profile(&params).expect("generation succeeds");
        assert!(report.is_clean(), "{}", report.render_text());
    }

    #[test]
    fn corrupted_branch_target_names_rule_and_offset() {
        // Take a clean generated image and re-aim the dispatcher's
        // closing backward BRW (the last 3 bytes before the first
        // function entry) far outside the image.
        let params = profile(WorkloadKind::TimesharingLight);
        let plans = plan_processes(&params).expect("generation succeeds");
        let mut model = ImageModel::from_process("corrupt", &plans[0]);
        let brw_off = (model.functions[0] - model.base) as usize - 3;
        assert_eq!(model.bytes[brw_off], 0x31, "dispatcher ends with BRW");
        model.bytes[brw_off + 1] = 0xFF;
        model.bytes[brw_off + 2] = 0x7F;
        let report = lint_image_model(&model, None);
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.rule == Rule::ImageBranchTarget)
            .expect("branch-target finding");
        assert_eq!(d.offset, Some(brw_off as u64), "{}", report.render_text());
    }

    #[test]
    fn debug_gate_accepts_builtin_profile_and_dedupes() {
        let params = profile(WorkloadKind::TimesharingLight);
        debug_gate(&params);
        debug_gate(&params); // second call hits the cache
    }
}
