//! The derived-effect audit and the static block-tier predictor.
//!
//! Two analyses tie the block tier's claims to things that can be
//! checked without trusting the tier:
//!
//! * **Effect audit** ([`lint_effects`]): run
//!   [`vax_cpu::effect::audit_claims`] — the exhaustive comparison of
//!   the hand-maintained `claimed_block_safe`/`claimed_resume_safe`
//!   classifiers against footprints derived from the operand templates,
//!   control-store row map, and static characterization — and render
//!   each divergence as a diagnostic. Unsound claims (claimed safe,
//!   derived unsafe) are errors; foregone coverage (derived safe,
//!   claimed unsafe) is a warning.
//!
//! * **Run-length prediction** ([`predict_run_lengths`]): chunk each
//!   decoded image's straight-line runs exactly the way
//!   `Cpu::build_block` does — runs of block-safe parses, a resume-safe
//!   terminator flattened, chunked at [`BLOCK_MAX`], no block under two
//!   instructions — weighted by the counted-loop trip counts, yielding
//!   the histogram of block lengths a run of the image *should*
//!   produce. [`reconcile_run_lengths`] then compares that prediction
//!   against the dynamic [`BlockStats`] of a real run: a dynamic run
//!   longer than any predicted block is structurally impossible (the
//!   replay verifies exactly what the predictor chunks), and a mean
//!   outside the documented tolerance band means the tier is not
//!   engaging the way the static analysis says it can.

use crate::cfg::{counted_loops, loop_multiplier, DecodedImage, Region};
use crate::diag::{Diagnostic, Report, Rule};
use vax_arch::{AddrMode, Reg};
use vax_cpu::effect::{audit_claims, AuditKind};
use vax_cpu::{claimed_block_safe, claimed_resume_safe, BlockStats, BLOCK_MAX};
use vax_ucode::ControlStore;

/// Relative tolerance on the dynamic-vs-static mean block length in
/// [`reconcile_run_lengths`]. Two forces pull the dynamic mean off the
/// static one: truncation (the instruction budget, the external-event
/// horizon, and mid-run entries at branch targets all cut replays
/// short) presses it down, while execution weight concentrating in hot
/// loops — which the static predictor only approximates through its
/// loop multipliers — pulls it up. Calibrated against the five
/// built-in profiles at the pinned CI spec (200k-instruction dynamic
/// runs): the observed drift is +4% to +14%, so 25% flags a real
/// change in either the tier or the predictor without tripping on
/// profile-to-profile variation.
pub const RUN_LENGTH_TOLERANCE: f64 = 0.25;

/// Audit the block tier's safety claims against the derived effect
/// footprints, over every opcode, in both directions.
pub fn lint_effects(cs: &ControlStore) -> Report {
    report_audit(audit_claims(cs))
}

/// Render audit findings as diagnostics under the effect-family rules.
/// Split from [`lint_effects`] so tests can push deliberately
/// misclassified claims (via `audit_claims_with`) through the same
/// rule mapping.
fn report_audit(findings: Vec<vax_cpu::effect::AuditFinding>) -> Report {
    let mut report = Report::new();
    for finding in findings {
        let mnem = finding.op.mnemonic();
        let fx = finding.effects;
        let diag = match finding.kind {
            AuditKind::BlockUnsound => Diagnostic::error(
                Rule::EffectBlockSafe,
                "effects".to_string(),
                format!("{mnem} is claimed block-safe but its derived footprint is [{fx}]"),
            ),
            AuditKind::ResumeUnsound => Diagnostic::error(
                Rule::EffectResumeSafe,
                "effects".to_string(),
                format!("{mnem} is claimed resume-safe but its derived footprint is [{fx}]"),
            ),
            AuditKind::BlockForgone => Diagnostic::warning(
                Rule::EffectForgone,
                "effects".to_string(),
                format!("{mnem} is provably block-safe ([{fx}]) but the tier forgoes it"),
            ),
            AuditKind::ResumeForgone => Diagnostic::warning(
                Rule::EffectForgone,
                "effects".to_string(),
                format!("{mnem} is provably resume-safe ([{fx}]) but the tier forgoes it"),
            ),
        };
        report.push(diag);
    }
    report
}

/// One image's predicted block-tier engagement: what `build_block`
/// will verify, weighted by how often the counted loops revisit it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunLengthPrediction {
    /// `hist[n]` = weighted count of predicted blocks of exactly `n`
    /// instructions (`2 <= n <= BLOCK_MAX`; lower slots stay zero).
    pub hist: [u64; BLOCK_MAX + 1],
    /// Weighted instructions covered by predicted blocks.
    pub covered: u64,
    /// Weighted instructions left to per-instruction dispatch.
    pub uncovered: u64,
}

impl RunLengthPrediction {
    /// An empty prediction (no code).
    pub fn empty() -> RunLengthPrediction {
        RunLengthPrediction {
            hist: [0; BLOCK_MAX + 1],
            covered: 0,
            uncovered: 0,
        }
    }

    /// Total predicted block dispatches (weighted).
    pub fn blocks(&self) -> u64 {
        self.hist.iter().sum()
    }

    /// Weighted mean predicted block length, or 0.0 with no blocks.
    pub fn mean_run_len(&self) -> f64 {
        let blocks = self.blocks();
        if blocks == 0 {
            0.0
        } else {
            self.covered as f64 / blocks as f64
        }
    }

    /// Longest predicted block (0 with no blocks).
    pub fn max_run_len(&self) -> usize {
        (0..=BLOCK_MAX)
            .rev()
            .find(|&n| self.hist[n] > 0)
            .unwrap_or(0)
    }

    /// Share of weighted instructions covered by blocks.
    pub fn coverage(&self) -> f64 {
        let total = self.covered + self.uncovered;
        if total == 0 {
            0.0
        } else {
            self.covered as f64 / total as f64
        }
    }

    /// Accumulate another image's prediction (machines run several
    /// process images against one set of dynamic counters).
    pub fn merge(&mut self, other: &RunLengthPrediction) {
        for (a, b) in self.hist.iter_mut().zip(other.hist.iter()) {
            *a += b;
        }
        self.covered += other.covered;
        self.uncovered += other.uncovered;
    }
}

/// The static mirror of the parse-level screen in
/// `vax_cpu::block::block_safe`: the opcode-level claim plus the
/// register-mode-PC exclusion.
fn statically_block_safe(inst: &vax_arch::sdecode::LocatedInst) -> bool {
    claimed_block_safe(inst.inst.opcode)
        && !inst
            .inst
            .specs
            .iter()
            .any(|s| s.mode == AddrMode::Register(Reg::Pc))
}

/// Chunk one region's instruction stream the way `build_block` will:
/// maximal runs of block-safe parses — split at branch/case targets,
/// where the dynamic stepper forms new heads — with a resume-safe
/// terminator flattened, chunked at [`BLOCK_MAX`], discarded under two
/// instructions.
fn predict_region(region: &Region, pred: &mut RunLengthPrediction) {
    use std::collections::BTreeSet;
    let loops = counted_loops(region);
    let mut splits: BTreeSet<usize> = BTreeSet::new();
    for inst in &region.insts {
        if let Some(disp) = inst.inst.branch_disp {
            let t = inst.offset as i64 + i64::from(inst.inst.len) + i64::from(disp);
            if t >= 0 {
                splits.insert(t as usize);
            }
        }
        if let Some(entries) = &inst.case_entries {
            let base = inst.offset as i64 + i64::from(inst.inst.len);
            for &e in entries {
                let t = base + i64::from(e);
                if t >= 0 {
                    splits.insert(t as usize);
                }
            }
        }
    }

    let insts = &region.insts;
    let n = insts.len();
    let mut i = 0;
    while i < n {
        if !statically_block_safe(&insts[i]) {
            pred.uncovered += loop_multiplier(&loops, insts[i].offset);
            i += 1;
            continue;
        }
        let head = i;
        let mut j = i + 1;
        while j < n && statically_block_safe(&insts[j]) && !splits.contains(&insts[j].offset) {
            j += 1;
        }
        let run = j - head;
        // A real (unsafe) terminator flattens if resume-safe; a run cut
        // by a split point or the region end has none — execution forms
        // a fresh head at the next run.
        let terminator = (j < n && !statically_block_safe(&insts[j])).then(|| &insts[j]);
        let flatten = terminator.is_some_and(|t| claimed_resume_safe(t.inst.opcode));
        let w = loop_multiplier(&loops, insts[head].offset);

        let mut rem = run;
        let mut consumed = 0usize;
        let mut term_covered = false;
        while rem >= BLOCK_MAX {
            pred.hist[BLOCK_MAX] += w;
            pred.covered += (BLOCK_MAX as u64) * w;
            consumed += BLOCK_MAX;
            rem -= BLOCK_MAX;
        }
        if rem > 0 {
            let len = rem + usize::from(flatten);
            if len >= 2 {
                pred.hist[len] += w;
                pred.covered += (len as u64) * w;
                consumed += rem;
                term_covered = flatten;
            }
        }
        pred.uncovered += ((run - consumed) as u64) * w;
        match terminator {
            Some(t) => {
                if !term_covered {
                    pred.uncovered += loop_multiplier(&loops, t.offset);
                }
                i = j + 1;
            }
            None => i = j,
        }
    }
}

/// Predict the block-tier engagement of a decoded image.
pub fn predict_run_lengths(image: &DecodedImage) -> RunLengthPrediction {
    let mut pred = RunLengthPrediction::empty();
    for region in &image.regions {
        predict_region(region, &mut pred);
    }
    pred
}

/// Reconcile a static run-length prediction against the dynamic
/// [`BlockStats`] of a real run of the same images.
///
/// Two checks, both [`Rule::VerifyRunLength`] (warnings by default):
/// a dynamic replay longer than any predicted block — structurally
/// impossible if the predictor mirrors `build_block`, since a replay
/// retires at most the verified count — and a dynamic mean block
/// length outside `tolerance` (relative) of the static mean.
pub fn reconcile_run_lengths(
    ctx: &str,
    pred: &RunLengthPrediction,
    stats: &BlockStats,
    tolerance: f64,
) -> Report {
    let mut report = Report::new();
    if pred.blocks() == 0 {
        if stats.hits > 0 {
            report.push(Diagnostic::warning(
                Rule::VerifyRunLength,
                ctx.to_string(),
                format!(
                    "the static predictor found no blocks, but the run replayed {} \
                     dispatch(es)",
                    stats.hits
                ),
            ));
        }
        return report;
    }
    if stats.hits == 0 {
        report.push(Diagnostic::warning(
            Rule::VerifyRunLength,
            ctx.to_string(),
            format!(
                "the static predictor found {} weighted blocks, but the run never \
                 entered one (was the block tier engaged?)",
                pred.blocks()
            ),
        ));
        return report;
    }
    let dyn_max = (0..=BLOCK_MAX)
        .rev()
        .find(|&n| stats.run_hist[n] > 0)
        .unwrap_or(0);
    let static_max = pred.max_run_len();
    if dyn_max > static_max {
        report.push(Diagnostic::warning(
            Rule::VerifyRunLength,
            ctx.to_string(),
            format!(
                "a dynamic replay retired {dyn_max} instructions, but the longest \
                 statically predicted block is {static_max}"
            ),
        ));
    }
    let dyn_mean = stats.mean_run_len();
    let static_mean = pred.mean_run_len();
    let drift = (dyn_mean - static_mean).abs() / static_mean;
    if drift > tolerance {
        report.push(Diagnostic::warning(
            Rule::VerifyRunLength,
            ctx.to_string(),
            format!(
                "dynamic mean block length {dyn_mean:.2} diverges from the static \
                 prediction {static_mean:.2} by {:.0}% (tolerance {:.0}%)",
                drift * 100.0,
                tolerance * 100.0
            ),
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::check_image;
    use crate::image::{Budgets, ImageModel};
    use vax_arch::{Assembler, Opcode, Operand};

    fn decode(asm_bytes: Vec<u8>, base: u32) -> DecodedImage {
        let model = ImageModel {
            name: "test".into(),
            base,
            entry: base,
            functions: vec![],
            bytes: asm_bytes,
            budgets: Budgets {
                walker_len: 4096,
                bias_len: 16384,
                ptr_entries: 256,
            },
            patch_sites: vec![],
        };
        let (decoded, report) = check_image(&model);
        decoded.unwrap_or_else(|| panic!("decodes: {}", report.render_text()))
    }

    #[test]
    fn shipped_classifiers_audit_clean_as_a_report() {
        let cs = ControlStore::build();
        let report = lint_effects(&cs);
        assert!(report.is_clean(), "{}", report.render_text());
    }

    #[test]
    fn misclassified_opcode_is_caught_under_its_named_rule() {
        use vax_cpu::effect::audit_claims_with;
        use vax_cpu::{claimed_block_safe, claimed_resume_safe};
        let cs = ControlStore::build();
        // Deliberately claim BRB — which redirects PC — block-safe.
        let report = report_audit(audit_claims_with(
            &cs,
            |op| op == Opcode::Brb || claimed_block_safe(op),
            claimed_resume_safe,
        ));
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.rule == Rule::EffectBlockSafe)
            .expect("misclassification finding");
        assert!(d.message.contains("brb"), "{}", d.message);
        assert_eq!(report.errors(), 1, "{}", report.render_text());

        // And the other direction: claiming HALT resume-safe.
        let report = report_audit(audit_claims_with(&cs, claimed_block_safe, |op| {
            op == Opcode::Halt || claimed_resume_safe(op)
        }));
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.rule == Rule::EffectResumeSafe && d.message.contains("halt")),
            "{}",
            report.render_text()
        );
    }

    #[test]
    fn straight_line_run_chunks_like_build_block() {
        // 14 safe MOVLs then RET: the safe run of 14 chunks as 12 + 2,
        // the RET (resume-safe) flattens onto the remainder => 12 + 3.
        let mut asm = Assembler::new(0x1000);
        for _ in 0..14 {
            asm.inst(Opcode::Movl, &[Operand::Literal(1), Operand::Reg(Reg::R0)])
                .unwrap();
        }
        asm.inst(Opcode::Ret, &[]).unwrap();
        let image = decode(asm.finish().unwrap().bytes, 0x1000);
        let pred = predict_run_lengths(&image);
        assert_eq!(pred.hist[BLOCK_MAX], 1);
        assert_eq!(pred.hist[3], 1);
        assert_eq!(pred.covered, 15);
        assert_eq!(pred.uncovered, 0);
        assert_eq!(pred.max_run_len(), BLOCK_MAX);
    }

    #[test]
    fn lone_instruction_before_unsafe_ender_forms_no_block() {
        // One MOVL then HALT (resume-unsafe): no block at all.
        let mut asm = Assembler::new(0x1000);
        asm.inst(Opcode::Movl, &[Operand::Literal(1), Operand::Reg(Reg::R0)])
            .unwrap();
        asm.inst(Opcode::Halt, &[]).unwrap();
        let image = decode(asm.finish().unwrap().bytes, 0x1000);
        let pred = predict_run_lengths(&image);
        assert_eq!(pred.blocks(), 0);
        assert_eq!(pred.covered, 0);
        assert_eq!(pred.uncovered, 2);
    }

    #[test]
    fn counted_loop_weights_its_block() {
        // MOVL #5, R3; top: 3 safe insts; SOBGTR R3, top; RET.
        // The loop body (3 safe + flattened SOBGTR = 4) weights x5.
        let mut asm = Assembler::new(0x1000);
        asm.inst(Opcode::Movl, &[Operand::Literal(5), Operand::Reg(Reg::R3)])
            .unwrap();
        let top = asm.label_here();
        for _ in 0..3 {
            asm.inst(Opcode::Addl2, &[Operand::Literal(1), Operand::Reg(Reg::R0)])
                .unwrap();
        }
        asm.branch(Opcode::Sobgtr, &[Operand::Reg(Reg::R3)], top)
            .unwrap();
        asm.inst(Opcode::Ret, &[]).unwrap();
        let image = decode(asm.finish().unwrap().bytes, 0x1000);
        let pred = predict_run_lengths(&image);
        assert_eq!(pred.hist[4], 5, "loop body block weighted by trip count");
        // The preamble MOVL runs straight into the loop top? No: the
        // SOBGTR's backward target splits the run, so the MOVL is a
        // lone single (uncovered), and the RET after the loop is a
        // fresh lone head too.
        assert_eq!(pred.hist[2], 0);
        assert!(pred.uncovered >= 2);
    }

    #[test]
    fn reconcile_flags_impossible_dynamic_run() {
        let mut asm = Assembler::new(0x1000);
        for _ in 0..2 {
            asm.inst(Opcode::Movl, &[Operand::Literal(1), Operand::Reg(Reg::R0)])
                .unwrap();
        }
        asm.inst(Opcode::Halt, &[]).unwrap();
        let image = decode(asm.finish().unwrap().bytes, 0x1000);
        let pred = predict_run_lengths(&image);
        assert_eq!(pred.max_run_len(), 2);
        let mut stats = BlockStats {
            hits: 1,
            replayed: 7,
            ..BlockStats::default()
        };
        stats.run_hist[7] = 1;
        let report = reconcile_run_lengths("test", &pred, &stats, 10.0);
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.rule == Rule::VerifyRunLength && d.message.contains("longest")),
            "{}",
            report.render_text()
        );
    }

    #[test]
    fn reconcile_accepts_matching_stats_and_flags_drift() {
        let mut asm = Assembler::new(0x1000);
        for _ in 0..4 {
            asm.inst(Opcode::Movl, &[Operand::Literal(1), Operand::Reg(Reg::R0)])
                .unwrap();
        }
        asm.inst(Opcode::Ret, &[]).unwrap();
        let image = decode(asm.finish().unwrap().bytes, 0x1000);
        let pred = predict_run_lengths(&image);
        assert_eq!(pred.hist[5], 1); // 4 safe + flattened RET
        let mut stats = BlockStats {
            hits: 10,
            replayed: 50,
            ..BlockStats::default()
        };
        stats.run_hist[5] = 10;
        assert!(reconcile_run_lengths("t", &pred, &stats, RUN_LENGTH_TOLERANCE).is_clean());
        // Now a run that never engaged the tier.
        let idle = BlockStats::default();
        let report = reconcile_run_lengths("t", &pred, &idle, RUN_LENGTH_TOLERANCE);
        assert!(!report.is_clean());
    }
}
