//! Table audits: the opcode table, the control-store layout, and the
//! instrument taxonomy (hardware counters x trace events x trace
//! counters). These check the simulator's *configuration*, not any
//! particular run — they are independent of workload images.

use crate::diag::{Diagnostic, Report, Rule};
use std::collections::BTreeMap;
use upc_monitor::events::{MachineEvent, MemStream, StallCause};
use vax_arch::{BranchClass, Opcode, SpecModeClass};
use vax_mem::HwCounters;
use vax_trace::TraceCounters;
use vax_ucode::{ControlStore, SpecPosition, StallPoint};

/// Audit the opcode table: operand templates consistent with each
/// opcode's flags, unique encodings, branch displacements only on
/// displacement-branch classes.
pub fn check_opcode_table(report: &mut Report) {
    const CTX: &str = "opcode-table";
    let mut bytes_seen: BTreeMap<u8, Opcode> = BTreeMap::new();
    for &op in Opcode::ALL {
        let cell = u64::from(op.to_byte());
        if let Some(prev) = bytes_seen.insert(op.to_byte(), op) {
            report.push(
                Diagnostic::error(
                    Rule::TableOpcode,
                    CTX,
                    format!(
                        "{} and {} share encoding {:#04x}",
                        prev.mnemonic(),
                        op.mnemonic(),
                        op.to_byte()
                    ),
                )
                .at(cell),
            );
        }
        if Opcode::from_byte(op.to_byte()) != Some(op) {
            report.push(
                Diagnostic::error(
                    Rule::TableOpcode,
                    CTX,
                    format!("{} does not round-trip through its byte", op.mnemonic()),
                )
                .at(cell),
            );
        }
        if op.specifier_count() > 6 {
            report.push(
                Diagnostic::error(
                    Rule::TableOpcode,
                    CTX,
                    format!("{} exceeds the 6-specifier limit", op.mnemonic()),
                )
                .at(cell),
            );
        }
        let disp_templates = op
            .operands()
            .iter()
            .filter(|t| t.is_branch_displacement())
            .count();
        let disp_is_last = op
            .operands()
            .last()
            .is_none_or(|t| t.is_branch_displacement())
            || disp_templates == 0;
        if disp_templates > 1 || !disp_is_last {
            report.push(
                Diagnostic::error(
                    Rule::TableOpcode,
                    CTX,
                    format!(
                        "{} must list exactly one branch displacement, as the final template",
                        op.mnemonic()
                    ),
                )
                .at(cell),
            );
        }
        if op.branch_displacement().is_some() && op.branch_class().is_none() {
            report.push(
                Diagnostic::error(
                    Rule::TableOpcode,
                    CTX,
                    format!(
                        "{} takes a branch displacement but has no branch class",
                        op.mnemonic()
                    ),
                )
                .at(cell),
            );
        }
        if op.has_case_table() && op.branch_class() != Some(BranchClass::Case) {
            report.push(
                Diagnostic::error(
                    Rule::TableOpcode,
                    CTX,
                    format!(
                        "{} carries a case table outside the Case class",
                        op.mnemonic()
                    ),
                )
                .at(cell),
            );
        }
        let displacement_classes = [
            BranchClass::SimpleCond,
            BranchClass::Loop,
            BranchClass::LowBitTest,
            BranchClass::BitBranch,
        ];
        if op
            .branch_class()
            .is_some_and(|c| displacement_classes.contains(&c))
            && op.branch_displacement().is_none()
        {
            report.push(
                Diagnostic::error(
                    Rule::TableOpcode,
                    CTX,
                    format!(
                        "{} is in a displacement-branch class but takes no displacement",
                        op.mnemonic()
                    ),
                )
                .at(cell),
            );
        }
    }
}

/// Audit the control-store layout: named regions pairwise disjoint and
/// fully allocated, every allocated address inside exactly one region,
/// and every dispatch accessor pointing at an allocated address.
pub fn check_control_store(report: &mut Report) {
    const CTX: &str = "control-store";
    let cs = ControlStore::build();
    let regions = cs.regions();

    for window in regions.windows(2) {
        let (a_name, a_base, a_len) = window[0];
        let (b_name, b_base, _) = window[1];
        if a_base + a_len > b_base {
            report.push(
                Diagnostic::error(
                    Rule::UcodeOverlap,
                    CTX,
                    format!("region '{a_name}' ({a_base:#x}+{a_len:#x}) overlaps '{b_name}' ({b_base:#x})"),
                )
                .at(u64::from(b_base)),
            );
        }
    }

    let in_region = |addr: u16| -> Vec<&'static str> {
        regions
            .iter()
            .filter(|&&(_, base, len)| (base..base + len).contains(&addr))
            .map(|&(name, _, _)| name)
            .collect()
    };
    let allocated: BTreeMap<u16, vax_ucode::AddrClass> = cs
        .iter()
        .map(|(addr, class)| (addr.value(), class))
        .collect();

    for &addr in allocated.keys() {
        let homes = in_region(addr);
        match homes.len() {
            1 => {}
            0 => report.push(
                Diagnostic::error(
                    Rule::UcodeCoverage,
                    CTX,
                    format!("allocated micro-address {addr:#06x} is outside every named region"),
                )
                .at(u64::from(addr)),
            ),
            _ => report.push(
                Diagnostic::error(
                    Rule::UcodeOverlap,
                    CTX,
                    format!(
                        "micro-address {addr:#06x} falls in regions {}",
                        homes.join(", ")
                    ),
                )
                .at(u64::from(addr)),
            ),
        }
    }
    for &(name, base, len) in &regions {
        for addr in base..base + len {
            if !allocated.contains_key(&addr) {
                report.push(
                    Diagnostic::error(
                        Rule::UcodeCoverage,
                        CTX,
                        format!("region '{name}' has an unallocated gap at {addr:#06x}"),
                    )
                    .at(u64::from(addr)),
                );
            }
        }
    }

    // Every dispatch entry the model can reach must be allocated (the
    // accessors compute addresses; a truncated table would panic only
    // at simulation time — catch it here instead).
    let mut entries: Vec<(String, u16)> = vec![
        ("ird1".into(), cs.ird1().value()),
        ("bdisp".into(), cs.bdisp().value()),
        ("tb-miss".into(), cs.tb_miss_entry().value()),
        ("memmgmt-compute".into(), cs.memmgmt_compute().value()),
        ("memmgmt-read".into(), cs.memmgmt_read().value()),
        ("memmgmt-write".into(), cs.memmgmt_write().value()),
        ("interrupt".into(), cs.int_entry().value()),
        ("exception".into(), cs.exc_entry().value()),
        ("fault-recovery".into(), cs.fault_entry().value()),
        ("fault-recovery-body".into(), cs.fault_body().value()),
        ("abort".into(), cs.abort().value()),
        ("soft-int".into(), cs.soft_int_request().value()),
    ];
    for point in StallPoint::ALL {
        entries.push((format!("ib-stall/{point:?}"), cs.ib_stall(point).value()));
    }
    for pos in SpecPosition::ALL {
        entries.push((format!("spec-index/{pos:?}"), cs.spec_index(pos).value()));
        for class in SpecModeClass::ALL {
            entries.push((
                format!("spec/{pos:?}/{class:?}"),
                cs.spec_entry(pos, class).value(),
            ));
        }
    }
    for class in BranchClass::ALL {
        entries.push((
            format!("branch-taken/{class:?}"),
            cs.branch_taken(class).value(),
        ));
    }
    for &op in Opcode::ALL {
        entries.push((format!("exec/{}", op.mnemonic()), cs.exec_entry(op).value()));
    }
    for (what, addr) in entries {
        if !allocated.contains_key(&addr) {
            report.push(
                Diagnostic::error(
                    Rule::UcodeCoverage,
                    CTX,
                    format!("dispatch entry {what} points at unallocated {addr:#06x}"),
                )
                .at(u64::from(addr)),
            );
        }
    }
}

/// Which trace event kind witnesses each hardware counter. The two
/// instruments watch the same machine; a counter with no event kind
/// (or vice versa) is unobservable by one of them and breaks the
/// PR-1 reconciliation pass.
pub const HW_EVENT_MAP: &[(&str, &str)] = &[
    ("ib_requests", "cache_access"),
    ("ib_bytes_delivered", "cache_access"),
    ("cache_hit_i", "cache_access"),
    ("cache_miss_i", "cache_access"),
    ("cache_hit_d", "cache_access"),
    ("cache_miss_d", "cache_access"),
    ("writes", "write_buffer"),
    ("write_hits", "write_buffer"),
    ("unaligned_refs", "cache_access"),
    ("tb_miss_d", "tb_miss"),
    ("tb_miss_i", "tb_miss"),
    ("tb_hits", "cache_access"),
    ("sbi_reads", "sbi"),
    ("sbi_writes", "sbi"),
    ("machine_checks", "machine_check"),
];

/// Which trace-counter fields each event kind feeds.
pub const EVENT_TRACE_MAP: &[(&str, &[&str])] = &[
    ("decode", &["decodes"]),
    ("retire", &["retires", "specifiers"]),
    (
        "stall",
        &["read_stall_cycles", "write_stall_cycles", "ib_stall_cycles"],
    ),
    (
        "cache_access",
        &["cache_hit_i", "cache_miss_i", "cache_hit_d", "cache_miss_d"],
    ),
    ("tb_miss", &["tb_miss_i", "tb_miss_d", "tb_double_misses"]),
    ("write_buffer", &["writes_buffered", "write_buffer_peak"]),
    ("sbi", &["sbi_reads", "sbi_writes"]),
    ("interrupt_entry", &["interrupts"]),
    ("exception_entry", &["exceptions"]),
    ("machine_check", &["machine_checks"]),
    ("context_switch", &["context_switches"]),
];

/// One sample event of each kind, for the behavioral half of the audit.
fn sample_events() -> Vec<MachineEvent> {
    vec![
        MachineEvent::Decode {
            opcode: Opcode::Movl,
        },
        MachineEvent::Retire {
            opcode: Opcode::Movl,
            pc: 0x1000,
            specifiers: 2,
        },
        MachineEvent::Stall {
            cause: StallCause::Read,
            cycles: 1,
        },
        MachineEvent::CacheAccess {
            stream: MemStream::Data,
            hit: false,
        },
        MachineEvent::TbMiss {
            stream: MemStream::Data,
            double: true,
        },
        MachineEvent::WriteBuffer { occupancy: 1 },
        MachineEvent::Sbi { read: true },
        MachineEvent::InterruptEntry { ipl: 24 },
        MachineEvent::ExceptionEntry,
        MachineEvent::MachineCheck {
            class: vax_fault::FaultClass::CacheParity,
        },
        MachineEvent::ContextSwitch { new_space: 1 },
    ]
}

/// Audit the instrument taxonomy: every hardware counter maps to a
/// trace event kind, every event kind is mapped and actually moves the
/// trace-counter fields the map declares for it.
pub fn check_taxonomy(report: &mut Report) {
    const CTX: &str = "instrument-taxonomy";

    // Hardware counters -> event kinds: total, and into real kinds.
    for (cell, &field) in HwCounters::FIELD_NAMES.iter().enumerate() {
        match HW_EVENT_MAP.iter().find(|(f, _)| *f == field) {
            None => report.push(
                Diagnostic::error(
                    Rule::CounterTaxonomy,
                    CTX,
                    format!("hardware counter '{field}' has no trace event kind"),
                )
                .at(cell as u64),
            ),
            Some(&(_, kind)) if !MachineEvent::KIND_NAMES.contains(&kind) => report.push(
                Diagnostic::error(
                    Rule::CounterTaxonomy,
                    CTX,
                    format!("hardware counter '{field}' maps to unknown event kind '{kind}'"),
                )
                .at(cell as u64),
            ),
            Some(_) => {}
        }
    }
    for (field, _) in HW_EVENT_MAP {
        if !HwCounters::FIELD_NAMES.contains(field) {
            report.push(Diagnostic::error(
                Rule::CounterTaxonomy,
                CTX,
                format!("taxonomy lists unknown hardware counter '{field}'"),
            ));
        }
    }

    // Event kinds <-> trace counters: the map must cover every kind,
    // name only real fields, and leave no trace field unfed.
    for (cell, &kind) in MachineEvent::KIND_NAMES.iter().enumerate() {
        if !EVENT_TRACE_MAP.iter().any(|(k, _)| *k == kind) {
            report.push(
                Diagnostic::error(
                    Rule::CounterTaxonomy,
                    CTX,
                    format!("event kind '{kind}' feeds no trace counter"),
                )
                .at(cell as u64),
            );
        }
    }
    let mut fed: Vec<&str> = vec!["issues", "stall_cycles"]; // derived by the tracer itself
    for (kind, fields) in EVENT_TRACE_MAP {
        if !MachineEvent::KIND_NAMES.contains(kind) {
            report.push(Diagnostic::error(
                Rule::CounterTaxonomy,
                CTX,
                format!("taxonomy lists unknown event kind '{kind}'"),
            ));
        }
        for field in *fields {
            if !TraceCounters::FIELD_NAMES.contains(field) {
                report.push(Diagnostic::error(
                    Rule::CounterTaxonomy,
                    CTX,
                    format!("event kind '{kind}' claims unknown trace counter '{field}'"),
                ));
            }
            fed.push(field);
        }
    }
    for (cell, &field) in TraceCounters::FIELD_NAMES.iter().enumerate() {
        if !fed.contains(&field) {
            report.push(
                Diagnostic::error(
                    Rule::CounterTaxonomy,
                    CTX,
                    format!("trace counter '{field}' is fed by no event kind"),
                )
                .at(cell as u64),
            );
        }
    }

    // Behavioral half: applying one event of each kind must move at
    // least one of the fields the map declares for that kind.
    for event in sample_events() {
        let kind = event.kind_name();
        let Some(&(_, fields)) = EVENT_TRACE_MAP.iter().find(|(k, _)| *k == kind) else {
            continue; // already reported above
        };
        let before = TraceCounters::default();
        let mut after = before;
        after.apply(event);
        let moved = {
            let b: BTreeMap<_, _> = before.to_pairs().into_iter().collect();
            after
                .to_pairs()
                .into_iter()
                .any(|(name, v)| fields.contains(&name) && b[name] != v)
        };
        if !moved {
            report.push(Diagnostic::error(
                Rule::CounterTaxonomy,
                CTX,
                format!("a '{kind}' event moves none of its declared trace counters"),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_table_is_clean() {
        let mut report = Report::new();
        check_opcode_table(&mut report);
        assert!(report.is_clean(), "{}", report.render_text());
    }

    #[test]
    fn control_store_layout_is_clean() {
        let mut report = Report::new();
        check_control_store(&mut report);
        assert!(report.is_clean(), "{}", report.render_text());
    }

    #[test]
    fn instrument_taxonomy_is_exhaustive_both_ways() {
        let mut report = Report::new();
        check_taxonomy(&mut report);
        assert!(report.is_clean(), "{}", report.render_text());
        // The maps themselves are total over the declared names.
        assert_eq!(HW_EVENT_MAP.len(), HwCounters::FIELD_NAMES.len());
        assert_eq!(EVENT_TRACE_MAP.len(), MachineEvent::KIND_NAMES.len());
    }
}
