//! Per-µPC sample aggregation with phase segmentation — the probe's
//! hot-spot instrument.
//!
//! The histogram board answers "how many cycles at each address, total";
//! the [`SampleAggregator`] answers "where did each *phase* of a run
//! spend its cycles". It is a pure aggregator (coalesce-safe, like the
//! board) that additionally listens to [`trace_phase`] markers and keeps
//! one per-µPC count plane per phase segment. Phases nest; a sample is
//! charged to the innermost open phase, named by the full stack joined
//! with `/` (`measure-b/loop`), so prologue, warm-up, and measured
//! windows separate cleanly in the export.
//!
//! Two export formats, both attributing each address to its
//! control-store region (via [`ControlStore::regions`]):
//!
//! * JSONL — one object per (phase, address) with issue and stall
//!   counts, for downstream tooling;
//! * folded-stack text — `phase;region;0xADDR count` lines, the format
//!   flamegraph renderers consume, weighted by total cycles.
//!
//! [`trace_phase`]: crate::CycleSink::trace_phase

use crate::CycleSink;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use vax_ucode::{ControlStore, MicroAddr};

/// (issues, stall cycles) at one address within one phase.
type Counts = (u64, u64);

/// A coalesce-safe [`CycleSink`] that aggregates per-µPC samples into
/// per-phase planes.
#[derive(Debug, Clone, Default)]
pub struct SampleAggregator {
    /// Open phase names, innermost last.
    stack: Vec<String>,
    /// Phase segments in first-appearance order: (name, addr → counts).
    segments: Vec<(String, BTreeMap<u16, Counts>)>,
    /// Index into `segments` of the segment samples currently charge to.
    current: usize,
}

/// The segment name used before any `trace_phase` marker arrives.
const DEFAULT_PHASE: &str = "run";

impl SampleAggregator {
    /// A fresh aggregator charging samples to the `run` segment.
    pub fn new() -> SampleAggregator {
        SampleAggregator {
            stack: Vec::new(),
            segments: vec![(DEFAULT_PHASE.to_string(), BTreeMap::new())],
            current: 0,
        }
    }

    fn segment_name(&self) -> String {
        if self.stack.is_empty() {
            DEFAULT_PHASE.to_string()
        } else {
            self.stack.join("/")
        }
    }

    fn reselect(&mut self) {
        let name = self.segment_name();
        self.current = match self.segments.iter().position(|(n, _)| *n == name) {
            Some(i) => i,
            None => {
                self.segments.push((name, BTreeMap::new()));
                self.segments.len() - 1
            }
        };
    }

    fn bump(&mut self, addr: MicroAddr, issues: u64, stalls: u64) {
        let e = self.segments[self.current]
            .1
            .entry(addr.value())
            .or_default();
        e.0 += issues;
        e.1 += stalls;
    }

    /// Phase segments in first-appearance order.
    pub fn segments(&self) -> impl Iterator<Item = &str> {
        self.segments.iter().map(|(n, _)| n.as_str())
    }

    /// Total (issues, stall cycles) recorded in one phase segment.
    pub fn phase_totals(&self, phase: &str) -> Counts {
        self.segments
            .iter()
            .filter(|(n, _)| n == phase)
            .flat_map(|(_, plane)| plane.values())
            .fold((0, 0), |acc, &(i, s)| (acc.0 + i, acc.1 + s))
    }

    /// The `n` hottest addresses in one phase by total cycles
    /// (issues + stalls), hottest first; ties break toward lower µPC.
    pub fn hottest(&self, phase: &str, n: usize) -> Vec<(MicroAddr, Counts)> {
        let mut v: Vec<(MicroAddr, Counts)> = self
            .segments
            .iter()
            .filter(|(name, _)| name == phase)
            .flat_map(|(_, plane)| plane.iter())
            .map(|(&a, &c)| (MicroAddr::new(a), c))
            .collect();
        v.sort_by_key(|&(a, (i, s))| (std::cmp::Reverse(i + s), a.value()));
        v.truncate(n);
        v
    }

    /// Export one JSONL object per (phase, address), region-attributed.
    pub fn to_jsonl(&self, cs: &ControlStore) -> String {
        let regions = cs.regions();
        let mut out = String::new();
        for (phase, plane) in &self.segments {
            for (&addr, &(issues, stalls)) in plane {
                let _ = writeln!(
                    out,
                    "{{\"phase\":\"{phase}\",\"upc\":{addr},\"region\":\"{}\",\
                     \"issues\":{issues},\"stalls\":{stalls}}}",
                    region_of(&regions, addr)
                );
            }
        }
        out
    }

    /// Export folded-stack lines (`phase;region;0xADDR cycles`), the
    /// input format of flamegraph renderers. Weight is total cycles.
    pub fn to_folded(&self, cs: &ControlStore) -> String {
        let regions = cs.regions();
        let mut out = String::new();
        for (phase, plane) in &self.segments {
            for (&addr, &(issues, stalls)) in plane {
                let cycles = issues + stalls;
                if cycles > 0 {
                    let _ = writeln!(
                        out,
                        "{phase};{};{addr:#05x} {cycles}",
                        region_of(&regions, addr)
                    );
                }
            }
        }
        out
    }
}

/// Name of the control-store region containing `addr`, or `unallocated`
/// for patch-space addresses outside every region.
fn region_of(regions: &[(&'static str, u16, u16)], addr: u16) -> &'static str {
    regions
        .iter()
        .find(|&&(_, base, len)| addr >= base && addr < base + len)
        .map(|&(name, _, _)| name)
        .unwrap_or("unallocated")
}

impl CycleSink for SampleAggregator {
    // Pure aggregator: n coalesced issues are indistinguishable from n
    // single ones.
    const COALESCE_OK: bool = true;

    #[inline]
    fn record_issue(&mut self, addr: MicroAddr) {
        self.bump(addr, 1, 0);
    }

    #[inline]
    fn record_issue_run(&mut self, addr: MicroAddr, n: u32) {
        self.bump(addr, u64::from(n), 0);
    }

    #[inline]
    fn record_stall(&mut self, addr: MicroAddr, cycles: u32) {
        self.bump(addr, 0, u64::from(cycles));
    }

    fn trace_phase(&mut self, name: &str, begin: bool) {
        if begin {
            self.stack.push(name.to_string());
        } else {
            // Tolerate unbalanced ends: pop the innermost matching name.
            if let Some(i) = self.stack.iter().rposition(|n| n == name) {
                self.stack.truncate(i);
            }
        }
        self.reselect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_charge_to_the_open_phase() {
        let mut agg = SampleAggregator::new();
        agg.record_issue(MicroAddr::new(0x100));
        agg.trace_phase("measure", true);
        agg.record_issue_run(MicroAddr::new(0x100), 5);
        agg.record_stall(MicroAddr::new(0x100), 3);
        agg.trace_phase("measure", false);
        agg.record_issue(MicroAddr::new(0x100));
        assert_eq!(agg.phase_totals("run"), (2, 0));
        assert_eq!(agg.phase_totals("measure"), (5, 3));
    }

    #[test]
    fn nested_phases_join_with_slash() {
        let mut agg = SampleAggregator::new();
        agg.trace_phase("measure", true);
        agg.trace_phase("loop", true);
        agg.record_issue(MicroAddr::new(0));
        agg.trace_phase("loop", false);
        agg.trace_phase("measure", false);
        assert_eq!(agg.phase_totals("measure/loop"), (1, 0));
        let names: Vec<_> = agg.segments().collect();
        assert_eq!(names, ["run", "measure", "measure/loop"]);
    }

    #[test]
    fn reopened_phase_accumulates_into_the_same_segment() {
        let mut agg = SampleAggregator::new();
        for _ in 0..2 {
            agg.trace_phase("warm", true);
            agg.record_issue(MicroAddr::new(1));
            agg.trace_phase("warm", false);
        }
        assert_eq!(agg.phase_totals("warm"), (2, 0));
        assert_eq!(agg.segments().filter(|n| *n == "warm").count(), 1);
    }

    #[test]
    fn hottest_orders_by_cycles_then_address() {
        let mut agg = SampleAggregator::new();
        agg.record_issue_run(MicroAddr::new(0x200), 10);
        agg.record_issue_run(MicroAddr::new(0x100), 10);
        agg.record_issue_run(MicroAddr::new(0x300), 3);
        agg.record_stall(MicroAddr::new(0x300), 9);
        let hot = agg.hottest("run", 2);
        assert_eq!(hot[0].0.value(), 0x300, "12 cycles beats 10");
        assert_eq!(hot[1].0.value(), 0x100, "tie breaks toward lower µPC");
    }

    #[test]
    fn exports_attribute_regions() {
        let cs = ControlStore::build();
        let mut agg = SampleAggregator::new();
        agg.trace_phase("measure", true);
        agg.record_issue(cs.ird1());
        agg.record_issue(MicroAddr::new(0x100));
        agg.record_issue(MicroAddr::new(0x0FF)); // patch space
        let jsonl = agg.to_jsonl(&cs);
        assert!(jsonl.contains("\"region\":\"ird1\""), "{jsonl}");
        assert!(jsonl.contains("\"region\":\"exec\""), "{jsonl}");
        assert!(jsonl.contains("\"region\":\"unallocated\""), "{jsonl}");
        let folded = agg.to_folded(&cs);
        assert!(folded.contains("measure;exec;0x100 1"), "{folded}");
        // Empty default segment exports no lines.
        assert!(!folded.contains("run;"), "{folded}");
    }

    #[test]
    fn coalesce_is_declared_safe() {
        // Pins the declared contract: the aggregator accepts coalesced
        // issue runs, so bulk ticking must stay sample-equivalent.
        const { assert!(SampleAggregator::COALESCE_OK) }
    }
}
