//! Typed machine events for the *second* instrument.
//!
//! The histogram board only ever sees `(µPC, stalled)` pairs — that is
//! the paper's instrument and it stays that way. A tracer wants more:
//! which opcode retired, whether a reference hit the cache, how full the
//! write buffer was. These events ride on the same [`CycleSink`] trait
//! as default-no-op hooks, so a detached sink (or the histogram board,
//! which ignores them) pays nothing for their existence.
//!
//! [`CycleSink`]: crate::CycleSink

use vax_arch::Opcode;
use vax_fault::FaultClass;
use vax_ucode::StallPoint;

/// Which reference stream touched the cache/TB (the 11/780 cache is
/// unified but the study attributes events per stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemStream {
    /// Instruction-buffer fill.
    IFetch,
    /// Operand data reference.
    Data,
}

/// Why the CPU spent a stall cycle (the trace's refinement of the
/// histogram's stall plane, which only distinguishes stalls by µPC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallCause {
    /// Operand read waiting on cache/SBI.
    Read,
    /// Write waiting on a full write buffer.
    Write,
    /// Instruction buffer empty at a decode point.
    Ib(StallPoint),
}

/// One typed machine event, emitted from the cycle loop alongside the
/// `(µPC, stalled)` stream. Everything is `Copy`: emission must never
/// allocate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineEvent {
    /// An opcode byte was decoded (IRD1).
    Decode {
        /// The decoded instruction.
        opcode: Opcode,
    },
    /// An instruction retired (all specifiers evaluated, execution done).
    Retire {
        /// The retiring instruction.
        opcode: Opcode,
        /// Address of its opcode byte.
        pc: u32,
        /// Number of operand specifiers evaluated.
        specifiers: u8,
    },
    /// A stall was charged, with its cause (cycles also reach
    /// `record_stall`; this event carries the *why*).
    Stall {
        /// What the processor was waiting for.
        cause: StallCause,
        /// How many cycles were lost.
        cycles: u32,
    },
    /// The cache serviced a reference.
    CacheAccess {
        /// Which stream issued it.
        stream: MemStream,
        /// Whether it hit.
        hit: bool,
    },
    /// A translation-buffer miss entered the microcode fill routine.
    TbMiss {
        /// Which stream missed.
        stream: MemStream,
        /// A system-space PTE fetch was needed too (double miss).
        double: bool,
    },
    /// A write entered the write buffer.
    WriteBuffer {
        /// Entries occupied after this write (the 11/780 buffer holds
        /// one longword; the model may be configured deeper).
        occupancy: u8,
    },
    /// A transaction went out on the SBI.
    Sbi {
        /// `true` for a read (8-byte block fill), `false` for a write.
        read: bool,
    },
    /// An interrupt was taken.
    InterruptEntry {
        /// Interrupt priority level of the request.
        ipl: u8,
    },
    /// A fault/exception was dispatched.
    ExceptionEntry,
    /// An injected hardware fault entered machine-check microcode.
    MachineCheck {
        /// The fault class being recovered from.
        class: FaultClass,
    },
    /// LDPCTX switched address space: a process context switch.
    ContextSwitch {
        /// New page-table base (identifies the process).
        new_space: u32,
    },
}

impl MachineEvent {
    /// Every event kind name, in declaration order. Cross-checked against
    /// [`kind_name`](MachineEvent::kind_name) (whose exhaustive match the
    /// compiler enforces) so taxonomy audits can enumerate kinds without
    /// constructing events.
    pub const KIND_NAMES: &'static [&'static str] = &[
        "decode",
        "retire",
        "stall",
        "cache_access",
        "tb_miss",
        "write_buffer",
        "sbi",
        "interrupt_entry",
        "exception_entry",
        "machine_check",
        "context_switch",
    ];

    /// The kind name of this event (variant, without payload).
    pub fn kind_name(&self) -> &'static str {
        match self {
            MachineEvent::Decode { .. } => "decode",
            MachineEvent::Retire { .. } => "retire",
            MachineEvent::Stall { .. } => "stall",
            MachineEvent::CacheAccess { .. } => "cache_access",
            MachineEvent::TbMiss { .. } => "tb_miss",
            MachineEvent::WriteBuffer { .. } => "write_buffer",
            MachineEvent::Sbi { .. } => "sbi",
            MachineEvent::InterruptEntry { .. } => "interrupt_entry",
            MachineEvent::ExceptionEntry => "exception_entry",
            MachineEvent::MachineCheck { .. } => "machine_check",
            MachineEvent::ContextSwitch { .. } => "context_switch",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_small_and_copyable() {
        // Emission happens every few cycles; the event must stay
        // register-sized-ish and trivially copyable.
        assert!(std::mem::size_of::<MachineEvent>() <= 16);
        let e = MachineEvent::Sbi { read: true };
        let f = e;
        assert_eq!(e, f);
    }
}
