//! The µPC histogram monitor — the paper's primary instrument.
//!
//! A general-purpose histogram count board with 16 K addressable count
//! locations, incremented at the microcode execution rate; a
//! processor-specific interface addresses one bucket per control-store
//! location (paper §2.2). The board keeps **two** sets of counts: one for
//! non-stalled microinstructions and one for stalled ones (§4.3); read
//! stalls and write stalls are told apart later, by the static class of the
//! stalled address in the microcode listing.
//!
//! The monitor is totally passive: it observes (address, stall) pairs and
//! has no effect on execution — mirroring the paper's "no Unibus activity
//! while monitoring" property.
//!
//! # Example
//!
//! ```
//! use upc_monitor::{Command, CycleSink, HistogramBoard};
//! use vax_ucode::MicroAddr;
//!
//! let mut board = HistogramBoard::new();
//! board.execute(Command::Start);
//! board.record_issue(MicroAddr::new(7));
//! board.record_stall(MicroAddr::new(7), 3);
//! board.execute(Command::Stop);
//! let hist = board.snapshot();
//! assert_eq!(hist.issue(MicroAddr::new(7)), 1);
//! assert_eq!(hist.stall(MicroAddr::new(7)), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod board;
pub mod codec;
pub mod events;
mod histogram;
pub mod samples;

pub use board::{Command, CommandResponse, HistogramBoard};
pub use events::MachineEvent;
pub use histogram::Histogram;
pub use samples::SampleAggregator;

use vax_ucode::MicroAddr;

/// Passive receiver of per-cycle microinstruction events.
///
/// The CPU model drives one of these; [`HistogramBoard`] is the paper's
/// instrument, [`NullSink`] runs unmonitored (the board switched off).
///
/// The two `record_*` methods are the original histogram feed. The
/// `trace_*` hooks carry typed events for richer instruments (see
/// [`events`]); they default to no-ops so the board and the null sink
/// are unaffected, and a second instrument can ride alongside the board
/// through the tuple fan-out: `(&mut board, &mut tracer)` is itself a
/// `CycleSink` that forwards every event to both.
pub trait CycleSink {
    /// May the cycle loop coalesce a run of identical per-cycle
    /// `record_issue` calls into one [`record_issue_run`] call?
    ///
    /// Pure aggregators (histogram, null) opt in: a batched add is
    /// indistinguishable from `n` single adds. Sinks that derive state
    /// from the *call sequence* — an event tracer whose clock advances
    /// per `record_issue`, stamping interleaved `trace_event`s — must
    /// leave this `false` so the loop keeps the naive one-call-per-cycle
    /// feed and the recorded stream stays bit-identical.
    ///
    /// (`record_stall` needs no run form: the cycle loop already charges
    /// a whole stall burst with a single call.)
    const COALESCE_OK: bool = false;

    /// One microinstruction issued (executed, not stalled) at `addr`.
    fn record_issue(&mut self, addr: MicroAddr);

    /// `cycles` stall cycles charged to the microinstruction at `addr`.
    fn record_stall(&mut self, addr: MicroAddr, cycles: u32);

    /// `n` consecutive issue cycles at the same `addr`. Only invoked by
    /// loops that checked [`COALESCE_OK`](CycleSink::COALESCE_OK); the
    /// default expands to `n` single calls so order-sensitive sinks are
    /// correct even if one slips through.
    #[inline]
    fn record_issue_run(&mut self, addr: MicroAddr, n: u32) {
        for _ in 0..n {
            self.record_issue(addr);
        }
    }

    /// A typed machine event (decode, retire, cache access, …).
    #[inline]
    fn trace_event(&mut self, event: MachineEvent) {
        let _ = event;
    }

    /// A named phase began (`begin == true`) or ended. Emitted by
    /// workload/session code, not the cycle loop.
    #[inline]
    fn trace_phase(&mut self, name: &str, begin: bool) {
        let _ = (name, begin);
    }
}

/// Fan-out combinator: drive two sinks from one cycle loop. The µPC
/// board and a tracer can observe the same run without duplicating the
/// emission sites.
impl<A: CycleSink, B: CycleSink> CycleSink for (A, B) {
    const COALESCE_OK: bool = A::COALESCE_OK && B::COALESCE_OK;

    #[inline]
    fn record_issue(&mut self, addr: MicroAddr) {
        self.0.record_issue(addr);
        self.1.record_issue(addr);
    }

    #[inline]
    fn record_issue_run(&mut self, addr: MicroAddr, n: u32) {
        self.0.record_issue_run(addr, n);
        self.1.record_issue_run(addr, n);
    }

    #[inline]
    fn record_stall(&mut self, addr: MicroAddr, cycles: u32) {
        self.0.record_stall(addr, cycles);
        self.1.record_stall(addr, cycles);
    }

    #[inline]
    fn trace_event(&mut self, event: MachineEvent) {
        self.0.trace_event(event);
        self.1.trace_event(event);
    }

    #[inline]
    fn trace_phase(&mut self, name: &str, begin: bool) {
        self.0.trace_phase(name, begin);
        self.1.trace_phase(name, begin);
    }
}

/// A sink that discards everything (monitor detached).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl CycleSink for NullSink {
    const COALESCE_OK: bool = true;

    #[inline]
    fn record_issue(&mut self, _addr: MicroAddr) {}

    #[inline]
    fn record_stall(&mut self, _addr: MicroAddr, _cycles: u32) {}

    #[inline]
    fn record_issue_run(&mut self, _addr: MicroAddr, _n: u32) {}
}

impl<S: CycleSink + ?Sized> CycleSink for &mut S {
    const COALESCE_OK: bool = S::COALESCE_OK;

    #[inline]
    fn record_issue(&mut self, addr: MicroAddr) {
        (**self).record_issue(addr);
    }

    #[inline]
    fn record_issue_run(&mut self, addr: MicroAddr, n: u32) {
        (**self).record_issue_run(addr, n);
    }

    #[inline]
    fn record_stall(&mut self, addr: MicroAddr, cycles: u32) {
        (**self).record_stall(addr, cycles);
    }

    #[inline]
    fn trace_event(&mut self, event: MachineEvent) {
        (**self).trace_event(event);
    }

    #[inline]
    fn trace_phase(&mut self, name: &str, begin: bool) {
        (**self).trace_phase(name, begin);
    }
}
