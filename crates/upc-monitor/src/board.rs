//! The histogram count board with its Unibus-style command interface.

use crate::{CycleSink, Histogram};
use vax_ucode::MicroAddr;

/// Commands the host issues to the board over the Unibus (paper §2.2:
/// "Unibus commands can be used to start and stop data collection, as well
/// as to clear and read the histogram count buckets").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Begin counting.
    Start,
    /// Stop counting (the board stays readable).
    Stop,
    /// Zero all buckets.
    Clear,
    /// Read one bucket's (issue, stall) counts.
    ReadBucket(MicroAddr),
}

/// Response to a [`Command`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandResponse {
    /// Command completed with no data.
    Done,
    /// Bucket contents: (non-stalled count, stalled count).
    Bucket(u64, u64),
}

/// The count board: 16 K dual-plane buckets and a collecting switch.
///
/// While stopped, [`CycleSink`] events are ignored — this is how the
/// experiment driver excludes the Null process (paper §2.2): collection is
/// stopped on idle-loop entry and restarted on exit.
#[derive(Debug, Clone)]
pub struct HistogramBoard {
    counts: Histogram,
    collecting: bool,
}

impl HistogramBoard {
    /// A cleared, stopped board.
    pub fn new() -> HistogramBoard {
        HistogramBoard {
            counts: Histogram::new(),
            collecting: false,
        }
    }

    /// Execute a host command.
    pub fn execute(&mut self, command: Command) -> CommandResponse {
        match command {
            Command::Start => {
                self.collecting = true;
                CommandResponse::Done
            }
            Command::Stop => {
                self.collecting = false;
                CommandResponse::Done
            }
            Command::Clear => {
                self.counts.clear();
                CommandResponse::Done
            }
            Command::ReadBucket(addr) => {
                CommandResponse::Bucket(self.counts.issue(addr), self.counts.stall(addr))
            }
        }
    }

    /// Is the board currently counting?
    pub fn is_collecting(&self) -> bool {
        self.collecting
    }

    /// Read out the full histogram (the data-reduction step).
    pub fn snapshot(&self) -> Histogram {
        self.counts.clone()
    }

    /// Consume the board, yielding its histogram.
    pub fn into_histogram(self) -> Histogram {
        self.counts
    }
}

impl Default for HistogramBoard {
    fn default() -> Self {
        HistogramBoard::new()
    }
}

impl CycleSink for HistogramBoard {
    // The board is a pure aggregator: a batched add of `n` issues is
    // exactly `n` single bumps, so the cycle loop may coalesce runs.
    const COALESCE_OK: bool = true;

    #[inline]
    fn record_issue(&mut self, addr: MicroAddr) {
        if self.collecting {
            self.counts.bump_issue(addr);
        }
    }

    #[inline]
    fn record_stall(&mut self, addr: MicroAddr, cycles: u32) {
        if self.collecting {
            self.counts.bump_stall(addr, cycles);
        }
    }

    #[inline]
    fn record_issue_run(&mut self, addr: MicroAddr, n: u32) {
        if self.collecting {
            self.counts.add_issue(addr, u64::from(n));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopped_board_ignores_events() {
        let mut b = HistogramBoard::new();
        b.record_issue(MicroAddr::new(1));
        assert_eq!(b.snapshot().total_cycles(), 0);
        b.execute(Command::Start);
        b.record_issue(MicroAddr::new(1));
        b.execute(Command::Stop);
        b.record_issue(MicroAddr::new(1));
        assert_eq!(b.snapshot().issue(MicroAddr::new(1)), 1);
    }

    #[test]
    fn read_bucket_returns_both_planes() {
        let mut b = HistogramBoard::new();
        b.execute(Command::Start);
        b.record_issue(MicroAddr::new(9));
        b.record_stall(MicroAddr::new(9), 4);
        match b.execute(Command::ReadBucket(MicroAddr::new(9))) {
            CommandResponse::Bucket(i, s) => {
                assert_eq!((i, s), (1, 4));
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn clear_zeroes_but_keeps_collecting_state() {
        let mut b = HistogramBoard::new();
        b.execute(Command::Start);
        b.record_issue(MicroAddr::new(2));
        b.execute(Command::Clear);
        assert!(b.is_collecting());
        assert_eq!(b.snapshot().total_cycles(), 0);
    }
}
