//! A compact text codec for histograms, so measurements can be stored and
//! re-analysed later (the paper kept raw histograms around as "a general
//! resource from which the answers to many questions ... can be obtained
//! simply by doing additional interpretation", §2.2).
//!
//! Format: a header line, optional `counter <name> <value>` lines for the
//! second instrument's hardware counters, then one line per non-zero
//! bucket:
//!
//! ```text
//! upc-histogram v1
//! counter ib_requests 123456
//! <addr-hex> <issue-count> <stall-count>
//! ```

use crate::Histogram;
use std::fmt;
use vax_ucode::MicroAddr;

/// Error parsing the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// Missing or wrong header line.
    BadHeader,
    /// A bucket line did not parse.
    BadLine {
        /// 1-based line number.
        line: usize,
    },
    /// A bucket address outside the 16 K control store.
    AddrOutOfRange {
        /// 1-based line number.
        line: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadHeader => write!(f, "missing `upc-histogram v1` header"),
            CodecError::BadLine { line } => write!(f, "malformed bucket at line {line}"),
            CodecError::AddrOutOfRange { line } => {
                write!(f, "bucket address out of range at line {line}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Serialize a histogram (non-zero buckets only).
pub fn to_text(hist: &Histogram) -> String {
    let mut out = String::from("upc-histogram v1\n");
    for (addr, issue, stall) in hist.nonzero() {
        out.push_str(&format!("{:x} {} {}\n", addr.value(), issue, stall));
    }
    out
}

/// Counter name/value pairs for the embedded second instrument.
pub type CounterPairs = Vec<(String, u64)>;

/// Serialize a histogram with the second instrument's counters embedded.
pub fn to_text_with_counters(hist: &Histogram, counters: &[(&str, u64)]) -> String {
    let mut out = String::from("upc-histogram v1\n");
    for (name, value) in counters {
        out.push_str(&format!("counter {name} {value}\n"));
    }
    for (addr, issue, stall) in hist.nonzero() {
        out.push_str(&format!("{:x} {} {}\n", addr.value(), issue, stall));
    }
    out
}

/// Parse the text format, returning the histogram and any embedded
/// counters.
///
/// # Errors
///
/// [`CodecError`] on any malformed input.
pub fn from_text_with_counters(text: &str) -> Result<(Histogram, CounterPairs), CodecError> {
    let mut counters = Vec::new();
    let mut rest = String::from("upc-histogram v1\n");
    let mut lines = text.lines();
    if lines.next().map(str::trim) != Some("upc-histogram v1") {
        return Err(CodecError::BadHeader);
    }
    for (i, raw) in lines.enumerate() {
        let line = i + 2;
        let raw = raw.trim();
        if let Some(counter) = raw.strip_prefix("counter ") {
            let mut parts = counter.split_ascii_whitespace();
            match (parts.next(), parts.next(), parts.next()) {
                (Some(name), Some(v), None) => {
                    let value = v.parse().map_err(|_| CodecError::BadLine { line })?;
                    counters.push((name.to_string(), value));
                }
                _ => return Err(CodecError::BadLine { line }),
            }
        } else {
            rest.push_str(raw);
            rest.push('\n');
        }
    }
    let hist = from_text(&rest)?;
    Ok((hist, counters))
}

/// Parse the text format back into a histogram.
///
/// # Errors
///
/// [`CodecError`] on any malformed input.
pub fn from_text(text: &str) -> Result<Histogram, CodecError> {
    let mut lines = text.lines();
    if lines.next().map(str::trim) != Some("upc-histogram v1") {
        return Err(CodecError::BadHeader);
    }
    let mut hist = Histogram::new();
    for (i, raw) in lines.enumerate() {
        let line = i + 2;
        let raw = raw.trim();
        if raw.is_empty() {
            continue;
        }
        let mut parts = raw.split_ascii_whitespace();
        let (a, iss, st) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(a), Some(i), Some(s), None) => (a, i, s),
            _ => return Err(CodecError::BadLine { line }),
        };
        let addr = u16::from_str_radix(a, 16).map_err(|_| CodecError::BadLine { line })?;
        if usize::from(addr) >= MicroAddr::SPACE {
            return Err(CodecError::AddrOutOfRange { line });
        }
        let issue: u64 = iss.parse().map_err(|_| CodecError::BadLine { line })?;
        let stall: u64 = st.parse().map_err(|_| CodecError::BadLine { line })?;
        let addr = MicroAddr::new(addr);
        hist.add_issue(addr, issue);
        hist.add_stall(addr, stall);
    }
    Ok(hist)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let mut h = Histogram::new();
        h.bump_issue(MicroAddr::new(0x10));
        h.bump_issue(MicroAddr::new(0x10));
        h.bump_stall(MicroAddr::new(0x10), 7);
        h.bump_issue(MicroAddr::new(0x3FFF));
        let text = to_text(&h);
        let back = from_text(&text).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn empty_histogram_round_trips() {
        let h = Histogram::new();
        assert_eq!(from_text(&to_text(&h)).unwrap(), h);
    }

    #[test]
    fn rejects_bad_input() {
        assert_eq!(from_text("nope"), Err(CodecError::BadHeader));
        assert_eq!(
            from_text("upc-histogram v1\nzzz 1 2"),
            Err(CodecError::BadLine { line: 2 })
        );
        assert_eq!(
            from_text("upc-histogram v1\nffff 1 2"),
            Err(CodecError::AddrOutOfRange { line: 2 })
        );
        assert_eq!(
            from_text("upc-histogram v1\n10 1"),
            Err(CodecError::BadLine { line: 2 })
        );
    }

    #[test]
    fn tolerates_blank_lines() {
        let h = from_text("upc-histogram v1\n\n10 1 0\n\n").unwrap();
        assert_eq!(h.issue(MicroAddr::new(0x10)), 1);
    }
}
