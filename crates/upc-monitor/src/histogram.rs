//! Raw histogram data: the board's counters, read out.

use vax_ucode::MicroAddr;

/// A snapshot of both count planes.
///
/// This is the *entire* input the µPC analysis gets from the instrument —
/// interpretation requires the microcode listing (`vax_ucode::ControlStore`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    issue: Vec<u64>,
    stall: Vec<u64>,
}

impl Histogram {
    /// An all-zero histogram covering the full control store.
    pub fn new() -> Histogram {
        Histogram {
            issue: vec![0; MicroAddr::SPACE],
            stall: vec![0; MicroAddr::SPACE],
        }
    }

    /// From raw planes (testing / deserialization paths).
    ///
    /// # Panics
    ///
    /// Panics if the planes are not full-size.
    pub fn from_planes(issue: Vec<u64>, stall: Vec<u64>) -> Histogram {
        assert_eq!(issue.len(), MicroAddr::SPACE);
        assert_eq!(stall.len(), MicroAddr::SPACE);
        Histogram { issue, stall }
    }

    /// Non-stalled execution count at `addr`.
    #[inline]
    pub fn issue(&self, addr: MicroAddr) -> u64 {
        self.issue[addr.index()]
    }

    /// Stall-cycle count at `addr`.
    #[inline]
    pub fn stall(&self, addr: MicroAddr) -> u64 {
        self.stall[addr.index()]
    }

    /// Add one issue at `addr`.
    #[inline]
    pub fn bump_issue(&mut self, addr: MicroAddr) {
        self.issue[addr.index()] += 1;
    }

    /// Add `cycles` stall cycles at `addr`.
    #[inline]
    pub fn bump_stall(&mut self, addr: MicroAddr, cycles: u32) {
        self.stall[addr.index()] += u64::from(cycles);
    }

    /// Add `n` issues at `addr` (bulk form, used by deserialization).
    #[inline]
    pub fn add_issue(&mut self, addr: MicroAddr, n: u64) {
        self.issue[addr.index()] += n;
    }

    /// Add `n` stall cycles at `addr` (bulk form).
    #[inline]
    pub fn add_stall(&mut self, addr: MicroAddr, n: u64) {
        self.stall[addr.index()] += n;
    }

    /// Sum both planes: every processor cycle lands in exactly one bucket
    /// of one plane, so this is total machine cycles while collecting.
    pub fn total_cycles(&self) -> u64 {
        self.issue.iter().sum::<u64>() + self.stall.iter().sum::<u64>()
    }

    /// Total non-stalled microinstructions.
    pub fn total_issues(&self) -> u64 {
        self.issue.iter().sum()
    }

    /// Total stall cycles.
    pub fn total_stalls(&self) -> u64 {
        self.stall.iter().sum()
    }

    /// Add another histogram into this one — the paper's "composite of all
    /// five \[workloads\], that is, the sum of the five µPC histograms" (§2.2).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.issue.iter_mut().zip(&other.issue) {
            *a += b;
        }
        for (a, b) in self.stall.iter_mut().zip(&other.stall) {
            *a += b;
        }
    }

    /// Zero both planes.
    pub fn clear(&mut self) {
        self.issue.fill(0);
        self.stall.fill(0);
    }

    /// Iterate over non-zero buckets: (address, issues, stalls).
    pub fn nonzero(&self) -> impl Iterator<Item = (MicroAddr, u64, u64)> + '_ {
        (0..MicroAddr::SPACE).filter_map(move |i| {
            let (iss, st) = (self.issue[i], self.stall[i]);
            (iss != 0 || st != 0).then(|| (MicroAddr::new(i as u16), iss, st))
        })
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate() {
        let mut h = Histogram::new();
        let a = MicroAddr::new(100);
        h.bump_issue(a);
        h.bump_issue(a);
        h.bump_stall(a, 5);
        assert_eq!(h.issue(a), 2);
        assert_eq!(h.stall(a), 5);
        assert_eq!(h.total_cycles(), 7);
    }

    #[test]
    fn merge_is_elementwise_sum() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.bump_issue(MicroAddr::new(1));
        b.bump_issue(MicroAddr::new(1));
        b.bump_stall(MicroAddr::new(2), 3);
        a.merge(&b);
        assert_eq!(a.issue(MicroAddr::new(1)), 2);
        assert_eq!(a.stall(MicroAddr::new(2)), 3);
        assert_eq!(a.total_cycles(), 5);
    }

    #[test]
    fn nonzero_iterates_only_touched_buckets() {
        let mut h = Histogram::new();
        h.bump_issue(MicroAddr::new(10));
        h.bump_stall(MicroAddr::new(20), 2);
        let v: Vec<_> = h.nonzero().collect();
        assert_eq!(
            v,
            vec![(MicroAddr::new(10), 1, 0), (MicroAddr::new(20), 0, 2)]
        );
    }

    #[test]
    fn clear_zeroes() {
        let mut h = Histogram::new();
        h.bump_issue(MicroAddr::new(3));
        h.clear();
        assert_eq!(h.total_cycles(), 0);
    }
}
