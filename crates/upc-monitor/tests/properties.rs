//! Property tests for the histogram board and the text codec.

use proptest::prelude::*;
use upc_monitor::{codec, Command, CycleSink, Histogram, HistogramBoard};
use vax_ucode::MicroAddr;

fn events() -> impl Strategy<Value = Vec<(u16, bool, u32)>> {
    prop::collection::vec((0u16..0x4000, any::<bool>(), 1u32..100), 0..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Text round trip is exact for any histogram.
    #[test]
    fn codec_round_trips(evs in events()) {
        let mut h = Histogram::new();
        for (a, is_stall, n) in evs {
            let addr = MicroAddr::new(a);
            if is_stall {
                h.bump_stall(addr, n);
            } else {
                h.add_issue(addr, u64::from(n));
            }
        }
        let text = codec::to_text(&h);
        let back = codec::from_text(&text).unwrap();
        prop_assert_eq!(back, h);
    }

    /// Merge is commutative and total counts add.
    #[test]
    fn merge_commutes(ea in events(), eb in events()) {
        let build = |evs: &[(u16, bool, u32)]| {
            let mut h = Histogram::new();
            for &(a, is_stall, n) in evs {
                let addr = MicroAddr::new(a);
                if is_stall {
                    h.bump_stall(addr, n);
                } else {
                    h.add_issue(addr, u64::from(n));
                }
            }
            h
        };
        let (ha, hb) = (build(&ea), build(&eb));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.total_cycles(), ha.total_cycles() + hb.total_cycles());
    }

    /// Start/stop gating: events before start and after stop never count.
    #[test]
    fn board_gates_collection(n_before in 0u32..20, n_during in 0u32..20, n_after in 0u32..20) {
        let mut b = HistogramBoard::new();
        let a = MicroAddr::new(7);
        for _ in 0..n_before {
            b.record_issue(a);
        }
        b.execute(Command::Start);
        for _ in 0..n_during {
            b.record_issue(a);
        }
        b.execute(Command::Stop);
        for _ in 0..n_after {
            b.record_issue(a);
        }
        prop_assert_eq!(b.snapshot().issue(a), u64::from(n_during));
    }

    /// The codec never panics on arbitrary input.
    #[test]
    fn codec_handles_garbage(text in ".{0,200}") {
        let _ = codec::from_text(&text);
    }
}
