//! Regenerates Table 8 — the headline cycles-per-instruction breakdown —
//! and benchmarks raw simulator throughput (simulated instructions per
//! wall-clock second).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use upc_monitor::NullSink;
use vax_analysis::paper::table8;
use vax_analysis::tables::Table8;
use vax_analysis::Column;
use vax_bench::{compare, composite_analysis};
use vax_ucode::Row;
use vax_workloads::{build_machine, profile, WorkloadKind};

fn bench(c: &mut Criterion) {
    let analysis = composite_analysis();
    let t8 = Table8::from_analysis(analysis);
    println!("\n=== TABLE 8: Average VAX Instruction Timing (cycles/instruction) ===");
    println!("{t8}");
    for (i, col) in Column::ALL.iter().enumerate() {
        compare(
            &format!("column {}", col.name()),
            table8::COL_TOTALS[i].value,
            t8.col_totals[i],
        );
    }
    for row in Row::ALL {
        // No published fault-handling row: the paper's machine was healthy.
        if row == Row::FaultHandling {
            continue;
        }
        compare(
            &format!("row {}", row.name()),
            table8::ROW_TOTALS[row.index()].value,
            t8.row_total(row),
        );
    }
    compare("CPI", table8::CPI.value, t8.cpi);
    compare(
        "decode+spec fraction",
        table8::DECODE_PLUS_SPEC_FRACTION.value,
        t8.decode_plus_spec_fraction(),
    );

    // Simulator throughput: how fast the machine simulates.
    let mut group = c.benchmark_group("simulator");
    const CHUNK: u64 = 20_000;
    group.throughput(Throughput::Elements(CHUNK));
    group.sample_size(10);
    let mut machine = build_machine(&profile(WorkloadKind::TimesharingLight));
    let mut sink = NullSink;
    machine.run_instructions(20_000, &mut sink).expect("warmup");
    group.bench_function("instructions", |b| {
        b.iter(|| {
            machine
                .run_instructions(black_box(CHUNK), &mut sink)
                .expect("runs")
        })
    });
    group.finish();

    c.bench_function("reduce_table8", |b| {
        b.iter(|| black_box(Table8::from_analysis(black_box(analysis))))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
