//! Ablation: write-buffer depth.
//!
//! §5 attributes the CALL/RET group's large write stalls to "the
//! write-through cache and the one-longword write buffer". Deeper write
//! buffers (as later VAXes used) absorb the CALLS push burst: the W-Stall
//! column should collapse while everything else barely moves.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vax780_core::Experiment;
use vax_analysis::tables::Table8;
use vax_analysis::Column;
use vax_mem::MemConfig;
use vax_workloads::WorkloadKind;

const N: u64 = 50_000;

fn wstall_with(entries: u32) -> (f64, f64) {
    let mem = MemConfig {
        write_buffer_entries: entries,
        ..MemConfig::default()
    };
    let a = Experiment::new(WorkloadKind::TimesharingLight)
        .warmup(15_000)
        .instructions(N)
        .mem_config(mem)
        .run()
        .analysis();
    let t8 = Table8::from_analysis(&a);
    (t8.col_totals[Column::WStall.index()], t8.cpi)
}

fn bench(c: &mut Criterion) {
    println!("\n=== ABLATION: write-buffer depth vs W-Stall ===");
    println!("{:>8} {:>14} {:>8}", "entries", "W-Stall/instr", "CPI");
    let mut series = Vec::new();
    for entries in [1u32, 2, 4, 8] {
        let (ws, cpi) = wstall_with(entries);
        println!("{entries:>8} {ws:>14.3} {cpi:>8.3}");
        series.push(ws);
    }
    assert!(
        series.windows(2).all(|w| w[0] >= w[1] - 1e-6),
        "W-stall must fall (weakly) with buffer depth: {series:?}"
    );
    assert!(
        series[0] > 2.0 * series[3].max(0.01),
        "a deep buffer should collapse most write stalls"
    );
    let mut group = c.benchmark_group("write_buffer");
    group.sample_size(10);
    group.bench_function("experiment_depth4", |b| {
        b.iter(|| black_box(wstall_with(4)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
