//! Regenerates the §3.3/§4 event statistics: IB behaviour, cache and TB
//! miss rates, TB service time, unaligned references.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vax_analysis::{paper, Section4Stats};
use vax_bench::{compare, composite_analysis};

fn bench(c: &mut Criterion) {
    let analysis = composite_analysis();
    let s4 = Section4Stats::from_analysis(analysis);
    println!("\n=== SECTION 3/4: Event Rates per Instruction ===");
    compare(
        "IB refs/instr",
        paper::IB_REFS_PER_INSTR.value,
        s4.ib_refs_per_instr,
    );
    compare(
        "IB bytes/ref",
        paper::IB_BYTES_PER_REF.value,
        s4.ib_bytes_per_ref,
    );
    compare(
        "cache read misses/instr",
        paper::CACHE_MISSES_PER_INSTR.value,
        s4.cache_miss_per_instr(),
    );
    compare(
        "  I-stream misses",
        paper::CACHE_MISSES_I_PER_INSTR.value,
        s4.cache_miss_i_per_instr,
    );
    compare(
        "  D-stream misses",
        paper::CACHE_MISSES_D_PER_INSTR.value,
        s4.cache_miss_d_per_instr,
    );
    compare(
        "TB misses/instr",
        paper::TB_MISSES_PER_INSTR.value,
        s4.tb_miss_per_instr,
    );
    compare(
        "TB service cycles",
        paper::TB_SERVICE_CYCLES.value,
        s4.tb_service_cycles,
    );
    compare(
        "  read-stall share",
        paper::TB_SERVICE_READ_STALL.value,
        s4.tb_service_read_stall,
    );
    compare(
        "unaligned refs/instr",
        paper::UNALIGNED_PER_INSTR.value,
        s4.unaligned_per_instr,
    );
    compare(
        "read:write ratio",
        paper::READ_WRITE_RATIO.value,
        s4.read_write_ratio(),
    );
    c.bench_function("reduce_section4", |b| {
        b.iter(|| black_box(Section4Stats::from_analysis(black_box(analysis))))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
