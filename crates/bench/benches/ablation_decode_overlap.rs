//! Ablation: the 11/750-style folded decode cycle.
//!
//! §5: "saving the non-overlapped I-Decode cycle could save one cycle on
//! each non-PC-changing instruction. (The later VAX model 11/750 did
//! [this].)" — with ≈61.5 % non-PC-changing instructions, the predicted
//! saving is ≈0.6 CPI.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vax780_core::Experiment;
use vax_bench::compare;
use vax_cpu::CpuConfig;
use vax_workloads::WorkloadKind;

const N: u64 = 60_000;

fn cpi_with(config: CpuConfig) -> f64 {
    let m = Experiment::new(WorkloadKind::TimesharingLight)
        .warmup(15_000)
        .instructions(N)
        .cpu_config(config)
        .run();
    m.analysis().cpi()
}

fn bench(c: &mut Criterion) {
    let base = cpi_with(CpuConfig::default());
    let overlapped = cpi_with(CpuConfig::with_decode_overlap());
    println!("\n=== ABLATION: decode overlap (11/780 vs 11/750-style) ===");
    println!("11/780 (non-overlapped decode): CPI {base:.3}");
    println!("11/750-style (folded decode):   CPI {overlapped:.3}");
    compare("CPI saving", 0.62, base - overlapped);
    // Throughput of the overlapped-decode machine.
    let mut group = c.benchmark_group("decode_overlap");
    group.sample_size(10);
    let mut machine = vax_workloads::build_machine_with_config(
        &vax_workloads::profile(WorkloadKind::TimesharingLight),
        CpuConfig::with_decode_overlap(),
        vax_mem::MemConfig::default(),
    );
    let mut sink = upc_monitor::NullSink;
    machine.run_instructions(10_000, &mut sink).expect("warmup");
    group.bench_function("run_2k_instructions", |b| {
        b.iter(|| {
            machine
                .run_instructions(black_box(2_000), &mut sink)
                .expect("runs")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
