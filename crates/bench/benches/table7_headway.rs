//! Regenerates Table 7 — interrupt and context-switch headway.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vax_analysis::paper;
use vax_analysis::tables::Table7;
use vax_bench::{compare, composite_analysis};

fn bench(c: &mut Criterion) {
    let analysis = composite_analysis();
    let t7 = Table7::from_analysis(analysis);
    println!("\n=== TABLE 7: Interrupt and Context-Switch Headway (instructions) ===");
    compare(
        "Software int requests",
        paper::SOFT_INT_REQUEST_HEADWAY.value,
        t7.soft_int_request_headway,
    );
    compare(
        "HW + SW interrupts",
        paper::INTERRUPT_HEADWAY.value,
        t7.interrupt_headway,
    );
    compare(
        "Context switches",
        paper::CONTEXT_SWITCH_HEADWAY.value,
        t7.context_switch_headway,
    );
    c.bench_function("reduce_table7", |b| {
        b.iter(|| black_box(Table7::from_analysis(black_box(analysis))))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
