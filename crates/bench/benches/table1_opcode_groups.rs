//! Regenerates Table 1 — opcode group frequency — and times its
//! reduction from the raw histogram.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vax_analysis::paper;
use vax_analysis::tables::Table1;
use vax_arch::OpcodeGroup;
use vax_bench::{compare, composite_analysis};

fn bench(c: &mut Criterion) {
    let analysis = composite_analysis();
    let t1 = Table1::from_analysis(analysis);
    println!("\n=== TABLE 1: Opcode Group Frequency (percent) ===");
    for group in OpcodeGroup::ALL {
        compare(
            group.name(),
            paper::table1_group_pct(group).value,
            t1.pct(group),
        );
    }
    c.bench_function("reduce_table1", |b| {
        b.iter(|| black_box(Table1::from_analysis(black_box(analysis))))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
