//! Ablation: cache size sweep, cross-checking the companion cache
//! study's sensitivity (the 8 KB point should land near the paper's 0.28
//! misses/instruction; smaller caches should miss more, larger less).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vax780_core::Experiment;
use vax_analysis::Section4Stats;
use vax_mem::{CacheConfig, MemConfig};
use vax_workloads::WorkloadKind;

const N: u64 = 50_000;

fn miss_rate(cache_kb: u32) -> f64 {
    let mem = MemConfig {
        cache: CacheConfig {
            size_bytes: cache_kb * 1024,
            ..CacheConfig::default()
        },
        ..MemConfig::default()
    };
    let m = Experiment::new(WorkloadKind::TimesharingLight)
        .warmup(15_000)
        .instructions(N)
        .mem_config(mem)
        .run();
    Section4Stats::from_analysis(&m.analysis()).cache_miss_per_instr()
}

fn bench(c: &mut Criterion) {
    println!("\n=== ABLATION: cache size vs read miss rate ===");
    println!("{:>10} {:>16}", "size (KB)", "misses/instr");
    let mut rates = Vec::new();
    for kb in [2u32, 4, 8, 16, 32] {
        let rate = miss_rate(kb);
        println!("{kb:>10} {rate:>16.4}");
        rates.push(rate);
    }
    assert!(
        rates.windows(2).all(|w| w[0] >= w[1] - 1e-6),
        "miss rate must fall (weakly) with cache size: {rates:?}"
    );
    let mut group = c.benchmark_group("cache_geometry");
    group.sample_size(10);
    group.bench_function("experiment_8kb_point", |b| {
        b.iter(|| black_box(miss_rate(8)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
