//! Ablation: context-switch interval versus TB miss rate.
//!
//! §3.4: "the context-switch figure is useful in setting the 'flush'
//! interval in cache and translation buffer simulations" — every `LDPCTX`
//! flushes the process half of the TB, so the scheduling quantum directly
//! moves the TB miss rate (companion study [3]).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vax780_core::Experiment;
use vax_analysis::Section4Stats;
use vax_workloads::{profile, ProfileParams, WorkloadKind};

const N: u64 = 50_000;

fn tb_rate(timer_period: u64) -> f64 {
    let params = ProfileParams {
        timer_period,
        ..profile(WorkloadKind::TimesharingLight)
    };
    let m = Experiment::with_params(params)
        .warmup(15_000)
        .instructions(N)
        .run();
    Section4Stats::from_analysis(&m.analysis()).tb_miss_per_instr
}

fn bench(c: &mut Criterion) {
    println!("\n=== ABLATION: scheduling quantum vs TB miss rate ===");
    println!(
        "{:>14} {:>16} {:>14}",
        "quantum (cyc)", "~switch headway", "TB miss/instr"
    );
    let mut rates = Vec::new();
    for period in [16_000u64, 32_000, 64_000, 128_000, 256_000] {
        let rate = tb_rate(period);
        println!("{:>14} {:>16} {:>14.4}", period, period / 10, rate);
        rates.push(rate);
    }
    assert!(
        rates.first() > rates.last(),
        "shorter quanta must flush the TB more often"
    );
    // Split vs unified halves (the design choice the companion TB study
    // [3] examines): a unified TB lets process pages evict system
    // translations, so under context-switch pressure the split
    // organization should not be worse.
    let unified_rate = {
        let params = ProfileParams {
            timer_period: 32_000,
            ..profile(WorkloadKind::TimesharingLight)
        };
        let mem = vax_mem::MemConfig {
            tb: vax_mem::TbConfig {
                split: false,
                ..vax_mem::TbConfig::default()
            },
            ..vax_mem::MemConfig::default()
        };
        let m = Experiment::with_params(params)
            .warmup(15_000)
            .instructions(N)
            .mem_config(mem)
            .run();
        Section4Stats::from_analysis(&m.analysis()).tb_miss_per_instr
    };
    let split_rate = tb_rate(32_000);
    println!("split TB miss rate   {split_rate:.4}");
    println!("unified TB miss rate {unified_rate:.4}");
    c.bench_function("experiment_tb_flush_point", |b| {
        let mut machine = vax_workloads::build_machine(&ProfileParams {
            timer_period: 64_000,
            ..profile(WorkloadKind::TimesharingLight)
        });
        let mut sink = upc_monitor::NullSink;
        machine.run_instructions(10_000, &mut sink).expect("warmup");
        b.iter(|| {
            machine
                .run_instructions(black_box(2_000), &mut sink)
                .expect("runs")
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
