//! Regenerates Table 3 — specifiers and branch displacements per average
//! instruction.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vax_analysis::paper;
use vax_analysis::tables::Table3;
use vax_bench::{compare, composite_analysis};

fn bench(c: &mut Criterion) {
    let analysis = composite_analysis();
    let t3 = Table3::from_analysis(analysis);
    println!("\n=== TABLE 3: Specifiers per Average Instruction ===");
    compare("First specifiers", paper::SPEC1_PER_INSTR.value, t3.spec1);
    compare(
        "Other specifiers",
        paper::SPEC2_6_PER_INSTR.value,
        t3.spec2_6,
    );
    compare(
        "Branch displacements",
        paper::BDISP_PER_INSTR.value,
        t3.bdisp,
    );
    compare(
        "Total specifiers",
        paper::SPECS_PER_INSTR.value,
        t3.total_specs(),
    );
    c.bench_function("reduce_table3", |b| {
        b.iter(|| black_box(Table3::from_analysis(black_box(analysis))))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
