//! Regenerates Table 6 — estimated size of the average instruction.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vax_analysis::paper;
use vax_analysis::tables::Table6;
use vax_bench::{compare, composite_analysis};

fn bench(c: &mut Criterion) {
    let analysis = composite_analysis();
    let t6 = Table6::from_analysis(analysis);
    println!("\n=== TABLE 6: Estimated Size of Average Instruction ===");
    compare(
        "Specifiers/instruction",
        paper::SPECS_PER_INSTR.value,
        t6.specs_per_instr,
    );
    compare(
        "Bytes/specifier",
        paper::SPEC_SIZE_BYTES.value,
        t6.est_spec_bytes,
    );
    compare(
        "Branch disp/instruction",
        paper::BDISP_PER_INSTR.value,
        t6.bdisp_per_instr,
    );
    compare(
        "TOTAL bytes/instruction",
        paper::INSTRUCTION_BYTES.value,
        t6.total_bytes,
    );
    c.bench_function("reduce_table6", |b| {
        b.iter(|| black_box(Table6::from_analysis(black_box(analysis))))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
