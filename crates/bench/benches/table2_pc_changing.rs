//! Regenerates Table 2 — PC-changing instructions: frequency and actual
//! branch rate per class.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vax_analysis::paper;
use vax_analysis::tables::Table2;
use vax_bench::{compare, composite_analysis};

fn bench(c: &mut Criterion) {
    let analysis = composite_analysis();
    let t2 = Table2::from_analysis(analysis);
    println!("\n=== TABLE 2: PC-Changing Instructions ===");
    for (class, pct, taken, _) in &t2.rows {
        let (p_pct, p_taken) = paper::table2(*class);
        compare(&format!("{} %inst", class.name()), p_pct.value, *pct);
        compare(&format!("{} %taken", class.name()), p_taken.value, *taken);
    }
    compare("TOTAL %inst", paper::TABLE2_TOTAL_PCT.value, t2.total.0);
    compare("TOTAL %taken", paper::TABLE2_TAKEN_PCT.value, t2.total.1);
    c.bench_function("reduce_table2", |b| {
        b.iter(|| black_box(Table2::from_analysis(black_box(analysis))))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
