//! Regenerates Table 9 — cycles per instruction within each group
//! (the two-orders-of-magnitude spread from SIMPLE to DECIMAL).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vax_analysis::paper;
use vax_analysis::tables::Table9;
use vax_arch::OpcodeGroup;
use vax_bench::{compare, composite_analysis};

fn bench(c: &mut Criterion) {
    let analysis = composite_analysis();
    let t9 = Table9::from_analysis(analysis);
    println!("\n=== TABLE 9: Cycles per Instruction Within Each Group ===");
    for group in OpcodeGroup::ALL {
        compare(
            group.name(),
            paper::table9_total(group).value,
            t9.total(group),
        );
    }
    // The paper's qualitative claim: two orders of magnitude of spread.
    let spread = t9
        .total(OpcodeGroup::Character)
        .max(t9.total(OpcodeGroup::Decimal))
        / t9.total(OpcodeGroup::Simple);
    println!("spread CHARACTER-or-DECIMAL / SIMPLE = {spread:.0}x (paper: ~100x)");
    c.bench_function("reduce_table9", |b| {
        b.iter(|| black_box(Table9::from_analysis(black_box(analysis))))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
