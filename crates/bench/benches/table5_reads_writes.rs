//! Regenerates Table 5 — D-stream reads and writes per average
//! instruction by source.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vax_analysis::paper::{self, table5};
use vax_analysis::tables::{Table5, Table5Source};
use vax_arch::OpcodeGroup;
use vax_bench::{compare, composite_analysis};

fn paper_row(src: &Table5Source) -> (f64, f64) {
    let (r, w) = match src {
        Table5Source::Spec1 => table5::SPEC1,
        Table5Source::Spec2to6 => table5::SPEC2_6,
        Table5Source::Group(OpcodeGroup::Simple) => table5::SIMPLE,
        Table5Source::Group(OpcodeGroup::Field) => table5::FIELD,
        Table5Source::Group(OpcodeGroup::Float) => table5::FLOAT,
        Table5Source::Group(OpcodeGroup::CallRet) => table5::CALLRET,
        Table5Source::Group(OpcodeGroup::System) => table5::SYSTEM,
        Table5Source::Group(OpcodeGroup::Character) => table5::CHARACTER,
        Table5Source::Group(OpcodeGroup::Decimal) => table5::DECIMAL,
        Table5Source::Other => table5::OTHER,
    };
    (r.value, w.value)
}

fn bench(c: &mut Criterion) {
    let analysis = composite_analysis();
    let t5 = Table5::from_analysis(analysis);
    println!("\n=== TABLE 5: Reads and Writes per Instruction ===");
    for (src, reads, writes) in &t5.rows {
        let (pr, pw) = paper_row(src);
        compare(&format!("{} reads", src.name()), pr, *reads);
        compare(&format!("{} writes", src.name()), pw, *writes);
    }
    compare("TOTAL reads", table5::TOTAL.0.value, t5.total.0);
    compare("TOTAL writes", table5::TOTAL.1.value, t5.total.1);
    compare(
        "read:write ratio",
        paper::READ_WRITE_RATIO.value,
        t5.read_write_ratio(),
    );
    c.bench_function("reduce_table5", |b| {
        b.iter(|| black_box(Table5::from_analysis(black_box(analysis))))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
