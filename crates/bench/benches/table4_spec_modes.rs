//! Regenerates Table 4 — operand specifier mode distribution.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vax_analysis::paper;
use vax_analysis::tables::Table4;
use vax_arch::SpecModeClass;
use vax_bench::{compare, composite_analysis};

fn bench(c: &mut Criterion) {
    let analysis = composite_analysis();
    let t4 = Table4::from_analysis(analysis);
    println!("\n=== TABLE 4: Operand Specifier Distribution (total %) ===");
    for class in SpecModeClass::ALL {
        compare(
            class.name(),
            paper::table4::total_pct(class).value,
            t4.total_pct(class),
        );
    }
    compare(
        "Percent indexed",
        paper::table4::INDEXED_TOTAL_PCT.value,
        t4.indexed.2,
    );
    c.bench_function("reduce_table4", |b| {
        b.iter(|| black_box(Table4::from_analysis(black_box(analysis))))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
