//! Shared machinery for the benchmark harness.
//!
//! Each bench target regenerates one table or figure of the paper's
//! evaluation: it runs the composite measurement (all five workloads),
//! prints the measured rows next to the paper's published rows, and then
//! lets Criterion time the interesting computational kernel (the
//! simulation itself for Table 8, the histogram reduction for the
//! others).

use std::sync::OnceLock;
use vax780_core::CompositeStudy;
use vax_analysis::Analysis;

/// Instructions measured per workload in bench runs. Large enough for
/// stable statistics, small enough to keep `cargo bench` pleasant.
pub const BENCH_INSTRUCTIONS: u64 = 60_000;

static COMPOSITE: OnceLock<Analysis> = OnceLock::new();

/// The composite analysis, computed once per bench process. The five
/// workloads fan across one worker per host core; the merge is
/// bit-identical to a serial run, so bench numbers are unaffected.
pub fn composite_analysis() -> &'static Analysis {
    COMPOSITE.get_or_init(|| {
        eprintln!("[bench] running composite: 5 workloads x {BENCH_INSTRUCTIONS} instructions ...");
        let (_, analysis, metrics) = CompositeStudy::new(BENCH_INSTRUCTIONS)
            .warmup(15_000)
            .run_with_metrics();
        eprintln!(
            "[bench] composite wall {:.3?} ({:.2}x parallel speedup)",
            metrics.wall,
            metrics.speedup()
        );
        analysis
    })
}

/// Print a labelled paper-vs-measured line.
pub fn compare(label: &str, paper: f64, measured: f64) {
    let err = if paper == 0.0 {
        0.0
    } else {
        100.0 * (measured - paper) / paper
    };
    println!("{label:<34} paper {paper:>9.3}   measured {measured:>9.3}   ({err:+.1}%)");
}
