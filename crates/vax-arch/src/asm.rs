//! A small VAX assembler with labels and fixups.
//!
//! The workload generator uses this to emit *real executable machine code*
//! for the simulator: branch displacements, case tables and PC-relative
//! references are resolved at [`Assembler::finish`] time.

use crate::{AccessType, ArchError, DataType, DispSize, Opcode, Operand, Reg};

/// A forward-referencable code location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(u32);

/// Assembled code plus its base virtual address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeImage {
    /// Virtual address of the first byte.
    pub base: u32,
    /// The machine code.
    pub bytes: Vec<u8>,
}

impl CodeImage {
    /// Virtual address one past the last byte.
    pub fn end(&self) -> u32 {
        self.base + self.bytes.len() as u32
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Is the image empty?
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

#[derive(Debug, Clone, Copy)]
enum FixupKind {
    /// Byte branch displacement; base is the VA after the displacement byte.
    BranchByte,
    /// Word branch displacement; base is the VA after the displacement word.
    BranchWord,
    /// Case-table word entry; displacement is relative to the table base VA.
    CaseWord { table_base: u32 },
    /// 32-bit absolute address of a label (data or `@#addr`).
    AbsoluteLong,
    /// Long PC-relative displacement; base is the VA after the field.
    PcRelLong,
}

#[derive(Debug, Clone, Copy)]
struct Fixup {
    offset: usize,
    label: Label,
    kind: FixupKind,
    mnemonic: &'static str,
}

/// The assembler. See the crate-level example.
#[derive(Debug)]
pub struct Assembler {
    base: u32,
    bytes: Vec<u8>,
    labels: Vec<Option<u32>>,
    fixups: Vec<Fixup>,
}

impl Assembler {
    /// A new assembler whose first emitted byte lives at `base`.
    pub fn new(base: u32) -> Assembler {
        Assembler {
            base,
            bytes: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
        }
    }

    /// Virtual address of the next byte to be emitted.
    pub fn here(&self) -> u32 {
        self.base + self.bytes.len() as u32
    }

    /// Create a fresh, unplaced label.
    pub fn new_label(&mut self) -> Label {
        let id = self.labels.len() as u32;
        self.labels.push(None);
        Label(id)
    }

    /// Place `label` at the current location.
    ///
    /// # Errors
    ///
    /// [`ArchError::DuplicateLabel`] if the label was already placed.
    pub fn place(&mut self, label: Label) -> Result<(), ArchError> {
        let here = self.here();
        let slot = &mut self.labels[label.0 as usize];
        if slot.is_some() {
            return Err(ArchError::DuplicateLabel(label.0));
        }
        *slot = Some(here);
        Ok(())
    }

    /// Create a label placed at the current location.
    pub fn label_here(&mut self) -> Label {
        let l = self.new_label();
        self.place(l).expect("fresh label cannot be a duplicate");
        l
    }

    /// Emit raw bytes.
    pub fn bytes(&mut self, data: &[u8]) {
        self.bytes.extend_from_slice(data);
    }

    /// Emit one byte.
    pub fn byte(&mut self, b: u8) {
        self.bytes.push(b);
    }

    /// Emit a little-endian word.
    pub fn word(&mut self, w: u16) {
        self.bytes.extend_from_slice(&w.to_le_bytes());
    }

    /// Emit a little-endian longword.
    pub fn long(&mut self, l: u32) {
        self.bytes.extend_from_slice(&l.to_le_bytes());
    }

    /// Emit the absolute address of `label` as a longword (resolved at
    /// finish time).
    pub fn long_label(&mut self, label: Label) {
        self.fixups.push(Fixup {
            offset: self.bytes.len(),
            label,
            kind: FixupKind::AbsoluteLong,
            mnemonic: ".long",
        });
        self.long(0);
    }

    /// Pad with `NOP` opcodes to the next multiple of `align` bytes
    /// (relative to the base address).
    pub fn align(&mut self, align: u32) {
        debug_assert!(align.is_power_of_two());
        while !self.here().is_multiple_of(align) {
            self.byte(Opcode::Nop.to_byte());
        }
    }

    /// Emit an instruction that has no branch displacement.
    ///
    /// Returns the VA of the opcode byte.
    ///
    /// # Errors
    ///
    /// Operand-count mismatches, invalid modes (e.g. writing to a literal)
    /// and instructions that require a displacement are rejected.
    pub fn inst(&mut self, op: Opcode, operands: &[Operand]) -> Result<u32, ArchError> {
        if op.branch_displacement().is_some() {
            return Err(ArchError::BadOperand(format!(
                "{} requires a branch target; use `branch`",
                op.mnemonic()
            )));
        }
        self.emit(op, operands, None)
    }

    /// Emit an instruction whose final operand is a branch displacement to
    /// `target`.
    ///
    /// Returns the VA of the opcode byte.
    ///
    /// # Errors
    ///
    /// As [`Assembler::inst`], plus an error if the opcode takes no
    /// displacement. Displacement overflow is detected at
    /// [`Assembler::finish`].
    pub fn branch(
        &mut self,
        op: Opcode,
        operands: &[Operand],
        target: Label,
    ) -> Result<u32, ArchError> {
        if op.branch_displacement().is_none() {
            return Err(ArchError::BadOperand(format!(
                "{} takes no branch displacement",
                op.mnemonic()
            )));
        }
        self.emit(op, operands, Some(target))
    }

    /// Emit a `CASEx` instruction plus its word displacement table, one
    /// entry per target label.
    ///
    /// `operands` are the selector/base/limit specifiers; `limit` must have
    /// been chosen by the caller to match `targets.len() - 1`.
    ///
    /// # Errors
    ///
    /// As [`Assembler::inst`]; also rejects non-`CASEx` opcodes.
    pub fn case(
        &mut self,
        op: Opcode,
        operands: &[Operand],
        targets: &[Label],
    ) -> Result<u32, ArchError> {
        if !op.has_case_table() {
            return Err(ArchError::BadOperand(format!(
                "{} is not a case instruction",
                op.mnemonic()
            )));
        }
        let va = self.emit(op, operands, None)?;
        let table_base = self.here();
        for &t in targets {
            self.fixups.push(Fixup {
                offset: self.bytes.len(),
                label: t,
                kind: FixupKind::CaseWord { table_base },
                mnemonic: op.mnemonic(),
            });
            self.word(0);
        }
        Ok(va)
    }

    fn emit(
        &mut self,
        op: Opcode,
        operands: &[Operand],
        target: Option<Label>,
    ) -> Result<u32, ArchError> {
        let templates = op.operands();
        let spec_templates: Vec<_> = templates
            .iter()
            .filter(|t| !t.is_branch_displacement())
            .collect();
        if operands.len() != spec_templates.len() {
            return Err(ArchError::OperandCount {
                mnemonic: op.mnemonic(),
                expected: spec_templates.len(),
                got: operands.len(),
            });
        }
        let va = self.here();
        self.byte(op.to_byte());
        for (operand, template) in operands.iter().zip(spec_templates) {
            self.encode_operand(operand, template.access(), template.data_type())?;
        }
        if let Some(label) = target {
            let disp = op
                .branch_displacement()
                .expect("checked by caller")
                .data_type();
            let kind = match disp {
                DataType::Byte => FixupKind::BranchByte,
                DataType::Word => FixupKind::BranchWord,
                other => unreachable!("displacement of type {other}"),
            };
            self.fixups.push(Fixup {
                offset: self.bytes.len(),
                label,
                kind,
                mnemonic: op.mnemonic(),
            });
            match disp {
                DataType::Byte => self.byte(0),
                DataType::Word => self.word(0),
                _ => unreachable!(),
            }
        }
        Ok(va)
    }

    fn encode_operand(
        &mut self,
        operand: &Operand,
        access: AccessType,
        dtype: DataType,
    ) -> Result<(), ArchError> {
        // Literal and immediate modes cannot be written.
        if access.writes_value() && matches!(operand, Operand::Literal(_) | Operand::Immediate(_)) {
            return Err(ArchError::InvalidMode(format!(
                "{operand:?} cannot be the destination of a {access} operand"
            )));
        }
        // Address/field operands must name memory (or a register for field).
        if matches!(access, AccessType::Address) && !operand.is_memory() {
            return Err(ArchError::InvalidMode(format!(
                "{operand:?} cannot supply an address operand"
            )));
        }
        match operand {
            Operand::Literal(v) => {
                if *v > 63 {
                    return Err(ArchError::BadOperand(format!(
                        "short literal {v} out of range 0..=63"
                    )));
                }
                self.byte(*v);
            }
            Operand::Reg(r) => self.byte(0x50 | r.number()),
            Operand::RegDeferred(r) => self.byte(0x60 | r.number()),
            Operand::AutoDecrement(r) => self.byte(0x70 | r.number()),
            Operand::AutoIncrement(r) => self.byte(0x80 | r.number()),
            Operand::AutoIncDeferred(r) => self.byte(0x90 | r.number()),
            Operand::Disp(d, r) => self.encode_disp(false, *d, *r),
            Operand::DispDeferred(d, r) => self.encode_disp(true, *d, *r),
            Operand::Immediate(v) => {
                self.byte(0x80 | Reg::Pc.number());
                let n = dtype.size_bytes() as usize;
                self.bytes.extend_from_slice(&v.to_le_bytes()[..n]);
            }
            Operand::Absolute(addr) => {
                self.byte(0x90 | Reg::Pc.number());
                self.long(*addr);
            }
            Operand::Indexed(base, rx) => {
                self.byte(0x40 | rx.number());
                // The base specifier follows the index prefix; it keeps the
                // operand's access/data type for its own encoding rules.
                self.encode_operand(base, access, dtype)?;
            }
        }
        Ok(())
    }

    fn encode_disp(&mut self, deferred: bool, disp: i32, reg: Reg) {
        let mode_bits = |size: DispSize| -> u8 {
            match (size, deferred) {
                (DispSize::Byte, false) => 0xA0,
                (DispSize::Byte, true) => 0xB0,
                (DispSize::Word, false) => 0xC0,
                (DispSize::Word, true) => 0xD0,
                (DispSize::Long, false) => 0xE0,
                (DispSize::Long, true) => 0xF0,
            }
        };
        let size = DispSize::fitting(disp);
        self.byte(mode_bits(size) | reg.number());
        match size {
            DispSize::Byte => self.byte(disp as i8 as u8),
            DispSize::Word => self.word(disp as i16 as u16),
            DispSize::Long => self.long(disp as u32),
        }
    }

    /// Emit a `MOVAL pcrel, dst` computing the address of `label`
    /// PC-relatively (long displacement, resolved at finish).
    ///
    /// # Errors
    ///
    /// Propagates operand encoding errors for `dst`.
    pub fn moval_pcrel(&mut self, label: Label, dst: Operand) -> Result<u32, ArchError> {
        let va = self.here();
        self.byte(Opcode::Moval.to_byte());
        // Long displacement off PC.
        self.byte(0xE0 | Reg::Pc.number());
        self.fixups.push(Fixup {
            offset: self.bytes.len(),
            label,
            kind: FixupKind::PcRelLong,
            mnemonic: "moval",
        });
        self.long(0);
        self.encode_operand(&dst, AccessType::Write, DataType::Long)?;
        Ok(va)
    }

    /// Resolve all fixups and return the finished image.
    ///
    /// # Errors
    ///
    /// [`ArchError::UnresolvedLabel`] for labels never placed and
    /// [`ArchError::DisplacementOverflow`] for out-of-range branch
    /// displacements.
    pub fn finish(self) -> Result<CodeImage, ArchError> {
        let Assembler {
            base,
            mut bytes,
            labels,
            fixups,
        } = self;
        for fixup in fixups {
            let target =
                labels[fixup.label.0 as usize].ok_or(ArchError::UnresolvedLabel(fixup.label.0))?;
            let field_va = base + fixup.offset as u32;
            match fixup.kind {
                FixupKind::BranchByte => {
                    let next = field_va + 1;
                    let disp = i64::from(target) - i64::from(next);
                    let disp8: i8 =
                        disp.try_into()
                            .map_err(|_| ArchError::DisplacementOverflow {
                                mnemonic: fixup.mnemonic,
                                disp,
                            })?;
                    bytes[fixup.offset] = disp8 as u8;
                }
                FixupKind::BranchWord => {
                    let next = field_va + 2;
                    let disp = i64::from(target) - i64::from(next);
                    let disp16: i16 =
                        disp.try_into()
                            .map_err(|_| ArchError::DisplacementOverflow {
                                mnemonic: fixup.mnemonic,
                                disp,
                            })?;
                    bytes[fixup.offset..fixup.offset + 2]
                        .copy_from_slice(&(disp16 as u16).to_le_bytes());
                }
                FixupKind::CaseWord { table_base } => {
                    let disp = i64::from(target) - i64::from(table_base);
                    let disp16: i16 =
                        disp.try_into()
                            .map_err(|_| ArchError::DisplacementOverflow {
                                mnemonic: fixup.mnemonic,
                                disp,
                            })?;
                    bytes[fixup.offset..fixup.offset + 2]
                        .copy_from_slice(&(disp16 as u16).to_le_bytes());
                }
                FixupKind::AbsoluteLong => {
                    bytes[fixup.offset..fixup.offset + 4].copy_from_slice(&target.to_le_bytes());
                }
                FixupKind::PcRelLong => {
                    let next = field_va + 4;
                    let disp = i64::from(target) - i64::from(next);
                    bytes[fixup.offset..fixup.offset + 4]
                        .copy_from_slice(&(disp as i32 as u32).to_le_bytes());
                }
            }
        }
        Ok(CodeImage { base, bytes })
    }
}

/// The condition-reversed form of a simple conditional branch, used for
/// "branch around a `BRW`" long-conditional sequences.
pub(crate) fn reverse_condition(op: Opcode) -> Option<Opcode> {
    Some(match op {
        Opcode::Bneq => Opcode::Beql,
        Opcode::Beql => Opcode::Bneq,
        Opcode::Bgtr => Opcode::Bleq,
        Opcode::Bleq => Opcode::Bgtr,
        Opcode::Bgeq => Opcode::Blss,
        Opcode::Blss => Opcode::Bgeq,
        Opcode::Bgtru => Opcode::Blequ,
        Opcode::Blequ => Opcode::Bgtru,
        Opcode::Bvc => Opcode::Bvs,
        Opcode::Bvs => Opcode::Bvc,
        Opcode::Bcc => Opcode::Bcs,
        Opcode::Bcs => Opcode::Bcc,
        Opcode::Blbs => Opcode::Blbc,
        Opcode::Blbc => Opcode::Blbs,
        _ => return None,
    })
}

impl Assembler {
    /// Emit a conditional branch that can reach any distance: a byte-range
    /// branch if possible is *not* attempted (resolution happens at finish,
    /// so the conservative reversed-condition + `BRW` form is emitted).
    ///
    /// # Errors
    ///
    /// Rejects opcodes that are not simple conditional or low-bit branches.
    pub fn cond_branch_far(
        &mut self,
        op: Opcode,
        operands: &[Operand],
        target: Label,
    ) -> Result<u32, ArchError> {
        let reversed = reverse_condition(op)
            .ok_or_else(|| ArchError::BadOperand(format!("{} is not reversible", op.mnemonic())))?;
        let skip = self.new_label();
        let va = self.branch(reversed, operands, skip)?;
        self.branch(Opcode::Brw, &[], target)?;
        self.place(skip)?;
        Ok(va)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_register_and_literal_movl() {
        let mut asm = Assembler::new(0);
        asm.inst(Opcode::Movl, &[Operand::Literal(5), Operand::Reg(Reg::R0)])
            .unwrap();
        let img = asm.finish().unwrap();
        assert_eq!(img.bytes, vec![0xD0, 0x05, 0x50]);
    }

    #[test]
    fn encodes_displacement_widths() {
        let mut asm = Assembler::new(0);
        asm.inst(
            Opcode::Movl,
            &[Operand::Disp(4, Reg::R1), Operand::Disp(300, Reg::R2)],
        )
        .unwrap();
        let img = asm.finish().unwrap();
        // movl 4(r1), 300(r2): opcode, A1 04, C2 2C 01
        assert_eq!(img.bytes, vec![0xD0, 0xA1, 0x04, 0xC2, 0x2C, 0x01]);
    }

    #[test]
    fn encodes_immediate_with_operand_size() {
        let mut asm = Assembler::new(0);
        asm.inst(
            Opcode::Movw,
            &[Operand::Immediate(0x1234), Operand::Reg(Reg::R3)],
        )
        .unwrap();
        let img = asm.finish().unwrap();
        assert_eq!(img.bytes, vec![0xB0, 0x8F, 0x34, 0x12, 0x53]);
    }

    #[test]
    fn encodes_indexed_mode() {
        let mut asm = Assembler::new(0);
        let base = Operand::Disp(8, Reg::R1).indexed(Reg::R2).unwrap();
        asm.inst(Opcode::Movl, &[base, Operand::Reg(Reg::R0)])
            .unwrap();
        let img = asm.finish().unwrap();
        assert_eq!(img.bytes, vec![0xD0, 0x42, 0xA1, 0x08, 0x50]);
    }

    #[test]
    fn resolves_backward_branch() {
        let mut asm = Assembler::new(0x100);
        let top = asm.label_here();
        asm.inst(Opcode::Decl, &[Operand::Reg(Reg::R0)]).unwrap();
        asm.branch(Opcode::Bneq, &[], top).unwrap();
        let img = asm.finish().unwrap();
        // decl r0 (2 bytes), bneq -4: opcode at 0x102, disp byte at 0x103,
        // next = 0x104, target 0x100 => disp = -4.
        assert_eq!(img.bytes, vec![0xD7, 0x50, 0x12, 0xFC]);
    }

    #[test]
    fn resolves_forward_branch() {
        let mut asm = Assembler::new(0);
        let out = asm.new_label();
        asm.branch(Opcode::Brb, &[], out).unwrap();
        asm.inst(Opcode::Nop, &[]).unwrap();
        asm.place(out).unwrap();
        let img = asm.finish().unwrap();
        assert_eq!(img.bytes, vec![0x11, 0x01, 0x01]);
    }

    #[test]
    fn rejects_unresolved_label() {
        let mut asm = Assembler::new(0);
        let l = asm.new_label();
        asm.branch(Opcode::Brb, &[], l).unwrap();
        assert!(matches!(asm.finish(), Err(ArchError::UnresolvedLabel(_))));
    }

    #[test]
    fn rejects_byte_displacement_overflow() {
        let mut asm = Assembler::new(0);
        let far = asm.new_label();
        asm.branch(Opcode::Brb, &[], far).unwrap();
        for _ in 0..200 {
            asm.inst(Opcode::Nop, &[]).unwrap();
        }
        asm.place(far).unwrap();
        assert!(matches!(
            asm.finish(),
            Err(ArchError::DisplacementOverflow { .. })
        ));
    }

    #[test]
    fn far_conditional_reaches_distance() {
        let mut asm = Assembler::new(0);
        let far = asm.new_label();
        asm.cond_branch_far(Opcode::Beql, &[], far).unwrap();
        for _ in 0..500 {
            asm.inst(Opcode::Nop, &[]).unwrap();
        }
        asm.place(far).unwrap();
        let img = asm.finish().unwrap();
        // Reversed branch skips the BRW.
        assert_eq!(img.bytes[0], Opcode::Bneq.to_byte());
        assert_eq!(img.bytes[2], Opcode::Brw.to_byte());
    }

    #[test]
    fn case_table_entries_are_relative_to_table_base() {
        let mut asm = Assembler::new(0);
        let a = asm.new_label();
        let b = asm.new_label();
        asm.case(
            Opcode::Casel,
            &[
                Operand::Reg(Reg::R0),
                Operand::Literal(0),
                Operand::Literal(1),
            ],
            &[a, b],
        )
        .unwrap();
        asm.place(a).unwrap();
        asm.inst(Opcode::Nop, &[]).unwrap();
        asm.place(b).unwrap();
        let img = asm.finish().unwrap();
        // casel r0, #0, #1 => CF 50 00 01, table at offset 4 (VA 4).
        let t0 = u16::from_le_bytes([img.bytes[4], img.bytes[5]]);
        let t1 = u16::from_le_bytes([img.bytes[6], img.bytes[7]]);
        assert_eq!(t0, 4); // label a at VA 8, table base 4
        assert_eq!(t1, 5); // label b at VA 9
    }

    #[test]
    fn rejects_write_to_literal() {
        let mut asm = Assembler::new(0);
        let err = asm
            .inst(Opcode::Movl, &[Operand::Reg(Reg::R0), Operand::Literal(3)])
            .unwrap_err();
        assert!(matches!(err, ArchError::InvalidMode(_)));
    }

    #[test]
    fn rejects_wrong_operand_count() {
        let mut asm = Assembler::new(0);
        let err = asm
            .inst(Opcode::Movl, &[Operand::Reg(Reg::R0)])
            .unwrap_err();
        assert!(matches!(err, ArchError::OperandCount { .. }));
    }

    #[test]
    fn moval_pcrel_resolves() {
        let mut asm = Assembler::new(0x1000);
        let data = asm.new_label();
        asm.moval_pcrel(data, Operand::Reg(Reg::R5)).unwrap();
        asm.place(data).unwrap();
        asm.long(0xDEADBEEF);
        let img = asm.finish().unwrap();
        // moval L^disp(pc), r5 = DE EF <4 bytes disp> 55, 7 bytes total.
        let disp = i32::from_le_bytes(img.bytes[2..6].try_into().unwrap());
        // Field at 0x1002, next = 0x1006, target = 0x1007.
        assert_eq!(disp, 1);
        assert_eq!(img.bytes[6], 0x55);
    }
}
