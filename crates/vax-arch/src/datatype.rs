//! VAX operand data types.

use std::fmt;

/// Data type of an operand specifier, defined by the instruction that uses
/// the specifier (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 8-bit integer.
    Byte,
    /// 16-bit integer.
    Word,
    /// 32-bit integer (the natural VAX size).
    Long,
    /// 64-bit integer.
    Quad,
    /// 32-bit F_floating.
    FFloat,
    /// 64-bit D_floating.
    DFloat,
}

impl DataType {
    /// Size of the data type in bytes.
    #[inline]
    pub const fn size_bytes(self) -> u32 {
        match self {
            DataType::Byte => 1,
            DataType::Word => 2,
            DataType::Long | DataType::FFloat => 4,
            DataType::Quad | DataType::DFloat => 8,
        }
    }

    /// Number of aligned longword memory references needed to move a value
    /// of this type (the VAX data path is 32 bits wide, paper §3).
    #[inline]
    pub const fn longwords(self) -> u32 {
        let n = self.size_bytes().div_ceil(4);
        if n == 0 {
            1
        } else {
            n
        }
    }

    /// True for the floating-point types.
    #[inline]
    pub const fn is_float(self) -> bool {
        matches!(self, DataType::FFloat | DataType::DFloat)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Byte => "byte",
            DataType::Word => "word",
            DataType::Long => "longword",
            DataType::Quad => "quadword",
            DataType::FFloat => "f_floating",
            DataType::DFloat => "d_floating",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_architecture() {
        assert_eq!(DataType::Byte.size_bytes(), 1);
        assert_eq!(DataType::Word.size_bytes(), 2);
        assert_eq!(DataType::Long.size_bytes(), 4);
        assert_eq!(DataType::Quad.size_bytes(), 8);
        assert_eq!(DataType::FFloat.size_bytes(), 4);
        assert_eq!(DataType::DFloat.size_bytes(), 8);
    }

    #[test]
    fn longword_counts() {
        assert_eq!(DataType::Byte.longwords(), 1);
        assert_eq!(DataType::Long.longwords(), 1);
        assert_eq!(DataType::Quad.longwords(), 2);
        assert_eq!(DataType::DFloat.longwords(), 2);
    }
}
