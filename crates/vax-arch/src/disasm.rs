//! Disassembler: render decoded instructions in VAX MACRO-style syntax.
//!
//! Useful for inspecting generated workload code and debugging the CPU
//! model. The notation follows the VAX assembler conventions: `#n` for
//! literals and immediates, `@` for deferred modes, `(Rn)+`/`-(Rn)`
//! for autoincrement/autodecrement, `disp(Rn)` for displacements and
//! `base[Rx]` for index mode.

use crate::{AddrMode, ArchError, ByteSource, DecodedInst, DecodedSpec, Decoder};
use std::fmt::Write as _;

/// Render one decoded specifier.
pub fn format_spec(spec: &DecodedSpec) -> String {
    let base = match spec.mode {
        AddrMode::Literal(v) => format!("#{v}"),
        AddrMode::Register(r) => format!("{r}"),
        AddrMode::RegDeferred(r) => format!("({r})"),
        AddrMode::AutoDecrement(r) => format!("-({r})"),
        AddrMode::AutoIncrement(r) => format!("({r})+"),
        AddrMode::AutoIncDeferred(r) => format!("@({r})+"),
        AddrMode::Displacement { reg, disp, .. } => format!("{disp}({reg})"),
        AddrMode::DisplacementDeferred { reg, disp, .. } => format!("@{disp}({reg})"),
        AddrMode::Immediate { data, .. } => format!("#{data:#x}"),
        AddrMode::Absolute(addr) => format!("@#{addr:#010x}"),
    };
    match spec.index {
        Some(rx) => format!("{base}[{rx}]"),
        None => base,
    }
}

/// Render one decoded instruction. `pc` is the address of the opcode
/// byte; branch displacements render as resolved target addresses.
pub fn format_inst(inst: &DecodedInst, pc: u32) -> String {
    let mut out = String::new();
    let _ = write!(out, "{}", inst.opcode.mnemonic());
    let mut first = true;
    let sep = |out: &mut String, first: &mut bool| {
        let _ = write!(out, "{}", if *first { "\t" } else { ", " });
        *first = false;
    };
    for spec in &inst.specs {
        sep(&mut out, &mut first);
        let _ = write!(out, "{}", format_spec(spec));
    }
    if let Some(disp) = inst.branch_disp {
        sep(&mut out, &mut first);
        let target = pc.wrapping_add(inst.len).wrapping_add(disp as u32);
        let _ = write!(out, "{target:#010x}");
    }
    out
}

/// Disassemble a byte stream starting at virtual address `base`,
/// producing `(address, length, text)` triples until the stream ends or
/// an undecodable byte is reached (which yields a final `.byte` line).
pub fn disassemble(bytes: &[u8], base: u32) -> Vec<(u32, u32, String)> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let pc = base + pos as u32;
        let mut src = crate::SliceSource::new(&bytes[pos..]);
        match Decoder::decode(&mut src) {
            Ok(inst) => {
                let text = format_inst(&inst, pc);
                out.push((pc, inst.len, text));
                pos += inst.len as usize;
                // CASEx: skip its displacement table heuristically is not
                // possible without the limit operand's value; stop decoding
                // linearly after a case instruction.
                if inst.opcode.has_case_table() {
                    break;
                }
            }
            Err(ArchError::Truncated) => break,
            Err(_) => {
                out.push((pc, 1, format!(".byte {:#04x}", bytes[pos])));
                pos += 1;
            }
        }
    }
    out
}

/// A [`ByteSource`] wrapper that disassembles while decoding (streaming
/// use; most callers want [`disassemble`]).
pub fn decode_one<S: ByteSource>(src: &mut S, pc: u32) -> Result<String, ArchError> {
    let inst = Decoder::decode(src)?;
    Ok(format_inst(&inst, pc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Assembler, Opcode, Operand, Reg};

    fn asm_one(op: Opcode, operands: &[Operand]) -> String {
        let mut asm = Assembler::new(0x1000);
        asm.inst(op, operands).unwrap();
        let img = asm.finish().unwrap();
        let lines = disassemble(&img.bytes, img.base);
        assert_eq!(lines.len(), 1);
        lines[0].2.clone()
    }

    #[test]
    fn formats_common_modes() {
        assert_eq!(
            asm_one(Opcode::Movl, &[Operand::Literal(5), Operand::Reg(Reg::R0)]),
            "movl\t#5, R0"
        );
        assert_eq!(
            asm_one(
                Opcode::Addl2,
                &[Operand::Disp(-4, Reg::R11), Operand::RegDeferred(Reg::R6)]
            ),
            "addl2\t-4(R11), (R6)"
        );
        assert_eq!(
            asm_one(
                Opcode::Movl,
                &[
                    Operand::AutoIncrement(Reg::R6),
                    Operand::AutoDecrement(Reg::R7)
                ]
            ),
            "movl\t(R6)+, -(R7)"
        );
        assert_eq!(
            asm_one(
                Opcode::Movl,
                &[Operand::Absolute(0x8000_0010), Operand::Reg(Reg::R1)]
            ),
            "movl\t@#0x80000010, R1"
        );
    }

    #[test]
    fn formats_indexed_and_deferred() {
        let base = Operand::Disp(8, Reg::R1).indexed(Reg::R5).unwrap();
        assert_eq!(
            asm_one(Opcode::Movl, &[base, Operand::Reg(Reg::R0)]),
            "movl\t8(R1)[R5], R0"
        );
        assert_eq!(
            asm_one(
                Opcode::Movl,
                &[Operand::DispDeferred(12, Reg::R9), Operand::Reg(Reg::R0)]
            ),
            "movl\t@12(R9), R0"
        );
    }

    #[test]
    fn resolves_branch_targets() {
        let mut asm = Assembler::new(0x2000);
        let top = asm.label_here();
        asm.inst(Opcode::Decl, &[Operand::Reg(Reg::R0)]).unwrap();
        asm.branch(Opcode::Bneq, &[], top).unwrap();
        let img = asm.finish().unwrap();
        let lines = disassemble(&img.bytes, img.base);
        assert_eq!(lines[1].2, "bneq\t0x00002000");
    }

    #[test]
    fn undecodable_bytes_become_byte_directives() {
        let lines = disassemble(&[0xFF, 0x01], 0);
        assert_eq!(lines[0].2, ".byte 0xff");
        assert_eq!(lines[1].2, "nop");
    }

    #[test]
    fn disassembles_generated_programs() {
        // Every instruction the assembler can produce must disassemble.
        let mut asm = Assembler::new(0x400);
        asm.inst(
            Opcode::Movc3,
            &[
                Operand::Literal(16),
                Operand::Disp(0, Reg::R6),
                Operand::Disp(0, Reg::R7),
            ],
        )
        .unwrap();
        asm.inst(Opcode::Rsb, &[]).unwrap();
        let img = asm.finish().unwrap();
        let lines = disassemble(&img.bytes, img.base);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].2.starts_with("movc3"));
        assert_eq!(lines[1].2, "rsb");
    }
}
