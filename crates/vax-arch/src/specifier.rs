//! Operand specifier addressing modes: assembler-level operands, decoded
//! forms, and the Table 4 mode classification.

use crate::{ArchError, Reg};
use std::fmt;

/// Size of a displacement extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DispSize {
    /// 1-byte displacement (modes A/B).
    Byte,
    /// 2-byte displacement (modes C/D).
    Word,
    /// 4-byte displacement (modes E/F).
    Long,
}

impl DispSize {
    /// Extension size in bytes.
    #[inline]
    pub const fn bytes(self) -> u32 {
        match self {
            DispSize::Byte => 1,
            DispSize::Word => 2,
            DispSize::Long => 4,
        }
    }

    /// Smallest displacement size that can represent `disp`.
    pub fn fitting(disp: i32) -> DispSize {
        if i8::try_from(disp).is_ok() {
            DispSize::Byte
        } else if i16::try_from(disp).is_ok() {
            DispSize::Word
        } else {
            DispSize::Long
        }
    }
}

/// An assembler-level operand: what a programmer writes.
///
/// The variants map one-to-one onto VAX addressing-mode encodings; the
/// assembler chooses the displacement width automatically for the
/// `Disp`/`DispDeferred` variants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operand {
    /// Short literal, 0–63 (modes 0–3).
    Literal(u8),
    /// Register mode `Rn` (mode 5).
    Reg(Reg),
    /// Register deferred `(Rn)` (mode 6).
    RegDeferred(Reg),
    /// Autodecrement `-(Rn)` (mode 7).
    AutoDecrement(Reg),
    /// Autoincrement `(Rn)+` (mode 8).
    AutoIncrement(Reg),
    /// Autoincrement deferred `@(Rn)+` (mode 9).
    AutoIncDeferred(Reg),
    /// Displacement `disp(Rn)` (modes A/C/E; width chosen automatically).
    Disp(i32, Reg),
    /// Displacement deferred `@disp(Rn)` (modes B/D/F).
    DispDeferred(i32, Reg),
    /// Immediate `#value` — `(PC)+`, mode 8 with `Rn = PC`. The value is
    /// truncated to the instruction's operand data type when encoded.
    Immediate(u64),
    /// Absolute `@#address` — `@(PC)+`, mode 9 with `Rn = PC`.
    Absolute(u32),
    /// Indexed mode `base[Rx]` (mode 4 prefix). The base must itself be a
    /// memory-addressing operand (not register, literal or immediate).
    Indexed(Box<Operand>, Reg),
}

impl Operand {
    /// Wrap this operand in index mode `[rx]`.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidMode`] if the base cannot legally be
    /// indexed (register, literal, immediate or already-indexed modes).
    pub fn indexed(self, rx: Reg) -> Result<Operand, ArchError> {
        match self {
            Operand::Literal(_)
            | Operand::Reg(_)
            | Operand::Immediate(_)
            | Operand::Indexed(..) => Err(ArchError::InvalidMode(format!(
                "{self:?} cannot be used as an index base"
            ))),
            base => Ok(Operand::Indexed(Box::new(base), rx)),
        }
    }

    /// The Table 4 mode class of this operand (index wrapping is reported
    /// separately, as in the paper's bottom line).
    pub fn mode_class(&self) -> SpecModeClass {
        match self {
            Operand::Literal(_) => SpecModeClass::ShortLiteral,
            Operand::Reg(_) => SpecModeClass::Register,
            Operand::RegDeferred(_) => SpecModeClass::RegisterDeferred,
            Operand::AutoDecrement(_) => SpecModeClass::AutoDecrement,
            Operand::AutoIncrement(_) => SpecModeClass::AutoIncrement,
            Operand::AutoIncDeferred(_) => SpecModeClass::AutoIncDeferred,
            Operand::Disp(..) => SpecModeClass::Displacement,
            Operand::DispDeferred(..) => SpecModeClass::DisplacementDeferred,
            Operand::Immediate(_) => SpecModeClass::Immediate,
            Operand::Absolute(_) => SpecModeClass::Absolute,
            Operand::Indexed(base, _) => base.mode_class(),
        }
    }

    /// Is the operand wrapped in index mode?
    pub fn is_indexed(&self) -> bool {
        matches!(self, Operand::Indexed(..))
    }

    /// Does this operand name a memory location (as opposed to a register
    /// or literal/immediate value)?
    pub fn is_memory(&self) -> bool {
        !matches!(
            self,
            Operand::Literal(_) | Operand::Reg(_) | Operand::Immediate(_)
        )
    }
}

/// A decoded operand specifier, as produced by the instruction decoder.
///
/// This is the implementation-facing form: the I-Decode stage hands these
/// to the EBOX specifier microroutines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddrMode {
    /// Short literal with its 6-bit value.
    Literal(u8),
    /// Register mode.
    Register(Reg),
    /// Register deferred.
    RegDeferred(Reg),
    /// Autodecrement.
    AutoDecrement(Reg),
    /// Autoincrement.
    AutoIncrement(Reg),
    /// Autoincrement deferred.
    AutoIncDeferred(Reg),
    /// Displacement off a register; `reg` may be `PC` (PC-relative).
    Displacement {
        /// Width of the displacement extension.
        size: DispSize,
        /// Base register.
        reg: Reg,
        /// Sign-extended displacement.
        disp: i32,
    },
    /// Displacement deferred.
    DisplacementDeferred {
        /// Width of the displacement extension.
        size: DispSize,
        /// Base register.
        reg: Reg,
        /// Sign-extended displacement.
        disp: i32,
    },
    /// Immediate `(PC)+`; the raw little-endian data bytes follow.
    Immediate {
        /// Raw operand bytes (up to 8, per the operand data type).
        data: u64,
        /// Number of valid bytes in `data`.
        len: u8,
    },
    /// Absolute `@(PC)+`.
    Absolute(u32),
}

impl AddrMode {
    /// The Table 4 mode class of this decoded specifier.
    pub fn mode_class(&self) -> SpecModeClass {
        match self {
            AddrMode::Literal(_) => SpecModeClass::ShortLiteral,
            AddrMode::Register(_) => SpecModeClass::Register,
            AddrMode::RegDeferred(_) => SpecModeClass::RegisterDeferred,
            AddrMode::AutoDecrement(_) => SpecModeClass::AutoDecrement,
            AddrMode::AutoIncrement(_) => SpecModeClass::AutoIncrement,
            AddrMode::AutoIncDeferred(_) => SpecModeClass::AutoIncDeferred,
            AddrMode::Displacement { .. } => SpecModeClass::Displacement,
            AddrMode::DisplacementDeferred { .. } => SpecModeClass::DisplacementDeferred,
            AddrMode::Immediate { .. } => SpecModeClass::Immediate,
            AddrMode::Absolute(_) => SpecModeClass::Absolute,
        }
    }

    /// Does evaluating this specifier reference memory for the operand
    /// itself (deferred modes reference memory even for address operands)?
    pub fn is_memory(&self) -> bool {
        !matches!(
            self,
            AddrMode::Literal(_) | AddrMode::Register(_) | AddrMode::Immediate { .. }
        )
    }
}

/// The operand-specifier rows of the paper's Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpecModeClass {
    /// Register mode `Rn`.
    Register,
    /// Encoded short literal.
    ShortLiteral,
    /// Immediate `(PC)+`.
    Immediate,
    /// Displacement `disp(Rn)` (including PC-relative).
    Displacement,
    /// Register deferred `(Rn)`.
    RegisterDeferred,
    /// Displacement deferred `@disp(Rn)`.
    DisplacementDeferred,
    /// Autoincrement `(Rn)+`.
    AutoIncrement,
    /// Autodecrement `-(Rn)`.
    AutoDecrement,
    /// Autoincrement deferred `@(Rn)+`.
    AutoIncDeferred,
    /// Absolute `@#addr`.
    Absolute,
}

impl SpecModeClass {
    /// All classes in Table 4 row order.
    pub const ALL: [SpecModeClass; 10] = [
        SpecModeClass::Register,
        SpecModeClass::ShortLiteral,
        SpecModeClass::Immediate,
        SpecModeClass::Displacement,
        SpecModeClass::RegisterDeferred,
        SpecModeClass::DisplacementDeferred,
        SpecModeClass::AutoIncrement,
        SpecModeClass::AutoDecrement,
        SpecModeClass::AutoIncDeferred,
        SpecModeClass::Absolute,
    ];

    /// Row label as printed in Table 4.
    pub const fn name(self) -> &'static str {
        match self {
            SpecModeClass::Register => "Register",
            SpecModeClass::ShortLiteral => "Short literal",
            SpecModeClass::Immediate => "Immediate",
            SpecModeClass::Displacement => "Displacement",
            SpecModeClass::RegisterDeferred => "Register deferred",
            SpecModeClass::DisplacementDeferred => "Disp. deferred",
            SpecModeClass::AutoIncrement => "Autoincrement",
            SpecModeClass::AutoDecrement => "Autodecrement",
            SpecModeClass::AutoIncDeferred => "Autoinc. deferred",
            SpecModeClass::Absolute => "Absolute",
        }
    }

    /// Stable machine-readable key (kebab case), used by artifact codecs
    /// and the probe allowlist.
    pub const fn key(self) -> &'static str {
        match self {
            SpecModeClass::Register => "register",
            SpecModeClass::ShortLiteral => "short-literal",
            SpecModeClass::Immediate => "immediate",
            SpecModeClass::Displacement => "displacement",
            SpecModeClass::RegisterDeferred => "register-deferred",
            SpecModeClass::DisplacementDeferred => "displacement-deferred",
            SpecModeClass::AutoIncrement => "autoincrement",
            SpecModeClass::AutoDecrement => "autodecrement",
            SpecModeClass::AutoIncDeferred => "autoincrement-deferred",
            SpecModeClass::Absolute => "absolute",
        }
    }

    /// Look a class up by its [`key`](SpecModeClass::key).
    pub fn from_key(key: &str) -> Option<SpecModeClass> {
        SpecModeClass::ALL.iter().copied().find(|c| c.key() == key)
    }

    /// Stable index 0–9, in Table 4 row order.
    pub const fn index(self) -> usize {
        match self {
            SpecModeClass::Register => 0,
            SpecModeClass::ShortLiteral => 1,
            SpecModeClass::Immediate => 2,
            SpecModeClass::Displacement => 3,
            SpecModeClass::RegisterDeferred => 4,
            SpecModeClass::DisplacementDeferred => 5,
            SpecModeClass::AutoIncrement => 6,
            SpecModeClass::AutoDecrement => 7,
            SpecModeClass::AutoIncDeferred => 8,
            SpecModeClass::Absolute => 9,
        }
    }
}

impl fmt::Display for SpecModeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_class_indices_are_ordered() {
        for (i, c) in SpecModeClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn indexing_rules() {
        assert!(Operand::Literal(5).indexed(Reg::R2).is_err());
        assert!(Operand::Reg(Reg::R1).indexed(Reg::R2).is_err());
        assert!(Operand::Immediate(7).indexed(Reg::R2).is_err());
        let idx = Operand::RegDeferred(Reg::R1).indexed(Reg::R2).unwrap();
        assert!(idx.is_indexed());
        assert_eq!(idx.mode_class(), SpecModeClass::RegisterDeferred);
        assert!(idx.indexed(Reg::R3).is_err(), "no double indexing");
    }

    #[test]
    fn displacement_fitting() {
        assert_eq!(DispSize::fitting(0), DispSize::Byte);
        assert_eq!(DispSize::fitting(127), DispSize::Byte);
        assert_eq!(DispSize::fitting(-128), DispSize::Byte);
        assert_eq!(DispSize::fitting(128), DispSize::Word);
        assert_eq!(DispSize::fitting(-32768), DispSize::Word);
        assert_eq!(DispSize::fitting(40000), DispSize::Long);
    }

    #[test]
    fn memory_predicate() {
        assert!(!Operand::Reg(Reg::R0).is_memory());
        assert!(!Operand::Literal(1).is_memory());
        assert!(!Operand::Immediate(1).is_memory());
        assert!(Operand::Disp(4, Reg::R1).is_memory());
        assert!(Operand::Absolute(0x1000).is_memory());
    }
}
