//! Opcode groups (Table 1) and PC-changing classes (Table 2).

use std::fmt;

/// The seven opcode groups of the paper's Table 1.
///
/// Every implemented opcode belongs to exactly one group; Table 1 reports
/// the dynamic frequency of each group, and Tables 8/9 report per-group
/// execute-phase timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpcodeGroup {
    /// Moves, simple arithmetic, booleans, simple and loop branches,
    /// subroutine call and return.
    Simple,
    /// Bit field operations (including the bit branches).
    Field,
    /// Floating point and integer multiply/divide.
    Float,
    /// Procedure call and return, multi-register push and pop.
    CallRet,
    /// Privileged operations, context switch, system service requests,
    /// queue manipulation, protection probes.
    System,
    /// Character string instructions.
    Character,
    /// Decimal instructions.
    Decimal,
}

impl OpcodeGroup {
    /// All groups in the paper's Table 1 order.
    pub const ALL: [OpcodeGroup; 7] = [
        OpcodeGroup::Simple,
        OpcodeGroup::Field,
        OpcodeGroup::Float,
        OpcodeGroup::CallRet,
        OpcodeGroup::System,
        OpcodeGroup::Character,
        OpcodeGroup::Decimal,
    ];

    /// Group name as printed in Table 1.
    pub const fn name(self) -> &'static str {
        match self {
            OpcodeGroup::Simple => "SIMPLE",
            OpcodeGroup::Field => "FIELD",
            OpcodeGroup::Float => "FLOAT",
            OpcodeGroup::CallRet => "CALL/RET",
            OpcodeGroup::System => "SYSTEM",
            OpcodeGroup::Character => "CHARACTER",
            OpcodeGroup::Decimal => "DECIMAL",
        }
    }

    /// Stable index 0–6, in Table 1 order.
    pub const fn index(self) -> usize {
        match self {
            OpcodeGroup::Simple => 0,
            OpcodeGroup::Field => 1,
            OpcodeGroup::Float => 2,
            OpcodeGroup::CallRet => 3,
            OpcodeGroup::System => 4,
            OpcodeGroup::Character => 5,
            OpcodeGroup::Decimal => 6,
        }
    }
}

impl fmt::Display for OpcodeGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The PC-changing instruction classes of the paper's Table 2.
///
/// Instructions that may change the flow of control are classified into
/// these rows; Table 2 reports each class's dynamic frequency and the
/// proportion that actually branched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BranchClass {
    /// Simple conditional branches, plus `BRB`/`BRW` (grouped with them by
    /// microcode sharing in the 11/780).
    SimpleCond,
    /// Loop branches: `AOBxxx`, `SOBxxx`, `ACBx`.
    Loop,
    /// Low-bit tests: `BLBS`, `BLBC`.
    LowBitTest,
    /// Subroutine call and return: `BSBB`, `BSBW`, `JSB`, `RSB`.
    SubroutineCallRet,
    /// Unconditional `JMP`.
    Unconditional,
    /// Case branches: `CASEB/W/L`.
    Case,
    /// Bit branches (FIELD group): `BBS` … `BBCCI`.
    BitBranch,
    /// Procedure call and return: `CALLS`, `CALLG`, `RET`.
    ProcedureCallRet,
    /// System branches: `REI`, `CHMx`.
    SystemBranch,
}

impl BranchClass {
    /// All classes in Table 2 row order.
    pub const ALL: [BranchClass; 9] = [
        BranchClass::SimpleCond,
        BranchClass::Loop,
        BranchClass::LowBitTest,
        BranchClass::SubroutineCallRet,
        BranchClass::Unconditional,
        BranchClass::Case,
        BranchClass::BitBranch,
        BranchClass::ProcedureCallRet,
        BranchClass::SystemBranch,
    ];

    /// Row label as printed in Table 2.
    pub const fn name(self) -> &'static str {
        match self {
            BranchClass::SimpleCond => "Simple cond., plus BRB, BRW",
            BranchClass::Loop => "Loop branches",
            BranchClass::LowBitTest => "Low-bit tests",
            BranchClass::SubroutineCallRet => "Subroutine call and return",
            BranchClass::Unconditional => "Unconditional (JMP)",
            BranchClass::Case => "Case branch (CASEx)",
            BranchClass::BitBranch => "Bit branches",
            BranchClass::ProcedureCallRet => "Procedure call and return",
            BranchClass::SystemBranch => "System branches",
        }
    }

    /// Stable index 0–8, in Table 2 row order.
    pub const fn index(self) -> usize {
        match self {
            BranchClass::SimpleCond => 0,
            BranchClass::Loop => 1,
            BranchClass::LowBitTest => 2,
            BranchClass::SubroutineCallRet => 3,
            BranchClass::Unconditional => 4,
            BranchClass::Case => 5,
            BranchClass::BitBranch => 6,
            BranchClass::ProcedureCallRet => 7,
            BranchClass::SystemBranch => 8,
        }
    }

    /// Does every dynamic execution of this class change the PC?
    ///
    /// Table 2 shows 100 % for subroutine/procedure call-return, `JMP`,
    /// `CASEx` and system branches.
    pub const fn always_taken(self) -> bool {
        matches!(
            self,
            BranchClass::SubroutineCallRet
                | BranchClass::Unconditional
                | BranchClass::Case
                | BranchClass::ProcedureCallRet
                | BranchClass::SystemBranch
        )
    }
}

impl fmt::Display for BranchClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_indices_are_unique_and_ordered() {
        for (i, g) in OpcodeGroup::ALL.iter().enumerate() {
            assert_eq!(g.index(), i);
        }
    }

    #[test]
    fn branch_class_indices_are_unique_and_ordered() {
        for (i, c) in BranchClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn always_taken_matches_table2() {
        assert!(BranchClass::ProcedureCallRet.always_taken());
        assert!(BranchClass::Case.always_taken());
        assert!(!BranchClass::SimpleCond.always_taken());
        assert!(!BranchClass::Loop.always_taken());
        assert!(!BranchClass::BitBranch.always_taken());
    }
}
