//! Incremental instruction decoder.
//!
//! Decoding pulls bytes one at a time from a [`ByteSource`] so that the CPU
//! model can plug its instruction buffer in directly — each byte request
//! maps onto the I-Decode stage's consumption of IB bytes, which is where
//! IB stalls arise (paper §4.3).

use crate::{AddrMode, ArchError, DataType, DispSize, Opcode, Reg, SpecModeClass};

/// A source of instruction-stream bytes.
///
/// Implemented by [`SliceSource`] for offline decoding and by the CPU's
/// instruction buffer for live execution. Functions taking a source accept
/// `&mut S`; a `&mut` reference to a source is itself a source.
pub trait ByteSource {
    /// Consume and return the next byte.
    ///
    /// # Errors
    ///
    /// [`ArchError::Truncated`] if the stream is exhausted.
    fn next_u8(&mut self) -> Result<u8, ArchError>;

    /// Consume a little-endian word.
    ///
    /// # Errors
    ///
    /// [`ArchError::Truncated`] if the stream is exhausted.
    fn next_u16(&mut self) -> Result<u16, ArchError> {
        let lo = self.next_u8()?;
        let hi = self.next_u8()?;
        Ok(u16::from_le_bytes([lo, hi]))
    }

    /// Consume a little-endian longword.
    ///
    /// # Errors
    ///
    /// [`ArchError::Truncated`] if the stream is exhausted.
    fn next_u32(&mut self) -> Result<u32, ArchError> {
        let lo = self.next_u16()?;
        let hi = self.next_u16()?;
        Ok(u32::from(lo) | (u32::from(hi) << 16))
    }
}

impl<S: ByteSource + ?Sized> ByteSource for &mut S {
    fn next_u8(&mut self) -> Result<u8, ArchError> {
        (**self).next_u8()
    }
}

/// A [`ByteSource`] over a byte slice, tracking its position.
#[derive(Debug, Clone)]
pub struct SliceSource<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> SliceSource<'a> {
    /// A source reading from the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        SliceSource { bytes, pos: 0 }
    }

    /// Bytes consumed so far.
    pub fn pos(&self) -> usize {
        self.pos
    }
}

impl ByteSource for SliceSource<'_> {
    fn next_u8(&mut self) -> Result<u8, ArchError> {
        let b = *self.bytes.get(self.pos).ok_or(ArchError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }
}

/// A fully decoded operand specifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedSpec {
    /// The base addressing mode.
    pub mode: AddrMode,
    /// Index register if the specifier was prefixed with mode 4.
    pub index: Option<Reg>,
    /// Total bytes this specifier occupied in the instruction stream
    /// (mode byte(s) plus extensions).
    pub len: u8,
}

impl DecodedSpec {
    /// Table 4 mode class (index wrapping reported separately).
    pub fn mode_class(&self) -> SpecModeClass {
        self.mode.mode_class()
    }
}

/// Decode one operand specifier for an operand of type `dtype`.
///
/// # Errors
///
/// [`ArchError::Truncated`] if the source runs dry and
/// [`ArchError::InvalidMode`] for illegal encodings (index on index,
/// literal as index base).
pub fn decode_specifier<S: ByteSource>(
    src: &mut S,
    dtype: DataType,
) -> Result<DecodedSpec, ArchError> {
    let mode_byte = src.next_u8()?;
    let mut len = 1u8;
    let (mode_byte, index) = if mode_byte >> 4 == 4 {
        let rx = Reg::from_number(mode_byte & 0x0F);
        let base = src.next_u8()?;
        len += 1;
        if base >> 4 == 4 {
            return Err(ArchError::InvalidMode(
                "index base is itself indexed".into(),
            ));
        }
        (base, Some(rx))
    } else {
        (mode_byte, None)
    };

    let reg = Reg::from_number(mode_byte & 0x0F);
    let mode = match mode_byte >> 4 {
        0..=3 => {
            if index.is_some() {
                return Err(ArchError::InvalidMode("literal cannot be indexed".into()));
            }
            AddrMode::Literal(mode_byte & 0x3F)
        }
        5 => {
            if index.is_some() {
                return Err(ArchError::InvalidMode("register cannot be indexed".into()));
            }
            AddrMode::Register(reg)
        }
        6 => AddrMode::RegDeferred(reg),
        7 => AddrMode::AutoDecrement(reg),
        8 => {
            if reg.is_pc() {
                let n = dtype.size_bytes() as usize;
                let mut data = [0u8; 8];
                for slot in data.iter_mut().take(n) {
                    *slot = src.next_u8()?;
                }
                len += n as u8;
                AddrMode::Immediate {
                    data: u64::from_le_bytes(data),
                    len: n as u8,
                }
            } else {
                AddrMode::AutoIncrement(reg)
            }
        }
        9 => {
            if reg.is_pc() {
                let addr = src.next_u32()?;
                len += 4;
                AddrMode::Absolute(addr)
            } else {
                AddrMode::AutoIncDeferred(reg)
            }
        }
        0xA | 0xB => {
            let d = src.next_u8()? as i8 as i32;
            len += 1;
            disp_mode(mode_byte, DispSize::Byte, reg, d)
        }
        0xC | 0xD => {
            let d = src.next_u16()? as i16 as i32;
            len += 2;
            disp_mode(mode_byte, DispSize::Word, reg, d)
        }
        0xE | 0xF => {
            let d = src.next_u32()? as i32;
            len += 4;
            disp_mode(mode_byte, DispSize::Long, reg, d)
        }
        _ => unreachable!("mode 4 handled above"),
    };
    Ok(DecodedSpec { mode, index, len })
}

fn disp_mode(mode_byte: u8, size: DispSize, reg: Reg, disp: i32) -> AddrMode {
    if mode_byte >> 4 & 1 == 1 {
        AddrMode::DisplacementDeferred { size, reg, disp }
    } else {
        AddrMode::Displacement { size, reg, disp }
    }
}

/// A fully decoded instruction (offline form; the CPU decodes
/// incrementally instead).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedInst {
    /// The opcode.
    pub opcode: Opcode,
    /// Decoded operand specifiers, in order.
    pub specs: Vec<DecodedSpec>,
    /// Sign-extended branch displacement, if the opcode has one.
    pub branch_disp: Option<i32>,
    /// Total instruction length in bytes (excluding any case table).
    pub len: u32,
}

/// Offline instruction decoder.
///
/// # Example
///
/// ```
/// use vax_arch::{Decoder, Opcode, SliceSource};
///
/// # fn main() -> Result<(), vax_arch::ArchError> {
/// // movl #5, r0  =>  D0 05 50
/// let mut src = SliceSource::new(&[0xD0, 0x05, 0x50]);
/// let inst = Decoder::decode(&mut src)?;
/// assert_eq!(inst.opcode, Opcode::Movl);
/// assert_eq!(inst.len, 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Decoder;

impl Decoder {
    /// Decode one instruction from `src`.
    ///
    /// # Errors
    ///
    /// [`ArchError::UnknownOpcode`] for unimplemented opcode bytes,
    /// [`ArchError::Truncated`] if the source runs dry, and mode errors
    /// from specifier decoding.
    pub fn decode<S: ByteSource>(src: &mut S) -> Result<DecodedInst, ArchError> {
        let byte = src.next_u8()?;
        let opcode = Opcode::from_byte(byte).ok_or(ArchError::UnknownOpcode(byte))?;
        let mut len = 1u32;
        let mut specs = Vec::with_capacity(opcode.specifier_count());
        let mut branch_disp = None;
        for template in opcode.operands() {
            if template.is_branch_displacement() {
                let disp = match template.data_type() {
                    DataType::Byte => {
                        len += 1;
                        src.next_u8()? as i8 as i32
                    }
                    DataType::Word => {
                        len += 2;
                        src.next_u16()? as i16 as i32
                    }
                    other => unreachable!("displacement of type {other}"),
                };
                branch_disp = Some(disp);
            } else {
                let spec = decode_specifier(src, template.data_type())?;
                len += u32::from(spec.len);
                specs.push(spec);
            }
        }
        Ok(DecodedInst {
            opcode,
            specs,
            branch_disp,
            len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Assembler, Operand};

    fn roundtrip(op: Opcode, operands: &[Operand]) -> DecodedInst {
        let mut asm = Assembler::new(0);
        asm.inst(op, operands).unwrap();
        let img = asm.finish().unwrap();
        let mut src = SliceSource::new(&img.bytes);
        let inst = Decoder::decode(&mut src).unwrap();
        assert_eq!(inst.len as usize, img.bytes.len());
        inst
    }

    #[test]
    fn decodes_literal_and_register() {
        let inst = roundtrip(Opcode::Movl, &[Operand::Literal(42), Operand::Reg(Reg::R7)]);
        assert_eq!(inst.specs[0].mode, AddrMode::Literal(42));
        assert_eq!(inst.specs[1].mode, AddrMode::Register(Reg::R7));
    }

    #[test]
    fn decodes_displacements() {
        let inst = roundtrip(
            Opcode::Movl,
            &[Operand::Disp(-4, Reg::R1), Operand::Disp(1000, Reg::R2)],
        );
        assert_eq!(
            inst.specs[0].mode,
            AddrMode::Displacement {
                size: DispSize::Byte,
                reg: Reg::R1,
                disp: -4
            }
        );
        assert_eq!(
            inst.specs[1].mode,
            AddrMode::Displacement {
                size: DispSize::Word,
                reg: Reg::R2,
                disp: 1000
            }
        );
    }

    #[test]
    fn decodes_immediate_sized_by_operand() {
        let inst = roundtrip(
            Opcode::Movb,
            &[Operand::Immediate(0xAB), Operand::Reg(Reg::R0)],
        );
        assert_eq!(
            inst.specs[0].mode,
            AddrMode::Immediate { data: 0xAB, len: 1 }
        );
        let inst = roundtrip(
            Opcode::Movl,
            &[Operand::Immediate(0xDEADBEEF), Operand::Reg(Reg::R0)],
        );
        assert_eq!(
            inst.specs[0].mode,
            AddrMode::Immediate {
                data: 0xDEADBEEF,
                len: 4
            }
        );
    }

    #[test]
    fn decodes_indexed() {
        let base = Operand::Disp(8, Reg::R3).indexed(Reg::R4).unwrap();
        let inst = roundtrip(Opcode::Movl, &[base, Operand::Reg(Reg::R0)]);
        assert_eq!(inst.specs[0].index, Some(Reg::R4));
        assert!(matches!(
            inst.specs[0].mode,
            AddrMode::Displacement { reg: Reg::R3, .. }
        ));
    }

    #[test]
    fn decodes_absolute_and_autoinc_deferred() {
        let inst = roundtrip(
            Opcode::Movl,
            &[Operand::Absolute(0x8000_0400), Operand::Reg(Reg::R0)],
        );
        assert_eq!(inst.specs[0].mode, AddrMode::Absolute(0x8000_0400));
        let inst = roundtrip(
            Opcode::Movl,
            &[Operand::AutoIncDeferred(Reg::R9), Operand::Reg(Reg::R0)],
        );
        assert_eq!(inst.specs[0].mode, AddrMode::AutoIncDeferred(Reg::R9));
    }

    #[test]
    fn decodes_branch_displacement() {
        let mut asm = Assembler::new(0);
        let top = asm.label_here();
        asm.branch(Opcode::Sobgtr, &[Operand::Reg(Reg::R5)], top)
            .unwrap();
        let img = asm.finish().unwrap();
        let mut src = SliceSource::new(&img.bytes);
        let inst = Decoder::decode(&mut src).unwrap();
        assert_eq!(inst.opcode, Opcode::Sobgtr);
        assert_eq!(inst.branch_disp, Some(-3));
    }

    #[test]
    fn rejects_unknown_opcode() {
        // 0xFF is an extended-opcode escape we do not implement.
        let mut src = SliceSource::new(&[0xFF]);
        assert!(matches!(
            Decoder::decode(&mut src),
            Err(ArchError::UnknownOpcode(0xFF))
        ));
    }

    #[test]
    fn reports_truncation() {
        let mut src = SliceSource::new(&[0xD0, 0x05]);
        assert!(matches!(
            Decoder::decode(&mut src),
            Err(ArchError::Truncated)
        ));
    }

    #[test]
    fn rejects_indexed_literal() {
        // 0x42 index prefix, then literal base 0x05.
        let mut src = SliceSource::new(&[0xD0, 0x42, 0x05, 0x50]);
        assert!(matches!(
            Decoder::decode(&mut src),
            Err(ArchError::InvalidMode(_))
        ));
    }
}
