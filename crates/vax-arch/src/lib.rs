//! VAX instruction-set substrate for the VAX-11/780 characterization
//! reproduction.
//!
//! This crate models the *architectural* layer of the study: the VAX
//! instruction set as seen by the 11/780 implementation — opcodes and their
//! operand templates, the seven opcode groups of the paper's Table 1, the
//! PC-changing classes of Table 2, operand specifier addressing modes
//! (Table 4), plus an assembler and an incremental decoder.
//!
//! The crate is deliberately free of any timing or implementation detail;
//! those live in `vax-mem`, `vax-ucode` and `vax-cpu`.
//!
//! # Example
//!
//! ```
//! use vax_arch::{Assembler, Opcode, Operand, Reg};
//!
//! # fn main() -> Result<(), vax_arch::ArchError> {
//! let mut asm = Assembler::new(0x200);
//! asm.inst(Opcode::Movl, &[Operand::Literal(5), Operand::Reg(Reg::R0)])?;
//! asm.inst(Opcode::Addl2, &[Operand::Reg(Reg::R0), Operand::Reg(Reg::R1)])?;
//! let image = asm.finish()?;
//! assert_eq!(image.bytes[0], Opcode::Movl.to_byte());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;
mod asm;
mod datatype;
mod decode;
pub mod disasm;
mod error;
mod group;
mod opcode;
mod reg;
pub mod sdecode;
mod specifier;

pub use access::AccessType;
pub use asm::{Assembler, CodeImage, Label};
pub use datatype::DataType;
pub use decode::{ByteSource, DecodedInst, DecodedSpec, Decoder, SliceSource};
pub use error::ArchError;
pub use group::{BranchClass, OpcodeGroup};
pub use opcode::{Opcode, OperandTemplate};
pub use reg::Reg;
pub use specifier::{AddrMode, DispSize, Operand, SpecModeClass};
