//! General-purpose register names.

use std::fmt;

/// One of the sixteen VAX general registers.
///
/// `R12`–`R15` have architectural roles and are named accordingly: `AP`
/// (argument pointer), `FP` (frame pointer), `SP` (stack pointer) and `PC`
/// (program counter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum Reg {
    R0 = 0,
    R1 = 1,
    R2 = 2,
    R3 = 3,
    R4 = 4,
    R5 = 5,
    R6 = 6,
    R7 = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    /// Argument pointer (R12).
    Ap = 12,
    /// Frame pointer (R13).
    Fp = 13,
    /// Stack pointer (R14).
    Sp = 14,
    /// Program counter (R15).
    Pc = 15,
}

impl Reg {
    /// All sixteen registers in numeric order.
    pub const ALL: [Reg; 16] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::Ap,
        Reg::Fp,
        Reg::Sp,
        Reg::Pc,
    ];

    /// Register number, 0–15.
    #[inline]
    pub const fn number(self) -> u8 {
        self as u8
    }

    /// Register for a number 0–15.
    ///
    /// # Panics
    ///
    /// Panics if `n > 15`.
    #[inline]
    pub const fn from_number(n: u8) -> Reg {
        assert!(n < 16, "register number out of range");
        Reg::ALL[n as usize]
    }

    /// True for `PC`.
    #[inline]
    pub const fn is_pc(self) -> bool {
        matches!(self, Reg::Pc)
    }

    /// True for `SP`.
    #[inline]
    pub const fn is_sp(self) -> bool {
        matches!(self, Reg::Sp)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::Ap => write!(f, "AP"),
            Reg::Fp => write!(f, "FP"),
            Reg::Sp => write!(f, "SP"),
            Reg::Pc => write!(f, "PC"),
            other => write!(f, "R{}", other.number()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_numbers() {
        for n in 0..16u8 {
            assert_eq!(Reg::from_number(n).number(), n);
        }
    }

    #[test]
    fn names_special_registers() {
        assert_eq!(Reg::Ap.to_string(), "AP");
        assert_eq!(Reg::Fp.to_string(), "FP");
        assert_eq!(Reg::Sp.to_string(), "SP");
        assert_eq!(Reg::Pc.to_string(), "PC");
        assert_eq!(Reg::R7.to_string(), "R7");
    }

    #[test]
    #[should_panic(expected = "register number out of range")]
    fn rejects_out_of_range() {
        let _ = Reg::from_number(16);
    }
}
