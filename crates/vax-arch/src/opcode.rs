//! The VAX opcode table: byte values, operand templates, groups and
//! branch classes.
//!
//! This models the single-byte opcode space of the VAX subset exercised by
//! the characterization workloads — every group of the paper's Table 1 is
//! populated, including the rare CHARACTER and DECIMAL groups that turn out
//! to matter for Table 9.

use crate::{AccessType, BranchClass, DataType, OpcodeGroup};
use std::fmt;

/// Template for one operand of an instruction: how it is accessed and with
/// what data type (paper §3.2: "the data type and access mode of an operand
/// specifier are defined by the instruction that uses it").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OperandTemplate {
    access: AccessType,
    dtype: DataType,
}

impl OperandTemplate {
    /// A template with the given access type and data type.
    pub const fn new(access: AccessType, dtype: DataType) -> Self {
        OperandTemplate { access, dtype }
    }

    /// How the operand is accessed.
    #[inline]
    pub const fn access(self) -> AccessType {
        self.access
    }

    /// The operand's data type.
    #[inline]
    pub const fn data_type(self) -> DataType {
        self.dtype
    }

    /// Is this a branch displacement rather than a true specifier?
    #[inline]
    pub const fn is_branch_displacement(self) -> bool {
        matches!(self.access, AccessType::Branch)
    }
}

impl fmt::Display for OperandTemplate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.access, self.dtype)
    }
}

macro_rules! t {
    (rb) => {
        OperandTemplate::new(AccessType::Read, DataType::Byte)
    };
    (rw) => {
        OperandTemplate::new(AccessType::Read, DataType::Word)
    };
    (rl) => {
        OperandTemplate::new(AccessType::Read, DataType::Long)
    };
    (rq) => {
        OperandTemplate::new(AccessType::Read, DataType::Quad)
    };
    (rf) => {
        OperandTemplate::new(AccessType::Read, DataType::FFloat)
    };
    (rd) => {
        OperandTemplate::new(AccessType::Read, DataType::DFloat)
    };
    (wb) => {
        OperandTemplate::new(AccessType::Write, DataType::Byte)
    };
    (ww) => {
        OperandTemplate::new(AccessType::Write, DataType::Word)
    };
    (wl) => {
        OperandTemplate::new(AccessType::Write, DataType::Long)
    };
    (wq) => {
        OperandTemplate::new(AccessType::Write, DataType::Quad)
    };
    (wf) => {
        OperandTemplate::new(AccessType::Write, DataType::FFloat)
    };
    (wd) => {
        OperandTemplate::new(AccessType::Write, DataType::DFloat)
    };
    (mb) => {
        OperandTemplate::new(AccessType::Modify, DataType::Byte)
    };
    (mw) => {
        OperandTemplate::new(AccessType::Modify, DataType::Word)
    };
    (ml) => {
        OperandTemplate::new(AccessType::Modify, DataType::Long)
    };
    (mf) => {
        OperandTemplate::new(AccessType::Modify, DataType::FFloat)
    };
    (md) => {
        OperandTemplate::new(AccessType::Modify, DataType::DFloat)
    };
    (ab) => {
        OperandTemplate::new(AccessType::Address, DataType::Byte)
    };
    (aw) => {
        OperandTemplate::new(AccessType::Address, DataType::Word)
    };
    (al) => {
        OperandTemplate::new(AccessType::Address, DataType::Long)
    };
    (aq) => {
        OperandTemplate::new(AccessType::Address, DataType::Quad)
    };
    (vb) => {
        OperandTemplate::new(AccessType::Field, DataType::Byte)
    };
    (bb) => {
        OperandTemplate::new(AccessType::Branch, DataType::Byte)
    };
    (bw) => {
        OperandTemplate::new(AccessType::Branch, DataType::Word)
    };
}

macro_rules! opcodes {
    (
        $(
            $variant:ident = $byte:literal, $mnem:literal, $group:ident,
            [ $($opnd:ident)* ]
            $(, branch($bc:ident))?
            $(, case($case:tt))?
            ;
        )*
    ) => {
        /// A VAX opcode implemented by this model.
        ///
        /// The discriminant of each variant is its architectural opcode
        /// byte, so [`Opcode::to_byte`] is a plain cast.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        #[repr(u8)]
        #[allow(missing_docs)]
        pub enum Opcode {
            $( $variant = $byte, )*
        }

        impl Opcode {
            /// Every implemented opcode, in opcode-byte order of definition.
            pub const ALL: &'static [Opcode] = &[ $( Opcode::$variant, )* ];

            /// The architectural opcode byte.
            #[inline]
            pub const fn to_byte(self) -> u8 {
                self as u8
            }

            /// Look up an opcode byte; `None` for bytes this model does not
            /// implement.
            pub const fn from_byte(b: u8) -> Option<Opcode> {
                match b {
                    $( $byte => Some(Opcode::$variant), )*
                    _ => None,
                }
            }

            /// Assembler mnemonic (lower case).
            pub const fn mnemonic(self) -> &'static str {
                match self {
                    $( Opcode::$variant => $mnem, )*
                }
            }

            /// The paper's Table 1 group this opcode belongs to.
            pub const fn group(self) -> OpcodeGroup {
                match self {
                    $( Opcode::$variant => OpcodeGroup::$group, )*
                }
            }

            /// Operand templates in specifier order (branch displacements
            /// included, always last).
            pub fn operands(self) -> &'static [OperandTemplate] {
                match self {
                    $( Opcode::$variant => {
                        const T: &[OperandTemplate] = &[ $( t!($opnd), )* ];
                        T
                    } )*
                }
            }

            /// Table 2 PC-changing class, if this opcode can change the PC.
            pub const fn branch_class(self) -> Option<BranchClass> {
                match self {
                    $( $( Opcode::$variant => Some(BranchClass::$bc), )? )*
                    #[allow(unreachable_patterns)]
                    _ => None,
                }
            }

            /// Is this a `CASEx` instruction (word displacement table
            /// follows the operand specifiers)?
            pub const fn has_case_table(self) -> bool {
                match self {
                    $( $( Opcode::$variant => { let _ = $case; true }, )? )*
                    #[allow(unreachable_patterns)]
                    _ => false,
                }
            }
        }
    };
}

opcodes! {
    // ----- SYSTEM group: privileged, context switch, system services,
    //       queues, probes -------------------------------------------------
    Halt   = 0x00, "halt",   System, [];
    Nop    = 0x01, "nop",    System, [];
    Rei    = 0x02, "rei",    System, [], branch(SystemBranch);
    Bpt    = 0x03, "bpt",    System, [], branch(SystemBranch);
    Ldpctx = 0x06, "ldpctx", System, [];
    Svpctx = 0x07, "svpctx", System, [];
    Prober = 0x0C, "prober", System, [rb rw ab];
    Probew = 0x0D, "probew", System, [rb rw ab];
    Insque = 0x0E, "insque", System, [ab ab];
    Remque = 0x0F, "remque", System, [ab wl];
    Chmk   = 0xBC, "chmk",   System, [rw], branch(SystemBranch);
    Chme   = 0xBD, "chme",   System, [rw], branch(SystemBranch);
    Chms   = 0xBE, "chms",   System, [rw], branch(SystemBranch);
    Chmu   = 0xBF, "chmu",   System, [rw], branch(SystemBranch);
    Mtpr   = 0xDA, "mtpr",   System, [rl rl];
    Mfpr   = 0xDB, "mfpr",   System, [rl wl];

    // ----- CALL/RET group --------------------------------------------------
    Ret    = 0x04, "ret",    CallRet, [], branch(ProcedureCallRet);
    Callg  = 0xFA, "callg",  CallRet, [ab ab], branch(ProcedureCallRet);
    Calls  = 0xFB, "calls",  CallRet, [rl ab], branch(ProcedureCallRet);
    Popr   = 0xBA, "popr",   CallRet, [rw];
    Pushr  = 0xBB, "pushr",  CallRet, [rw];

    // ----- SIMPLE group: subroutine linkage and control flow ---------------
    Rsb    = 0x05, "rsb",    Simple, [], branch(SubroutineCallRet);
    Bsbb   = 0x10, "bsbb",   Simple, [bb], branch(SubroutineCallRet);
    Brb    = 0x11, "brb",    Simple, [bb], branch(SimpleCond);
    Bneq   = 0x12, "bneq",   Simple, [bb], branch(SimpleCond);
    Beql   = 0x13, "beql",   Simple, [bb], branch(SimpleCond);
    Bgtr   = 0x14, "bgtr",   Simple, [bb], branch(SimpleCond);
    Bleq   = 0x15, "bleq",   Simple, [bb], branch(SimpleCond);
    Jsb    = 0x16, "jsb",    Simple, [ab], branch(SubroutineCallRet);
    Jmp    = 0x17, "jmp",    Simple, [ab], branch(Unconditional);
    Bgeq   = 0x18, "bgeq",   Simple, [bb], branch(SimpleCond);
    Blss   = 0x19, "blss",   Simple, [bb], branch(SimpleCond);
    Bgtru  = 0x1A, "bgtru",  Simple, [bb], branch(SimpleCond);
    Blequ  = 0x1B, "blequ",  Simple, [bb], branch(SimpleCond);
    Bvc    = 0x1C, "bvc",    Simple, [bb], branch(SimpleCond);
    Bvs    = 0x1D, "bvs",    Simple, [bb], branch(SimpleCond);
    Bcc    = 0x1E, "bcc",    Simple, [bb], branch(SimpleCond);
    Bcs    = 0x1F, "bcs",    Simple, [bb], branch(SimpleCond);
    Bsbw   = 0x30, "bsbw",   Simple, [bw], branch(SubroutineCallRet);
    Brw    = 0x31, "brw",    Simple, [bw], branch(SimpleCond);

    // ----- CHARACTER group -------------------------------------------------
    Movc3  = 0x28, "movc3",  Character, [rw ab ab];
    Cmpc3  = 0x29, "cmpc3",  Character, [rw ab ab];
    Scanc  = 0x2A, "scanc",  Character, [rw ab ab rb];
    Spanc  = 0x2B, "spanc",  Character, [rw ab ab rb];
    Movc5  = 0x2C, "movc5",  Character, [rw ab rb rw ab];
    Cmpc5  = 0x2D, "cmpc5",  Character, [rw ab rb rw ab];
    Locc   = 0x3A, "locc",   Character, [rb rw ab];
    Skpc   = 0x3B, "skpc",   Character, [rb rw ab];

    // ----- DECIMAL group ---------------------------------------------------
    Addp4  = 0x20, "addp4",  Decimal, [rw ab rw ab];
    Addp6  = 0x21, "addp6",  Decimal, [rw ab rw ab rw ab];
    Subp4  = 0x22, "subp4",  Decimal, [rw ab rw ab];
    Subp6  = 0x23, "subp6",  Decimal, [rw ab rw ab rw ab];
    Mulp   = 0x25, "mulp",   Decimal, [rw ab rw ab rw ab];
    Divp   = 0x27, "divp",   Decimal, [rw ab rw ab rw ab];
    Movp   = 0x34, "movp",   Decimal, [rw ab ab];
    Cmpp3  = 0x35, "cmpp3",  Decimal, [rw ab ab];
    Cvtpl  = 0x36, "cvtpl",  Decimal, [rw ab wl];
    Cmpp4  = 0x37, "cmpp4",  Decimal, [rw ab rw ab];
    Ashp   = 0xF8, "ashp",   Decimal, [rb rw ab rb rw ab];
    Cvtlp  = 0xF9, "cvtlp",  Decimal, [rl rw ab];

    // ----- FLOAT group: F_floating, D_floating, integer multiply/divide ----
    Addf2  = 0x40, "addf2",  Float, [rf mf];
    Addf3  = 0x41, "addf3",  Float, [rf rf wf];
    Subf2  = 0x42, "subf2",  Float, [rf mf];
    Subf3  = 0x43, "subf3",  Float, [rf rf wf];
    Mulf2  = 0x44, "mulf2",  Float, [rf mf];
    Mulf3  = 0x45, "mulf3",  Float, [rf rf wf];
    Divf2  = 0x46, "divf2",  Float, [rf mf];
    Divf3  = 0x47, "divf3",  Float, [rf rf wf];
    Cvtfb  = 0x48, "cvtfb",  Float, [rf wb];
    Cvtfw  = 0x49, "cvtfw",  Float, [rf ww];
    Cvtfl  = 0x4A, "cvtfl",  Float, [rf wl];
    Cvtbf  = 0x4C, "cvtbf",  Float, [rb wf];
    Cvtwf  = 0x4D, "cvtwf",  Float, [rw wf];
    Cvtlf  = 0x4E, "cvtlf",  Float, [rl wf];
    Movf   = 0x50, "movf",   Float, [rf wf];
    Cmpf   = 0x51, "cmpf",   Float, [rf rf];
    Mnegf  = 0x52, "mnegf",  Float, [rf wf];
    Tstf   = 0x53, "tstf",   Float, [rf];
    Addd2  = 0x60, "addd2",  Float, [rd md];
    Addd3  = 0x61, "addd3",  Float, [rd rd wd];
    Subd2  = 0x62, "subd2",  Float, [rd md];
    Subd3  = 0x63, "subd3",  Float, [rd rd wd];
    Muld2  = 0x64, "muld2",  Float, [rd md];
    Muld3  = 0x65, "muld3",  Float, [rd rd wd];
    Divd2  = 0x66, "divd2",  Float, [rd md];
    Divd3  = 0x67, "divd3",  Float, [rd rd wd];
    Movd   = 0x70, "movd",   Float, [rd wd];
    Cmpd   = 0x71, "cmpd",   Float, [rd rd];
    Tstd   = 0x73, "tstd",   Float, [rd];
    Cvtld  = 0x6E, "cvtld",  Float, [rl wd];
    Cvtdl  = 0x6A, "cvtdl",  Float, [rd wl];
    Emul   = 0x7A, "emul",   Float, [rl rl rl wq];
    Ediv   = 0x7B, "ediv",   Float, [rl rq wl wl];
    Mull2  = 0xC4, "mull2",  Float, [rl ml];
    Mull3  = 0xC5, "mull3",  Float, [rl rl wl];
    Divl2  = 0xC6, "divl2",  Float, [rl ml];
    Divl3  = 0xC7, "divl3",  Float, [rl rl wl];

    // ----- SIMPLE group: moves, arithmetic, booleans, shifts ---------------
    Ashl   = 0x78, "ashl",   Simple, [rb rl wl];
    Ashq   = 0x79, "ashq",   Simple, [rb rq wq];
    Clrq   = 0x7C, "clrq",   Simple, [wq];
    Movq   = 0x7D, "movq",   Simple, [rq wq];
    Addb2  = 0x80, "addb2",  Simple, [rb mb];
    Addb3  = 0x81, "addb3",  Simple, [rb rb wb];
    Subb2  = 0x82, "subb2",  Simple, [rb mb];
    Subb3  = 0x83, "subb3",  Simple, [rb rb wb];
    Bisb2  = 0x88, "bisb2",  Simple, [rb mb];
    Bisb3  = 0x89, "bisb3",  Simple, [rb rb wb];
    Bicb2  = 0x8A, "bicb2",  Simple, [rb mb];
    Bicb3  = 0x8B, "bicb3",  Simple, [rb rb wb];
    Xorb2  = 0x8C, "xorb2",  Simple, [rb mb];
    Mnegb  = 0x8E, "mnegb",  Simple, [rb wb];
    Caseb  = 0x8F, "caseb",  Simple, [rb rb rb], branch(Case), case(true);
    Movb   = 0x90, "movb",   Simple, [rb wb];
    Cmpb   = 0x91, "cmpb",   Simple, [rb rb];
    Mcomb  = 0x92, "mcomb",  Simple, [rb wb];
    Bitb   = 0x93, "bitb",   Simple, [rb rb];
    Clrb   = 0x94, "clrb",   Simple, [wb];
    Tstb   = 0x95, "tstb",   Simple, [rb];
    Incb   = 0x96, "incb",   Simple, [mb];
    Decb   = 0x97, "decb",   Simple, [mb];
    Cvtbl  = 0x98, "cvtbl",  Simple, [rb wl];
    Cvtbw  = 0x99, "cvtbw",  Simple, [rb ww];
    Movzbl = 0x9A, "movzbl", Simple, [rb wl];
    Movzbw = 0x9B, "movzbw", Simple, [rb ww];
    Rotl   = 0x9C, "rotl",   Simple, [rb rl wl];
    Movaw  = 0x3E, "movaw",  Simple, [aw wl];
    Addw2  = 0xA0, "addw2",  Simple, [rw mw];
    Addw3  = 0xA1, "addw3",  Simple, [rw rw ww];
    Subw2  = 0xA2, "subw2",  Simple, [rw mw];
    Subw3  = 0xA3, "subw3",  Simple, [rw rw ww];
    Bisw2  = 0xA8, "bisw2",  Simple, [rw mw];
    Bicw2  = 0xAA, "bicw2",  Simple, [rw mw];
    Casew  = 0xAF, "casew",  Simple, [rw rw rw], branch(Case), case(true);
    Movw   = 0xB0, "movw",   Simple, [rw ww];
    Cmpw   = 0xB1, "cmpw",   Simple, [rw rw];
    Bitw   = 0xB3, "bitw",   Simple, [rw rw];
    Clrw   = 0xB4, "clrw",   Simple, [ww];
    Tstw   = 0xB5, "tstw",   Simple, [rw];
    Incw   = 0xB6, "incw",   Simple, [mw];
    Decw   = 0xB7, "decw",   Simple, [mw];
    Cvtwl  = 0x32, "cvtwl",  Simple, [rw wl];
    Cvtwb  = 0x33, "cvtwb",  Simple, [rw wb];
    Movzwl = 0x3C, "movzwl", Simple, [rw wl];
    Acbw   = 0x3D, "acbw",   Simple, [rw rw mw bw], branch(Loop);
    Addl2  = 0xC0, "addl2",  Simple, [rl ml];
    Addl3  = 0xC1, "addl3",  Simple, [rl rl wl];
    Subl2  = 0xC2, "subl2",  Simple, [rl ml];
    Subl3  = 0xC3, "subl3",  Simple, [rl rl wl];
    Bisl2  = 0xC8, "bisl2",  Simple, [rl ml];
    Bisl3  = 0xC9, "bisl3",  Simple, [rl rl wl];
    Bicl2  = 0xCA, "bicl2",  Simple, [rl ml];
    Bicl3  = 0xCB, "bicl3",  Simple, [rl rl wl];
    Xorl2  = 0xCC, "xorl2",  Simple, [rl ml];
    Xorl3  = 0xCD, "xorl3",  Simple, [rl rl wl];
    Mnegl  = 0xCE, "mnegl",  Simple, [rl wl];
    Casel  = 0xCF, "casel",  Simple, [rl rl rl], branch(Case), case(true);
    Movl   = 0xD0, "movl",   Simple, [rl wl];
    Cmpl   = 0xD1, "cmpl",   Simple, [rl rl];
    Mcoml  = 0xD2, "mcoml",  Simple, [rl wl];
    Bitl   = 0xD3, "bitl",   Simple, [rl rl];
    Clrl   = 0xD4, "clrl",   Simple, [wl];
    Tstl   = 0xD5, "tstl",   Simple, [rl];
    Incl   = 0xD6, "incl",   Simple, [ml];
    Decl   = 0xD7, "decl",   Simple, [ml];
    Adwc   = 0xD8, "adwc",   Simple, [rl ml];
    Sbwc   = 0xD9, "sbwc",   Simple, [rl ml];
    Movpsl = 0xDC, "movpsl", Simple, [wl];
    Pushl  = 0xDD, "pushl",  Simple, [rl];
    Moval  = 0xDE, "moval",  Simple, [al wl];
    Pushal = 0xDF, "pushal", Simple, [al];
    Cvtlb  = 0xF6, "cvtlb",  Simple, [rl wb];
    Cvtlw  = 0xF7, "cvtlw",  Simple, [rl ww];
    Acbl   = 0xF1, "acbl",   Simple, [rl rl ml bw], branch(Loop);
    Aoblss = 0xF2, "aoblss", Simple, [rl ml bb], branch(Loop);
    Aobleq = 0xF3, "aobleq", Simple, [rl ml bb], branch(Loop);
    Sobgeq = 0xF4, "sobgeq", Simple, [ml bb], branch(Loop);
    Sobgtr = 0xF5, "sobgtr", Simple, [ml bb], branch(Loop);
    Blbs   = 0xE8, "blbs",   Simple, [rl bb], branch(LowBitTest);
    Blbc   = 0xE9, "blbc",   Simple, [rl bb], branch(LowBitTest);

    // ----- FIELD group: bit fields and bit branches -------------------------
    Bbs    = 0xE0, "bbs",    Field, [rl vb bb], branch(BitBranch);
    Bbc    = 0xE1, "bbc",    Field, [rl vb bb], branch(BitBranch);
    Bbss   = 0xE2, "bbss",   Field, [rl vb bb], branch(BitBranch);
    Bbcs   = 0xE3, "bbcs",   Field, [rl vb bb], branch(BitBranch);
    Bbsc   = 0xE4, "bbsc",   Field, [rl vb bb], branch(BitBranch);
    Bbcc   = 0xE5, "bbcc",   Field, [rl vb bb], branch(BitBranch);
    Bbssi  = 0xE6, "bbssi",  Field, [rl vb bb], branch(BitBranch);
    Bbcci  = 0xE7, "bbcci",  Field, [rl vb bb], branch(BitBranch);
    Ffs    = 0xEA, "ffs",    Field, [rl rb vb wl];
    Ffc    = 0xEB, "ffc",    Field, [rl rb vb wl];
    Cmpv   = 0xEC, "cmpv",   Field, [rl rb vb rl];
    Cmpzv  = 0xED, "cmpzv",  Field, [rl rb vb rl];
    Extv   = 0xEE, "extv",   Field, [rl rb vb wl];
    Extzv  = 0xEF, "extzv",  Field, [rl rb vb wl];
    Insv   = 0xF0, "insv",   Field, [rl rl rb vb];
}

impl Opcode {
    /// Number of true operand specifiers (excluding branch displacements).
    pub fn specifier_count(self) -> usize {
        self.operands()
            .iter()
            .filter(|t| !t.is_branch_displacement())
            .count()
    }

    /// The branch displacement template, if the instruction ends with one.
    pub fn branch_displacement(self) -> Option<OperandTemplate> {
        self.operands()
            .iter()
            .copied()
            .find(|t| t.is_branch_displacement())
    }

    /// Does this opcode potentially change the PC (Table 2)?
    #[inline]
    pub fn is_pc_changing(self) -> bool {
        self.branch_class().is_some()
    }

    /// Look an opcode up by its assembler mnemonic.
    pub fn from_mnemonic(mnemonic: &str) -> Option<Opcode> {
        Opcode::ALL
            .iter()
            .copied()
            .find(|o| o.mnemonic() == mnemonic)
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_bytes_round_trip() {
        for &op in Opcode::ALL {
            assert_eq!(Opcode::from_byte(op.to_byte()), Some(op), "{op}");
        }
    }

    #[test]
    fn opcode_bytes_are_unique() {
        let mut seen = [false; 256];
        for &op in Opcode::ALL {
            let b = op.to_byte() as usize;
            assert!(!seen[b], "duplicate opcode byte {b:#04x}");
            seen[b] = true;
        }
    }

    #[test]
    fn every_group_is_populated() {
        for group in OpcodeGroup::ALL {
            assert!(
                Opcode::ALL.iter().any(|o| o.group() == group),
                "group {group} has no opcodes"
            );
        }
    }

    #[test]
    fn every_branch_class_is_populated() {
        for class in BranchClass::ALL {
            assert!(
                Opcode::ALL.iter().any(|o| o.branch_class() == Some(class)),
                "branch class {class} has no opcodes"
            );
        }
    }

    #[test]
    fn operand_templates_match_architecture() {
        assert_eq!(Opcode::Movl.specifier_count(), 2);
        assert_eq!(Opcode::Addl3.specifier_count(), 3);
        assert_eq!(Opcode::Brb.specifier_count(), 0);
        assert!(Opcode::Brb.branch_displacement().is_some());
        assert_eq!(Opcode::Movc5.specifier_count(), 5);
        assert_eq!(Opcode::Ashp.specifier_count(), 6);
        assert_eq!(Opcode::Rsb.specifier_count(), 0);
        // AOBLSS: limit.rl, index.ml, displ.bb
        assert_eq!(Opcode::Aoblss.specifier_count(), 2);
        assert_eq!(
            Opcode::Aoblss.branch_displacement().unwrap().data_type(),
            DataType::Byte
        );
        // ACBL has a word displacement.
        assert_eq!(
            Opcode::Acbl.branch_displacement().unwrap().data_type(),
            DataType::Word
        );
    }

    #[test]
    fn no_opcode_exceeds_six_specifiers() {
        // "VAX instructions are composed of an opcode followed by zero to
        // six operand specifiers" (paper §2.1).
        for &op in Opcode::ALL {
            assert!(op.specifier_count() <= 6, "{op} has too many specifiers");
        }
    }

    #[test]
    fn branch_displacement_is_always_last() {
        for &op in Opcode::ALL {
            let ops = op.operands();
            for (i, t) in ops.iter().enumerate() {
                if t.is_branch_displacement() {
                    assert_eq!(i, ops.len() - 1, "{op} has a non-final displacement");
                }
            }
        }
    }

    #[test]
    fn case_opcodes_are_marked() {
        assert!(Opcode::Caseb.has_case_table());
        assert!(Opcode::Casew.has_case_table());
        assert!(Opcode::Casel.has_case_table());
        assert!(!Opcode::Movl.has_case_table());
    }

    #[test]
    fn group_classification_spot_checks() {
        assert_eq!(Opcode::Movl.group(), OpcodeGroup::Simple);
        assert_eq!(Opcode::Extv.group(), OpcodeGroup::Field);
        assert_eq!(Opcode::Mull2.group(), OpcodeGroup::Float);
        assert_eq!(Opcode::Calls.group(), OpcodeGroup::CallRet);
        assert_eq!(Opcode::Chmk.group(), OpcodeGroup::System);
        assert_eq!(Opcode::Movc3.group(), OpcodeGroup::Character);
        assert_eq!(Opcode::Addp4.group(), OpcodeGroup::Decimal);
    }

    #[test]
    fn branch_class_spot_checks() {
        assert_eq!(Opcode::Beql.branch_class(), Some(BranchClass::SimpleCond));
        assert_eq!(Opcode::Brb.branch_class(), Some(BranchClass::SimpleCond));
        assert_eq!(Opcode::Aoblss.branch_class(), Some(BranchClass::Loop));
        assert_eq!(Opcode::Blbs.branch_class(), Some(BranchClass::LowBitTest));
        assert_eq!(
            Opcode::Jsb.branch_class(),
            Some(BranchClass::SubroutineCallRet)
        );
        assert_eq!(Opcode::Jmp.branch_class(), Some(BranchClass::Unconditional));
        assert_eq!(Opcode::Casel.branch_class(), Some(BranchClass::Case));
        assert_eq!(Opcode::Bbs.branch_class(), Some(BranchClass::BitBranch));
        assert_eq!(
            Opcode::Ret.branch_class(),
            Some(BranchClass::ProcedureCallRet)
        );
        assert_eq!(Opcode::Rei.branch_class(), Some(BranchClass::SystemBranch));
        assert_eq!(Opcode::Movl.branch_class(), None);
    }
}
