//! Operand access types.

use std::fmt;

/// How an instruction accesses an operand specifier (VAX Architecture
/// Reference Manual notation: `.rx`, `.wx`, `.mx`, `.ax`, `.vx`, `.bx`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessType {
    /// Operand is read (`.rx`).
    Read,
    /// Operand is written (`.wx`).
    Write,
    /// Operand is read and then written (`.mx`).
    Modify,
    /// The operand's *address* is computed and used (`.ax`) — non-scalar
    /// data such as string bases or the CALLx target.
    Address,
    /// Variable bit-field base (`.vx`): register or address, used by the
    /// FIELD group.
    Field,
    /// Branch displacement (`.bx`): not an operand specifier at all; the
    /// displacement is taken directly from the instruction stream
    /// (paper §3.2 keeps these separate from specifiers).
    Branch,
}

impl AccessType {
    /// Does processing this operand read the operand's value from a
    /// register or memory?
    #[inline]
    pub const fn reads_value(self) -> bool {
        matches!(self, AccessType::Read | AccessType::Modify)
    }

    /// Does processing this operand write the operand's value?
    #[inline]
    pub const fn writes_value(self) -> bool {
        matches!(self, AccessType::Write | AccessType::Modify)
    }

    /// Is this a true operand specifier (as opposed to a branch
    /// displacement)?
    #[inline]
    pub const fn is_specifier(self) -> bool {
        !matches!(self, AccessType::Branch)
    }

    /// Stable machine-readable key — the [`Display`](fmt::Display) text,
    /// used by artifact codecs and the probe allowlist.
    pub const fn key(self) -> &'static str {
        match self {
            AccessType::Read => "read",
            AccessType::Write => "write",
            AccessType::Modify => "modify",
            AccessType::Address => "address",
            AccessType::Field => "field",
            AccessType::Branch => "branch-displacement",
        }
    }

    /// Look an access type up by its [`key`](AccessType::key).
    pub fn from_key(key: &str) -> Option<AccessType> {
        [
            AccessType::Read,
            AccessType::Write,
            AccessType::Modify,
            AccessType::Address,
            AccessType::Field,
            AccessType::Branch,
        ]
        .into_iter()
        .find(|a| a.key() == key)
    }
}

impl fmt::Display for AccessType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessType::Read => "read",
            AccessType::Write => "write",
            AccessType::Modify => "modify",
            AccessType::Address => "address",
            AccessType::Field => "field",
            AccessType::Branch => "branch-displacement",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_predicates() {
        assert!(AccessType::Read.reads_value());
        assert!(AccessType::Modify.reads_value());
        assert!(AccessType::Modify.writes_value());
        assert!(AccessType::Write.writes_value());
        assert!(!AccessType::Address.reads_value());
        assert!(!AccessType::Branch.is_specifier());
        assert!(AccessType::Field.is_specifier());
    }
}
