//! Static decoding over byte slices: position-tracked instruction decode
//! for analyzers that never execute the code.
//!
//! The incremental [`Decoder`] consumes a [`ByteSource`] one instruction
//! at a time and deliberately knows nothing about where the bytes sit in
//! an image. Static analysis wants more: the byte *offset* of every
//! instruction, and enough CASEx awareness to step over the displacement
//! table that follows a case instruction's specifiers (which the plain
//! decoder cannot size, because the table length comes from the limit
//! operand's value). This module provides that layer; `vax-lint` builds
//! its control-flow graph on top of it.

use crate::{AddrMode, ArchError, DecodedInst, Decoder, SliceSource};

/// A statically decoded instruction, located within its image slice.
#[derive(Debug, Clone)]
pub struct LocatedInst {
    /// Byte offset of the opcode byte within the decoded slice.
    pub offset: usize,
    /// The decoded instruction (length excludes any case table).
    pub inst: DecodedInst,
    /// CASEx displacement-table entries (signed words, relative to the
    /// address just past the specifiers). `None` for non-case opcodes
    /// *and* for case instructions whose limit operand is not a static
    /// constant — in the latter case the table cannot be sized and
    /// linear decoding must stop.
    pub case_entries: Option<Vec<i16>>,
    /// Total encoded length in bytes, case table included.
    pub total_len: usize,
}

impl LocatedInst {
    /// Offset of the first byte past this instruction (and its table).
    pub fn end(&self) -> usize {
        self.offset + self.total_len
    }

    /// Can linear decoding continue past this instruction? False only
    /// for a case instruction with a non-constant limit operand.
    pub fn sized(&self) -> bool {
        !self.inst.opcode.has_case_table() || self.case_entries.is_some()
    }
}

/// Extract a small unsigned constant from a decoded specifier, if the
/// specifier is a short literal or an immediate.
pub fn static_constant(mode: &AddrMode) -> Option<u64> {
    match mode {
        AddrMode::Literal(v) => Some(u64::from(*v)),
        AddrMode::Immediate { data, .. } => Some(*data),
        _ => None,
    }
}

/// Statically decode the instruction at `offset` within `bytes`.
///
/// For CASEx opcodes with a static limit operand, the displacement table
/// following the specifiers is read into `case_entries` and included in
/// `total_len`, so the caller can continue decoding linearly past it.
///
/// # Errors
///
/// [`ArchError::Truncated`] if the slice ends mid-instruction (or
/// mid-table), and any decode error the incremental decoder reports
/// (unknown opcode etc.).
pub fn decode_at(bytes: &[u8], offset: usize) -> Result<LocatedInst, ArchError> {
    let tail = bytes.get(offset..).ok_or(ArchError::Truncated)?;
    let mut src = SliceSource::new(tail);
    let inst = Decoder::decode(&mut src)?;
    let mut total_len = inst.len as usize;
    let case_entries = if inst.opcode.has_case_table() {
        // CASEx operands are (selector, base, limit); the table holds
        // limit+1 word displacements relative to the address just past
        // the specifiers.
        match inst.specs.last().and_then(|s| static_constant(&s.mode)) {
            Some(limit) => {
                let count = (limit as usize) + 1;
                let table = tail
                    .get(total_len..total_len + 2 * count)
                    .ok_or(ArchError::Truncated)?;
                let entries: Vec<i16> = table
                    .chunks_exact(2)
                    .map(|c| i16::from_le_bytes([c[0], c[1]]))
                    .collect();
                total_len += 2 * count;
                Some(entries)
            }
            None => None,
        }
    } else {
        None
    };
    Ok(LocatedInst {
        offset,
        inst,
        case_entries,
        total_len,
    })
}

/// Statically decode `bytes[start..end)` as a straight-line instruction
/// stream, stepping over case tables.
///
/// # Errors
///
/// Returns the instructions decoded so far plus the offset and error of
/// the first failure (decode error, truncation, or an unsized case
/// table). `Ok` means the range decoded *totally*: every byte belongs to
/// exactly one instruction or case table.
pub fn decode_range(
    bytes: &[u8],
    start: usize,
    end: usize,
) -> Result<Vec<LocatedInst>, (Vec<LocatedInst>, usize, ArchError)> {
    let mut out = Vec::new();
    let mut pos = start;
    while pos < end.min(bytes.len()) {
        match decode_at(bytes, pos) {
            Ok(li) if li.sized() => {
                pos = li.end();
                out.push(li);
            }
            Ok(li) => {
                let off = li.offset;
                out.push(li);
                return Err((
                    out,
                    off,
                    ArchError::InvalidMode("case limit is not a static constant".into()),
                ));
            }
            Err(e) => return Err((out, pos, e)),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Assembler, Opcode, Operand, Reg};

    #[test]
    fn locates_instructions_and_sizes_case_tables() {
        let mut asm = Assembler::new(0x1000);
        asm.inst(Opcode::Movl, &[Operand::Literal(1), Operand::Reg(Reg::R0)])
            .unwrap();
        let targets: Vec<_> = (0..3).map(|_| asm.new_label()).collect();
        asm.case(
            Opcode::Casel,
            &[
                Operand::Reg(Reg::R0),
                Operand::Literal(0),
                Operand::Literal(2),
            ],
            &targets,
        )
        .unwrap();
        for t in targets {
            asm.place(t).unwrap();
            asm.inst(Opcode::Incl, &[Operand::Reg(Reg::R1)]).unwrap();
        }
        let img = asm.finish().unwrap();

        let insts = decode_range(&img.bytes, 0, img.bytes.len()).expect("total decode");
        assert_eq!(insts[0].inst.opcode, Opcode::Movl);
        assert_eq!(insts[1].inst.opcode, Opcode::Casel);
        let entries = insts[1].case_entries.as_ref().expect("sized table");
        assert_eq!(entries.len(), 3);
        // The three INCLs follow the table; offsets tile the image.
        assert_eq!(insts.len(), 5);
        let mut pos = 0;
        for li in &insts {
            assert_eq!(li.offset, pos);
            pos = li.end();
        }
        assert_eq!(pos, img.bytes.len());
        // Case entries resolve to the INCL instruction starts.
        let table_base = insts[1].offset + insts[1].inst.len as usize;
        for (k, e) in entries.iter().enumerate() {
            let target = table_base.wrapping_add(*e as usize);
            assert_eq!(target, insts[2 + k].offset);
        }
    }

    #[test]
    fn reports_offset_of_first_bad_byte() {
        let mut asm = Assembler::new(0);
        asm.inst(Opcode::Nop, &[]).unwrap();
        let mut bytes = asm.finish().unwrap().bytes;
        bytes.push(0xFF); // not a VAX opcode in our table
        let (decoded, at, _) = decode_range(&bytes, 0, bytes.len()).unwrap_err();
        assert_eq!(decoded.len(), 1);
        assert_eq!(at, 1);
    }
}
