//! Error type shared by the assembler and decoder.

use std::fmt;

/// Error produced while assembling or decoding VAX instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ArchError {
    /// An opcode byte that this model does not implement.
    UnknownOpcode(u8),
    /// The number of operands passed to the assembler does not match the
    /// opcode's template.
    OperandCount {
        /// Mnemonic of the offending opcode.
        mnemonic: &'static str,
        /// Number of operands the template requires.
        expected: usize,
        /// Number of operands supplied.
        got: usize,
    },
    /// An operand is not representable in the requested addressing mode
    /// (e.g. a short literal larger than 63).
    BadOperand(String),
    /// A branch displacement does not fit in the instruction's displacement
    /// field.
    DisplacementOverflow {
        /// Mnemonic of the offending opcode.
        mnemonic: &'static str,
        /// The displacement that did not fit.
        disp: i64,
    },
    /// A label was referenced but never placed.
    UnresolvedLabel(u32),
    /// A label was placed twice.
    DuplicateLabel(u32),
    /// The decoder ran out of bytes mid-instruction.
    Truncated,
    /// An addressing mode that is architecturally invalid in context
    /// (e.g. short literal used for a write operand).
    InvalidMode(String),
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::UnknownOpcode(b) => write!(f, "unknown opcode byte {b:#04x}"),
            ArchError::OperandCount {
                mnemonic,
                expected,
                got,
            } => write!(f, "{mnemonic} requires {expected} operands, got {got}"),
            ArchError::BadOperand(msg) => write!(f, "bad operand: {msg}"),
            ArchError::DisplacementOverflow { mnemonic, disp } => {
                write!(f, "branch displacement {disp} does not fit in {mnemonic}")
            }
            ArchError::UnresolvedLabel(id) => write!(f, "label {id} was never placed"),
            ArchError::DuplicateLabel(id) => write!(f, "label {id} placed twice"),
            ArchError::Truncated => write!(f, "byte stream ended mid-instruction"),
            ArchError::InvalidMode(msg) => write!(f, "invalid addressing mode: {msg}"),
        }
    }
}

impl std::error::Error for ArchError {}
