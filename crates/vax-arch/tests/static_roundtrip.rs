//! Property tests for the static decoder (`sdecode`): assembling a
//! random instruction sequence, statically decoding the whole image,
//! rebuilding operands from the decoded modes, and reassembling must
//! reproduce the byte image exactly — the decoder and assembler are
//! exact inverses over well-formed code, case tables included.

use proptest::prelude::*;
use vax_arch::sdecode::{decode_range, LocatedInst};
use vax_arch::{AccessType, AddrMode, Assembler, Opcode, Operand, Reg};

/// A register safe in any addressing mode (not PC/SP).
fn plain_reg() -> impl Strategy<Value = Reg> {
    (0u8..12).prop_map(Reg::from_number)
}

/// An operand valid under the given access type.
fn operand_for(access: AccessType) -> BoxedStrategy<Operand> {
    let mem = prop_oneof![
        plain_reg().prop_map(Operand::RegDeferred),
        plain_reg().prop_map(Operand::AutoDecrement),
        plain_reg().prop_map(Operand::AutoIncrement),
        plain_reg().prop_map(Operand::AutoIncDeferred),
        (any::<i32>(), plain_reg()).prop_map(|(d, r)| Operand::Disp(d, r)),
        (any::<i32>(), plain_reg()).prop_map(|(d, r)| Operand::DispDeferred(d, r)),
        any::<u32>().prop_map(Operand::Absolute),
    ];
    if access.writes_value() {
        prop_oneof![mem, plain_reg().prop_map(Operand::Reg)].boxed()
    } else if matches!(access, AccessType::Address) {
        mem.boxed()
    } else {
        prop_oneof![
            mem,
            plain_reg().prop_map(Operand::Reg),
            (0u8..64).prop_map(Operand::Literal),
            any::<u64>().prop_map(Operand::Immediate),
        ]
        .boxed()
    }
}

/// A short sequence of non-branch instructions with valid operands.
fn sequence_strategy() -> impl Strategy<Value = Vec<(Opcode, Vec<Operand>)>> {
    let non_branch: Vec<Opcode> = Opcode::ALL
        .iter()
        .copied()
        .filter(|o| o.branch_displacement().is_none() && !o.has_case_table())
        .collect();
    let one = prop::sample::select(non_branch).prop_flat_map(|op| {
        let strategies: Vec<BoxedStrategy<Operand>> = op
            .operands()
            .iter()
            .map(|t| operand_for(t.access()))
            .collect();
        (Just(op), strategies)
    });
    prop::collection::vec(one, 1..8)
}

/// Rebuild an assembler-level operand from a decoded specifier. Exact
/// byte identity requires reproducing the displacement width the
/// assembler picks, which is what `DispSize::fitting` guarantees; only
/// modes the strategy can generate need covering.
fn rebuild_operand(inst: &LocatedInst, i: usize) -> Operand {
    let spec = &inst.inst.specs[i];
    let base = match spec.mode {
        AddrMode::Literal(v) => Operand::Literal(v),
        AddrMode::Register(r) => Operand::Reg(r),
        AddrMode::RegDeferred(r) => Operand::RegDeferred(r),
        AddrMode::AutoDecrement(r) => Operand::AutoDecrement(r),
        AddrMode::AutoIncrement(r) => Operand::AutoIncrement(r),
        AddrMode::AutoIncDeferred(r) => Operand::AutoIncDeferred(r),
        AddrMode::Displacement { reg, disp, .. } => Operand::Disp(disp, reg),
        AddrMode::DisplacementDeferred { reg, disp, .. } => Operand::DispDeferred(disp, reg),
        AddrMode::Immediate { data, .. } => Operand::Immediate(data),
        AddrMode::Absolute(a) => Operand::Absolute(a),
    };
    match spec.index {
        Some(r) => base.indexed(r).expect("decoded index mode is indexable"),
        None => base,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn assemble_sdecode_reassemble_is_identity(seq in sequence_strategy()) {
        let mut asm = Assembler::new(0x1000);
        for (op, operands) in &seq {
            asm.inst(*op, operands).unwrap();
        }
        let img = asm.finish().unwrap();

        let insts = decode_range(&img.bytes, 0, img.bytes.len())
            .expect("total static decode");
        prop_assert_eq!(insts.len(), seq.len());

        // The located instructions tile the image.
        let mut expect = 0usize;
        for inst in &insts {
            prop_assert_eq!(inst.offset, expect);
            expect = inst.end();
        }
        prop_assert_eq!(expect, img.bytes.len());

        // Reassemble from the decoded form; bytes must match exactly.
        let mut re = Assembler::new(0x1000);
        for (inst, (op, _)) in insts.iter().zip(&seq) {
            prop_assert_eq!(inst.inst.opcode, *op);
            let operands: Vec<Operand> = (0..inst.inst.specs.len())
                .map(|i| rebuild_operand(inst, i))
                .collect();
            re.inst(inst.inst.opcode, &operands).unwrap();
        }
        let reimg = re.finish().unwrap();
        prop_assert_eq!(reimg.bytes, img.bytes);
    }
}

/// Fixed (non-property) coverage for the control-flow shapes the random
/// strategy excludes: branches and a sized case table.
#[test]
fn sdecode_sizes_branches_and_case_tables() {
    let mut asm = Assembler::new(0x2000);
    let top = asm.label_here();
    asm.inst(Opcode::Incl, &[Operand::Reg(Reg::R0)]).unwrap();
    let targets: Vec<_> = (0..3).map(|_| asm.new_label()).collect();
    asm.case(
        Opcode::Casel,
        &[
            Operand::Reg(Reg::R0),
            Operand::Literal(0),
            Operand::Literal(2),
        ],
        &targets,
    )
    .unwrap();
    for t in &targets {
        asm.place(*t).unwrap();
        asm.inst(Opcode::Nop, &[]).unwrap();
    }
    asm.branch(Opcode::Brb, &[], top).unwrap();
    let img = asm.finish().unwrap();

    let insts = decode_range(&img.bytes, 0, img.bytes.len()).expect("total decode");
    let case = insts
        .iter()
        .find(|i| i.inst.opcode == Opcode::Casel)
        .expect("case decoded");
    let entries = case.case_entries.as_ref().expect("table sized");
    assert_eq!(entries.len(), 3);
    let table_base = case.offset + case.inst.len as usize;
    let arm_offsets: Vec<usize> = insts
        .iter()
        .filter(|i| i.inst.opcode == Opcode::Nop)
        .map(|i| i.offset)
        .collect();
    for (entry, arm) in entries.iter().zip(&arm_offsets) {
        assert_eq!((table_base as i64 + i64::from(*entry)) as usize, *arm);
    }
    let brb = insts.last().expect("brb decoded");
    assert_eq!(brb.inst.opcode, Opcode::Brb);
    let target =
        brb.offset as i64 + i64::from(brb.inst.len) + i64::from(brb.inst.branch_disp.unwrap());
    assert_eq!(target, 0, "backward branch resolves to the top");
}
