//! Property tests: assembling any well-formed instruction and decoding the
//! bytes yields the original opcode, operand modes and length.

use proptest::prelude::*;
use vax_arch::{AccessType, AddrMode, Assembler, Decoder, Opcode, Operand, Reg, SliceSource};

/// Strategy for a register that is safe in any addressing mode (not PC/SP,
/// which have special encodings or side effects we exercise separately).
fn plain_reg() -> impl Strategy<Value = Reg> {
    (0u8..12).prop_map(Reg::from_number)
}

/// Strategy for an operand valid under the given access type.
fn operand_for(access: AccessType) -> BoxedStrategy<Operand> {
    let mem = prop_oneof![
        plain_reg().prop_map(Operand::RegDeferred),
        plain_reg().prop_map(Operand::AutoDecrement),
        plain_reg().prop_map(Operand::AutoIncrement),
        plain_reg().prop_map(Operand::AutoIncDeferred),
        (any::<i32>(), plain_reg()).prop_map(|(d, r)| Operand::Disp(d, r)),
        (any::<i32>(), plain_reg()).prop_map(|(d, r)| Operand::DispDeferred(d, r)),
        any::<u32>().prop_map(Operand::Absolute),
    ];
    if access.writes_value() {
        prop_oneof![mem, plain_reg().prop_map(Operand::Reg)].boxed()
    } else if matches!(access, AccessType::Address) {
        mem.boxed()
    } else {
        prop_oneof![
            mem,
            plain_reg().prop_map(Operand::Reg),
            (0u8..64).prop_map(Operand::Literal),
            any::<u64>().prop_map(Operand::Immediate),
        ]
        .boxed()
    }
}

/// Strategy producing an opcode without a branch displacement together
/// with a valid operand list.
fn inst_strategy() -> impl Strategy<Value = (Opcode, Vec<Operand>)> {
    let non_branch: Vec<Opcode> = Opcode::ALL
        .iter()
        .copied()
        .filter(|o| o.branch_displacement().is_none() && !o.has_case_table())
        .collect();
    prop::sample::select(non_branch).prop_flat_map(|op| {
        let strategies: Vec<BoxedStrategy<Operand>> = op
            .operands()
            .iter()
            .map(|t| operand_for(t.access()))
            .collect();
        (Just(op), strategies)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn assemble_decode_roundtrip((op, operands) in inst_strategy()) {
        let mut asm = Assembler::new(0x1000);
        asm.inst(op, &operands).unwrap();
        let img = asm.finish().unwrap();

        let mut src = SliceSource::new(&img.bytes);
        let inst = Decoder::decode(&mut src).unwrap();

        prop_assert_eq!(inst.opcode, op);
        prop_assert_eq!(inst.len as usize, img.bytes.len());
        prop_assert_eq!(inst.specs.len(), operands.len());
        for (spec, operand) in inst.specs.iter().zip(&operands) {
            prop_assert_eq!(spec.mode_class(), operand.mode_class());
            // Register identity survives for register-based modes.
            match (operand, spec.mode) {
                (Operand::Reg(r), AddrMode::Register(r2)) => prop_assert_eq!(*r, r2),
                (Operand::Disp(d, r), AddrMode::Displacement { reg, disp, .. }) => {
                    prop_assert_eq!(*r, reg);
                    prop_assert_eq!(*d, disp);
                }
                (Operand::Absolute(a), AddrMode::Absolute(a2)) => prop_assert_eq!(*a, a2),
                _ => {}
            }
        }
    }

    #[test]
    fn branch_displacements_resolve_exactly(
        gap in 0usize..100,
        forward in any::<bool>(),
    ) {
        let mut asm = Assembler::new(0x4000);
        if forward {
            let target = asm.new_label();
            asm.branch(Opcode::Brb, &[], target).unwrap();
            for _ in 0..gap {
                asm.inst(Opcode::Nop, &[]).unwrap();
            }
            asm.place(target).unwrap();
            let img = asm.finish().unwrap();
            let disp = img.bytes[1] as i8 as i64;
            // Branch VA 0x4000, next byte after displacement 0x4002.
            prop_assert_eq!(0x4002 + disp, 0x4002 + gap as i64);
        } else {
            let target = asm.label_here();
            for _ in 0..gap {
                asm.inst(Opcode::Nop, &[]).unwrap();
            }
            asm.branch(Opcode::Brb, &[], target).unwrap();
            let img = asm.finish().unwrap();
            let off = gap; // branch opcode offset
            let disp = img.bytes[off + 1] as i8 as i64;
            prop_assert_eq!(
                0x4000 + off as i64 + 2 + disp,
                0x4000,
                "backward branch lands on target"
            );
        }
    }
}
